"""The daemon's write-ahead log of accepted membership requests.

Durability contract: a join/leave the daemon *acknowledged* must survive
a crash at any instant.  The snapshot
(:func:`repro.keytree.persistence.save_server`) only captures state as
of the last committed interval, so every accepted request is appended
here — JSON line, flushed and fsynced — *before* it is applied to the
in-memory server.  Recovery then replays the suffix of the log that the
snapshot has not folded in yet.

Record format v2 (one JSON object per line, CRC32-protected)::

    {"crc": "f3b1c2d4", "interval": 4, "op": "join", "seq": 17, "user": "u-9"}
    {"crc": "0a9e88c1", "interval": 4, "op": "commit", "seq": 19}

``crc`` is the CRC32 (hex) of the record's canonical JSON *without* the
``crc`` key, so any at-rest damage to a record — a flipped bit, a
spliced line — is detected rather than misparsed.  v1 records (no
``crc`` key) are still read; compaction rewrites survivors as v2, so a
log upgrades itself in place.

``interval`` is the server's ``intervals_processed`` at acceptance time,
i.e. the interval whose end-of-interval rekey will consume the request.
``commit`` marks that interval's rekey as durably snapshotted (it is
observability/compaction metadata — replay filters on the *snapshot's*
interval number, so a crash between snapshot write and commit append is
harmless).

A torn tail — a final line cut short by the crash — is expected and
dropped; torn or out-of-sequence records anywhere *else* mean real
corruption.  What happens next is the caller's choice:
``on_corruption="raise"`` (default) propagates :class:`WalError`, while
``"quarantine"`` — the daemon's setting — moves the damaged file to
``<path>.corrupt-<n>``, rewrites the intact prefix as a fresh log, and
emits a ``wal_quarantine`` event, so startup always has *a* log to
recover from (see ``docs/robustness.md``).

Appends run through a bounded-retry/backoff policy: a transient
``OSError`` from the write or fsync rolls the file back to its
pre-append length and retries; only a persistent failure escapes.

Under HA (``docs/ha.md``) every record additionally carries the
writer's ``epoch`` fencing token.  The log is constructed with the
current epoch and a ``fence`` (any object with ``current_epoch()`` —
in practice the cluster's :class:`repro.ha.lease.Lease`); an append
whose epoch is older than the fence's refuses with
:class:`StaleEpochError` *before any byte reaches the file*, which is
what keeps a deposed leader's late writes out of the shared log.  The
``epoch`` key rides through v2 parsing like any other field and is
covered by the record CRC.
"""

from __future__ import annotations

import json
import os
import zlib

from repro.chaos.seams import REAL_FILESYSTEM, SYSTEM_CLOCK
from repro.errors import StaleEpochError, WalError
from repro.obs.recorder import NULL
from repro.util.retry import RetryPolicy

REQUEST_OPS = ("join", "leave")
_ALL_OPS = REQUEST_OPS + ("commit",)

#: current on-disk record format (v1 = bare JSON, v2 = + per-record CRC)
FORMAT_VERSION = 2


def record_crc(record):
    """CRC32 (8 hex chars) of a record's canonical JSON, sans ``crc``."""
    body = {k: v for k, v in record.items() if k != "crc"}
    data = json.dumps(body, sort_keys=True).encode("utf-8")
    return "%08x" % (zlib.crc32(data) & 0xFFFFFFFF)


def encode_record(record):
    """One v2 WAL line (no newline) for a logical record dict."""
    wire = dict(record)
    wire["crc"] = record_crc(record)
    return json.dumps(wire, sort_keys=True)


def _parse_line(line):
    """Parse and validate one line into a logical record.

    Raises ``ValueError``/``KeyError``/``TypeError`` on anything
    malformed — including a v2 CRC mismatch — for the caller to map to
    torn-tail tolerance or corruption.
    """
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    crc = record.pop("crc", None)
    if crc is not None and crc != record_crc(record):
        raise ValueError("CRC mismatch (stored %r)" % (crc,))
    if record["op"] not in _ALL_OPS:
        raise ValueError("unknown op %r" % (record["op"],))
    int(record["seq"])
    int(record["interval"])
    if "epoch" in record:
        int(record["epoch"])
    return record


def scan_records(path, fs=None):
    """Read as many intact records as possible; returns ``(records, error)``.

    ``error`` is ``None`` for a clean file (a torn *final* line is
    clean — the crash interrupted that append) and a :class:`WalError`
    describing the first damage otherwise.  ``records`` is always the
    longest intact prefix, which is what quarantine salvages.
    """
    records, error, _ = _scan(path, fs)
    return records, error


def _scan(path, fs=None):
    """The full scan: ``(records, error, intact_bytes)``.

    ``intact_bytes`` is the byte length of the intact record prefix —
    the offset a physical truncation must cut back to before appending,
    so a torn tail's leftover bytes can never merge with the next
    record into mid-file garbage.
    """
    fs = fs or REAL_FILESYSTEM
    try:
        raw_lines = fs.read_bytes(path).split(b"\n")
    except FileNotFoundError:
        return [], None, 0
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()
    records = []
    intact_bytes = 0
    for index, raw in enumerate(raw_lines):
        try:
            record = _parse_line(raw.decode("utf-8"))
        except (ValueError, KeyError, TypeError) as exc:
            if index == len(raw_lines) - 1:
                break  # torn tail: the crash interrupted this append
            return records, WalError(
                "corrupt WAL record at line %d of %s: %s"
                % (index + 1, path, exc)
            ), intact_bytes
        if records and record["seq"] != records[-1]["seq"] + 1:
            return records, WalError(
                "WAL sequence gap at line %d of %s (seq %d after %d)"
                % (index + 1, path, record["seq"], records[-1]["seq"])
            ), intact_bytes
        records.append(record)
        intact_bytes += len(raw) + 1
    return records, None, intact_bytes


def read_records(path):
    """Parse a WAL file into records, tolerating only a torn last line.

    Raises :class:`WalError` for corruption anywhere but the tail:
    unparseable non-final lines, CRC mismatches, unknown ops, or a
    non-contiguous ``seq`` run (evidence of interleaved writers or lost
    middles).
    """
    records, error = scan_records(path)
    if error is not None:
        raise error
    return records


def max_epoch(records):
    """Highest ``epoch`` fencing token among ``records`` (0 if none)."""
    return max((int(r.get("epoch", 0)) for r in records), default=0)


def epochs_monotonic(records):
    """True iff the ``epoch`` tokens never decrease along the log —
    the on-disk witness that no deposed leader's write ever landed."""
    last = 0
    for record in records:
        epoch = int(record.get("epoch", 0))
        if epoch < last:
            return False
        last = max(last, epoch)
    return True


def quarantine_path(path, fs=None):
    """First free ``<path>.corrupt-<n>`` quarantine destination."""
    fs = fs or REAL_FILESYSTEM
    n = 0
    while fs.exists("%s.corrupt-%d" % (path, n)):
        n += 1
    return "%s.corrupt-%d" % (path, n)


class WriteAheadLog:
    """Append-only, fsynced, CRC-protected JSONL log with torn-tail-
    tolerant replay, corruption quarantine, and retried appends."""

    def __init__(
        self,
        path,
        fs=None,
        clock=None,
        retry=None,
        on_corruption="raise",
        obs=None,
        epoch=None,
        fence=None,
    ):
        if on_corruption not in ("raise", "quarantine"):
            raise WalError(
                "on_corruption must be 'raise' or 'quarantine', got %r"
                % (on_corruption,)
            )
        self.path = os.fspath(path)
        self.fs = fs or REAL_FILESYSTEM
        self.clock = clock or SYSTEM_CLOCK
        self.retry = retry or RetryPolicy()
        self.obs = obs if obs is not None else NULL
        self.on_corruption = on_corruption
        #: writer's fencing token; ``None`` = standalone (no HA, no
        #: ``epoch`` key in records)
        self.epoch = epoch if epoch is None else int(epoch)
        #: epoch authority consulted before every append (``Lease`` or
        #: anything else with ``current_epoch()``); ``None`` = only the
        #: epochs already in the log can fence us out
        self.fence = fence
        #: called with a copy of each record after its durable append —
        #: the leader's replication tap
        self.on_append = None
        self._handle = None
        records, error, intact_bytes = _scan(self.path, self.fs)
        if error is not None:
            if on_corruption == "raise":
                raise error
            records = self._quarantine(records, error)
        elif self.fs.exists(self.path):
            # A torn tail is *logically* dropped by the scan, but its
            # bytes are still on disk: cut them off now, or the next
            # append would splice onto the fragment and turn a clean
            # torn tail into mid-file corruption.
            size = self.fs.getsize(self.path)
            if size > intact_bytes:
                self.fs.truncate(self.path, intact_bytes)
            elif records and size == intact_bytes - 1:
                # The final record survived the crash but its newline
                # did not: restore the separator so the next append
                # starts a fresh line instead of splicing onto it.
                self._repair_missing_newline(size)
        self._next_seq = records[-1]["seq"] + 1 if records else 0
        self._max_epoch = max_epoch(records)

    def _repair_missing_newline(self, size):
        def attempt():
            handle = self.fs.open(self.path, "a")
            try:
                self.fs.write(handle, "\n")
                self.fs.fsync(handle)
            except OSError:
                try:  # undo a half-applied repair before the retry
                    self.fs.truncate(self.path, size)
                except OSError:  # pragma: no cover - best effort
                    pass
                raise
            finally:
                handle.close()

        self.retry.run(attempt, clock=self.clock)

    def _quarantine(self, salvaged, error):
        """Move the damaged log aside and rewrite the intact prefix."""
        destination = quarantine_path(self.path, self.fs)
        self.fs.replace(self.path, destination)
        if salvaged:
            handle = self.fs.open(self.path, "w")
            try:
                for record in salvaged:
                    self.fs.write(handle, encode_record(record) + "\n")
                self.fs.fsync(handle)
            finally:
                handle.close()
        self.fs.fsync_dir(os.path.dirname(self.path) or ".")
        self.obs.emit(
            "wal_quarantine",
            quarantined=os.path.basename(destination),
            salvaged=len(salvaged),
            error=str(error),
        )
        return salvaged

    def _ensure_handle(self):
        if self._handle is None or self._handle.closed:
            self._handle = self.fs.open(self.path, "a")
        return self._handle

    @property
    def next_seq(self):
        return self._next_seq

    def append(self, op, interval, user=None):
        """Durably append one record; returns its sequence number.

        The call only returns once the bytes are fsynced — the caller
        may then acknowledge the request to the client.  A transient
        ``OSError`` is retried with backoff after rolling the file back
        to its pre-append length (so a half-written line never
        survives); a persistent one propagates after ``io_giveup``.
        """
        if op not in _ALL_OPS:
            raise WalError("unknown WAL op %r" % (op,))
        if self.epoch is not None:
            self._check_fence(op)
        record = {"seq": self._next_seq, "op": op, "interval": int(interval)}
        if user is not None:
            record["user"] = user
        if self.epoch is not None:
            record["epoch"] = self.epoch
        line = encode_record(record) + "\n"

        def attempt():
            handle = self._ensure_handle()
            size = self.fs.getsize(self.path)
            try:
                self.fs.write(handle, line)
                self.fs.fsync(handle)
            except OSError:
                self._rollback(size)
                raise

        self.retry.run(
            attempt,
            clock=self.clock,
            on_retry=lambda n, err: self.obs.emit(
                "io_retry", op="wal-append", attempt=n, error=str(err)
            ),
            on_giveup=lambda n, err: self.obs.emit(
                "io_giveup", op="wal-append", attempts=n, error=str(err)
            ),
        )
        self._next_seq += 1
        if self.epoch is not None:
            self._max_epoch = max(self._max_epoch, self.epoch)
        if self.on_append is not None:
            self.on_append(dict(record))
        return record["seq"]

    def _check_fence(self, op):
        """Refuse the append when a newer epoch has been minted."""
        current = self._max_epoch
        if self.fence is not None:
            current = max(current, int(self.fence.current_epoch()))
        if current > self.epoch:
            self.obs.emit(
                "ha_fenced", op=op, epoch=self.epoch, current_epoch=current
            )
            raise StaleEpochError(
                "append refused: writer epoch %d is fenced out by epoch %d"
                % (self.epoch, current)
            )

    def _rollback(self, size):
        """Drop any partial append so the log ends at ``size`` bytes."""
        try:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
        except OSError:  # pragma: no cover - close-time flush failure
            pass
        self._handle = None
        try:
            self.fs.truncate(self.path, size)
        except OSError:  # pragma: no cover - best effort
            pass

    def append_request(self, op, user, interval):
        """Log an accepted membership request (``join`` or ``leave``)."""
        if op not in REQUEST_OPS:
            raise WalError("not a membership op: %r" % (op,))
        return self.append(op, interval, user=user)

    def append_commit(self, interval):
        """Mark ``interval``'s rekey as durably snapshotted."""
        return self.append("commit", interval)

    def records(self):
        """All intact records, oldest first (torn tail dropped)."""
        records, error = scan_records(self.path, self.fs)
        if error is not None:
            raise error
        return records

    def pending_requests(self, since_interval):
        """Replayable requests: those the snapshot has not consumed.

        Returns the ``join``/``leave`` records whose ``interval`` is at
        least ``since_interval`` (the restored server's
        ``intervals_processed``), in acceptance order.
        """
        return [
            record
            for record in self.records()
            if record["op"] in REQUEST_OPS
            and record["interval"] >= since_interval
        ]

    def compact(self, before_interval):
        """Atomically drop records older than ``before_interval``.

        Safe at any time: only records a snapshot at ``before_interval``
        has already folded in are removed, so replay semantics are
        unchanged.  Survivors are rewritten in the current (v2) format,
        and the directory entry is fsynced after the rename so the
        compaction itself survives a crash.  Returns the number of
        records dropped.
        """
        records = self.records()
        keep = [r for r in records if r["interval"] >= before_interval]
        if len(keep) == len(records):
            return 0
        self.close()
        temp_path = self.path + ".compact"
        handle = self.fs.open(temp_path, "w")
        try:
            for record in keep:
                self.fs.write(handle, encode_record(record) + "\n")
            self.fs.fsync(handle)
        finally:
            handle.close()
        self.fs.replace(temp_path, self.path)
        self.fs.fsync_dir(os.path.dirname(self.path) or ".")
        return len(records) - len(keep)

    def close(self):
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "WriteAheadLog(%r, next_seq=%d)" % (self.path, self._next_seq)
