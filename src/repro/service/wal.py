"""The daemon's write-ahead log of accepted membership requests.

Durability contract: a join/leave the daemon *acknowledged* must survive
a crash at any instant.  The snapshot
(:func:`repro.keytree.persistence.save_server`) only captures state as
of the last committed interval, so every accepted request is appended
here — JSON line, flushed and fsynced — *before* it is applied to the
in-memory server.  Recovery then replays the suffix of the log that the
snapshot has not folded in yet.

Record format (one JSON object per line)::

    {"seq": 17, "op": "join",   "user": "u-9",  "interval": 4}
    {"seq": 18, "op": "leave",  "user": "u-2",  "interval": 4}
    {"seq": 19, "op": "commit", "interval": 4}

``interval`` is the server's ``intervals_processed`` at acceptance time,
i.e. the interval whose end-of-interval rekey will consume the request.
``commit`` marks that interval's rekey as durably snapshotted (it is
observability/compaction metadata — replay filters on the *snapshot's*
interval number, so a crash between snapshot write and commit append is
harmless).

A torn tail — a final line cut short by the crash — is expected and
dropped; torn or out-of-sequence records anywhere *else* mean real
corruption and raise :class:`~repro.errors.WalError`.
"""

from __future__ import annotations

import json
import os

from repro.errors import WalError

REQUEST_OPS = ("join", "leave")
_ALL_OPS = REQUEST_OPS + ("commit",)


class WriteAheadLog:
    """Append-only, fsynced JSONL log with torn-tail-tolerant replay."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._handle = None
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self):
        records = read_records(self.path)
        return records[-1]["seq"] + 1 if records else 0

    def _ensure_handle(self):
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a")
        return self._handle

    @property
    def next_seq(self):
        return self._next_seq

    def append(self, op, interval, user=None):
        """Durably append one record; returns its sequence number.

        The call only returns once the bytes are fsynced — the caller
        may then acknowledge the request to the client.
        """
        if op not in _ALL_OPS:
            raise WalError("unknown WAL op %r" % (op,))
        record = {"seq": self._next_seq, "op": op, "interval": int(interval)}
        if user is not None:
            record["user"] = user
        handle = self._ensure_handle()
        handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self._next_seq += 1
        return record["seq"]

    def append_request(self, op, user, interval):
        """Log an accepted membership request (``join`` or ``leave``)."""
        if op not in REQUEST_OPS:
            raise WalError("not a membership op: %r" % (op,))
        return self.append(op, interval, user=user)

    def append_commit(self, interval):
        """Mark ``interval``'s rekey as durably snapshotted."""
        return self.append("commit", interval)

    def records(self):
        """All intact records, oldest first (torn tail dropped)."""
        return read_records(self.path)

    def pending_requests(self, since_interval):
        """Replayable requests: those the snapshot has not consumed.

        Returns the ``join``/``leave`` records whose ``interval`` is at
        least ``since_interval`` (the restored server's
        ``intervals_processed``), in acceptance order.
        """
        return [
            record
            for record in self.records()
            if record["op"] in REQUEST_OPS
            and record["interval"] >= since_interval
        ]

    def compact(self, before_interval):
        """Atomically drop records older than ``before_interval``.

        Safe at any time: only records a snapshot at ``before_interval``
        has already folded in are removed, so replay semantics are
        unchanged.  Returns the number of records dropped.
        """
        records = self.records()
        keep = [r for r in records if r["interval"] >= before_interval]
        if len(keep) == len(records):
            return 0
        self.close()
        temp_path = self.path + ".compact"
        with open(temp_path, "w") as handle:
            for record in keep:
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        return len(records) - len(keep)

    def close(self):
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "WriteAheadLog(%r, next_seq=%d)" % (self.path, self._next_seq)


def read_records(path):
    """Parse a WAL file into records, tolerating only a torn last line.

    Raises :class:`WalError` for corruption anywhere but the tail:
    unparseable non-final lines, unknown ops, or a non-contiguous
    ``seq`` run (evidence of interleaved writers or lost middles).
    """
    try:
        with open(path) as handle:
            lines = handle.read().split("\n")
    except FileNotFoundError:
        return []
    if lines and lines[-1] == "":
        lines.pop()
    records = []
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
            if record["op"] not in _ALL_OPS:
                raise ValueError("unknown op %r" % (record["op"],))
            seq = int(record["seq"])
            int(record["interval"])
        except (ValueError, KeyError, TypeError) as exc:
            if index == len(lines) - 1:
                break  # torn tail: the crash interrupted this append
            raise WalError(
                "corrupt WAL record at line %d of %s: %s"
                % (index + 1, path, exc)
            )
        if records and seq != records[-1]["seq"] + 1:
            raise WalError(
                "WAL sequence gap at line %d of %s (seq %d after %d)"
                % (index + 1, path, seq, records[-1]["seq"])
            )
        records.append(record)
    return records
