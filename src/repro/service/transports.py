"""Delivery backends: how the daemon moves a rekey message to members.

Three interchangeable paths behind one ``deliver()`` interface:

- :class:`DirectDelivery` — idealised loss-free channel (each member
  processes its ENC packet directly); the fast path for recovery tests
  and very long soaks;
- :class:`SessionDelivery` — the paper's transport: a full
  :class:`~repro.transport.session.RekeySession` over the burst-loss
  topology, with the ``AdjustRho`` controller carried *across*
  intervals (the per-interval ρ trajectory the metrics report);
- :class:`UdpDelivery` — real loopback UDP via
  :func:`repro.net.run_udp_rekey` (one socket per member, injected
  receiver-side loss).

**Graceful degradation.**  Every backend takes a per-interval deadline
in multicast rounds.  When multicast has not finished everyone by the
deadline, the tail is handled per the daemon's policy and the decision
is recorded in the :class:`DeliveryReport`:

- ``unicast`` policy → the transport switches the stragglers to
  unicast USR packets inside the interval (decision
  ``"unicast-cutover"``);
- ``carry`` policy → the stragglers' key updates are *carried over*:
  they stay stale this interval and the daemon serves them by unicast
  from the stored message at the start of the next interval (decision
  ``"carry-over"``); only :class:`SessionDelivery` distinguishes this —
  the direct path never degrades, and the UDP path always cuts over.

One approximation, documented: ``RekeySession`` reports first-round
NACK *counts* but not per-user parity shortfalls, so ``AdjustRho`` is
driven with one-parity requests per NACKing user.  The step direction
(and the convergence target numNACK) is preserved; only the upward step
size is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.obs.recorder import NULL
from repro.sim.topology import MulticastTopology
from repro.transport.adaptive import ProactivityController
from repro.transport.session import RekeySession, SessionConfig
from repro.util.rng import RandomSource

IN_DEADLINE = "in-deadline"
UNICAST_CUTOVER = "unicast-cutover"
CARRY_OVER = "carry-over"


@dataclass
class DeliveryReport:
    """What one interval's delivery did, for the metrics ledger."""

    mode: str
    decision: str = IN_DEADLINE
    rho: float = 0.0
    multicast_rounds: int = 0
    first_round_nacks: int = 0
    unicast_served: int = 0
    #: per-user multicast recovery round (1-based; 0 = not by multicast);
    #: None when the backend cannot observe per-user rounds (UDP).
    recovery_rounds: list = None
    #: names whose key updates were deferred to the next interval
    carried: list = field(default_factory=list)
    #: backend-specific extras (packet counts etc.)
    detail: dict = field(default_factory=dict)


class DeliveryBackend:
    """Interface: deliver ``message`` to ``fleet``, honouring a deadline."""

    #: observability recorder; the daemon injects its own via
    #: :meth:`set_observer` so deliveries share the interval context
    obs = NULL

    def set_observer(self, obs):
        self.obs = obs
        return self

    def deliver(self, message, fleet, deadline_rounds=2, policy="unicast"):
        raise NotImplementedError


class DirectDelivery(DeliveryBackend):
    """Loss-free delivery: every member sees every distinct ENC packet."""

    def deliver(self, message, fleet, deadline_rounds=2, policy="unicast"):
        packets = [p for p in message.enc_packets() if not p.is_duplicate]
        for member in fleet.members.values():
            for packet in packets:
                if member.process_enc_packet(packet):
                    break
        n_users = len(message.needs_by_user)
        return DeliveryReport(
            mode="direct",
            rho=0.0,
            multicast_rounds=1,
            recovery_rounds=[1] * n_users,
            detail={"packets_sent": len(packets)},
        )


class SessionDelivery(DeliveryBackend):
    """The simulated lossy transport, with cross-interval ρ adaptation."""

    def __init__(self, config, seed=None, adapt_rho=True, chaos=None):
        """``config`` is the group's :class:`~repro.core.config.GroupConfig`
        (loss topology, ρ/numNACK starting points, pacing).  ``chaos``
        is an optional feedback-fault hook handed to every session (see
        :class:`repro.chaos.faults.FeedbackChaos`)."""
        self.config = config
        self._random_source = RandomSource(
            config.seed if seed is None else seed
        )
        self.adapt_rho = bool(adapt_rho)
        self.chaos = chaos
        #: "python" runs the per-object oracle session and per-member
        #: absorption; anything else the array plane (repro.fastpath) —
        #: identical output either way, held together by tests/fastpath
        self.engine = getattr(config, "engine", "python")
        self.controller = ProactivityController(
            k=config.block_size,
            rho=config.rho,
            num_nack=config.num_nack,
            rng=self._random_source.generator(),
            rho_max=getattr(config, "rho_max", None),
        )

    @property
    def rho(self):
        return self.controller.rho

    def deliver(self, message, fleet, deadline_rounds=2, policy="unicast"):
        topology = MulticastTopology(
            len(message.needs_by_user),
            params=self.config.loss,
            random_source=self._random_source.child(),
        )
        self.controller.k = message.k
        rho = self.controller.rho
        session_class = RekeySession
        if self.engine != "python":
            from repro.fastpath.session import ArrayRekeySession

            session_class = ArrayRekeySession
        session = session_class(
            message,
            topology,
            SessionConfig(
                rho=rho,
                sending_interval_ms=self.config.sending_interval_ms,
                max_multicast_rounds=deadline_rounds,
            ),
            rng=self._random_source.generator(),
            obs=self.obs,
            chaos=self.chaos,
        )
        stats = session.run()
        if self.adapt_rho:
            # Shortfall magnitudes are not surfaced; see module docstring.
            self.controller.update([1] * stats.first_round_nacks)
            if self.controller.last_rho_clamped and self.obs.enabled:
                self.obs.emit(
                    "rho_clamped",
                    rho=self.controller.rho,
                    rho_max=self.controller.rho_max,
                )

        absorber = None
        if self.engine != "python":
            from repro.fastpath.absorb import FleetAbsorber

            absorber = FleetAbsorber(self.config.degree)
            absorber.relocate_fleet(fleet, message.max_kid)
        else:
            fleet.relocate_all(message.max_kid)
        by_id = fleet.by_user_id()
        user_rounds = {
            user_id: int(stats.user_rounds[index])
            for index, user_id in enumerate(session.user_ids)
        }
        carried = []
        if policy == "carry":
            carried = sorted(
                by_id[user_id].name
                for user_id, rounds in user_rounds.items()
                if rounds == 0 and user_id in by_id
            )
        carried_set = set(carried)
        for user_id, transport in session.users.items():
            member = by_id.get(user_id)
            if member is None:
                raise ServiceError(
                    "transport served unknown user ID %d" % user_id
                )
            if member.name in carried_set:
                continue
            if absorber is not None:
                # recovered_shared skips the defensive copy so the
                # absorber can index each slot's tuple exactly once.
                absorber.absorb(member, transport.recovered_shared())
            else:
                member.absorb_encryptions(
                    transport.recovered_encryptions, max_kid=message.max_kid
                )

        if carried:
            decision = CARRY_OVER
            unicast_served = 0
        elif stats.unicast.users_served:
            decision = UNICAST_CUTOVER
            unicast_served = stats.unicast.users_served
        else:
            decision = IN_DEADLINE
            unicast_served = 0
        return DeliveryReport(
            mode="session",
            decision=decision,
            rho=rho,
            multicast_rounds=stats.n_multicast_rounds,
            first_round_nacks=stats.first_round_nacks,
            unicast_served=unicast_served,
            recovery_rounds=[
                user_rounds[user_id] for user_id in session.user_ids
            ],
            carried=carried,
            detail={
                "multicast_packets": stats.total_multicast_packets,
                "bandwidth_overhead": round(stats.bandwidth_overhead, 3),
                "usr_packets": stats.unicast.usr_packets_sent,
            },
        )


class UdpDelivery(DeliveryBackend):
    """Real loopback-UDP delivery (small groups, integration realism).

    The UDP driver always escalates stragglers to unicast inside the
    interval, so the ``carry`` policy degrades to ``unicast`` here (the
    decision is still recorded honestly as ``"unicast-cutover"``).
    """

    def __init__(self, config, drop_probability=0.15, seed=None):
        self.config = config
        self.drop_probability = float(drop_probability)
        self._seed = config.seed if seed is None else seed
        self._calls = 0

    def deliver(self, message, fleet, deadline_rounds=2, policy="unicast"):
        from repro.net import run_udp_rekey

        policy_ignored = policy == "carry"
        if policy_ignored:
            # Not silent: operators configured carry but the UDP path
            # cannot defer stragglers — say so on the bus and in the
            # report so the daemon's ledger can count it.
            self.obs.emit(
                "degradation_policy_ignored",
                transport="udp",
                policy=policy,
                effective="unicast",
            )
        fleet.relocate_all(message.max_kid)
        self._calls += 1
        report = run_udp_rekey(
            message,
            members_by_user_id=fleet.by_user_id(),
            rho=self.config.rho,
            drop_probability=self.drop_probability,
            max_multicast_rounds=deadline_rounds,
            seed=self._seed + self._calls,
        )
        degraded = report["unicast_users"] > 0
        detail = {
            "packets_sent": report["packets_sent"],
            "packets_dropped": report["packets_dropped"],
        }
        if policy_ignored:
            detail["policy_ignored"] = True
        return DeliveryReport(
            mode="udp",
            decision=UNICAST_CUTOVER if degraded else IN_DEADLINE,
            rho=self.config.rho,
            multicast_rounds=report["rounds"],
            unicast_served=report["unicast_users"],
            recovery_rounds=None,
            detail=detail,
        )


def make_backend(kind, config, seed=None, drop_probability=0.15,
                 host="127.0.0.1", port=0, workers=0):
    """CLI-facing factory: ``direct`` / ``sim`` / ``udp`` / ``wire``."""
    if kind == "direct":
        return DirectDelivery()
    if kind == "sim":
        return SessionDelivery(config, seed=seed)
    if kind == "udp":
        return UdpDelivery(
            config, drop_probability=drop_probability, seed=seed
        )
    if kind == "wire":
        # Imported lazily: the wire plane pulls in asyncio machinery the
        # simulated backends never need.
        from repro.wire.delivery import WireDelivery

        return WireDelivery(
            config, seed=seed, host=host, port=port, workers=workers
        )
    raise ServiceError("unknown transport backend %r" % (kind,))
