"""Churn workload drivers: sustained membership dynamics for the daemon.

The paper evaluates one rekey interval at a time with J joins and L
leaves drawn as fractions of N (α = J/N = L/N, 20–25 % in the headline
figures).  A *service* faces churn as a process, not a sample: interval
after interval of arrivals and departures, occasionally punctuated by a
flash crowd.  Each driver here produces one
:class:`ChurnEvents` batch per interval:

- :class:`PoissonChurn` — the paper's stationary regime: joins and
  leaves are independent Poisson counts with mean ``alpha * N``
  (defaults to the ISSUE's α = 20 %), leavers drawn uniformly from the
  current membership;
- :class:`FlashCrowdChurn` — background Poisson churn plus periodic
  join bursts (a popular broadcast starting) and an optional mass
  departure (it ending);
- :class:`TraceChurn` — replays a recorded trace file, one line per
  event (``<interval> join|leave <user>``), for reproducible workloads
  and cross-run comparisons;
- :class:`NoChurn` — quiet intervals (scheduler/recovery testing).

Drivers are deliberately *not* crash-durable: they model the outside
world, which does not rewind when the server restarts.  The WAL is what
preserves the requests the daemon already accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.util.validation import check_non_negative, check_positive


@dataclass
class ChurnEvents:
    """One interval's membership requests, in acceptance order."""

    joins: list = field(default_factory=list)
    leaves: list = field(default_factory=list)

    @property
    def n_events(self):
        return len(self.joins) + len(self.leaves)


class ChurnDriver:
    """Base driver: produce the events to submit during one interval."""

    def events(self, interval, members, rng):
        """Return :class:`ChurnEvents` for ``interval``.

        ``members`` is the current membership (a set of names) and
        ``rng`` a ``numpy.random.Generator`` owned by the daemon.
        """
        raise NotImplementedError

    def _fresh_names(self, count, interval):
        names = [
            "%s%d-%d" % (self._join_prefix, interval, index)
            for index in range(count)
        ]
        return names

    _join_prefix = "join-"


class NoChurn(ChurnDriver):
    """No membership changes: every interval's rekey message is empty."""

    def events(self, interval, members, rng):
        return ChurnEvents()


class PoissonChurn(ChurnDriver):
    """Stationary Poisson join/leave at rate ``alpha`` per interval.

    ``J ~ Poisson(alpha_join * N)`` and ``L ~ Poisson(alpha_leave * N)``
    with N the current group size; leavers are sampled uniformly without
    replacement and capped at ``N - min_members`` so the group never
    drains below a floor (a key server with zero members has no group
    key to protect).
    """

    def __init__(self, alpha=0.20, alpha_join=None, min_members=2):
        check_non_negative("alpha", alpha)
        check_positive("min_members", min_members, integral=True)
        self.alpha_leave = float(alpha)
        self.alpha_join = float(
            alpha if alpha_join is None else alpha_join
        )
        self.min_members = int(min_members)

    def events(self, interval, members, rng):
        n_users = len(members)
        n_joins = int(rng.poisson(self.alpha_join * n_users))
        n_leaves = int(rng.poisson(self.alpha_leave * n_users))
        n_leaves = min(n_leaves, max(0, n_users - self.min_members))
        leavers = []
        if n_leaves:
            pool = sorted(members)
            picks = rng.choice(len(pool), size=n_leaves, replace=False)
            leavers = [pool[int(i)] for i in picks]
        return ChurnEvents(
            joins=self._fresh_names(n_joins, interval), leaves=leavers
        )


class FlashCrowdChurn(PoissonChurn):
    """Poisson background churn with periodic flash-crowd join bursts.

    Every ``burst_every`` intervals, ``burst_size`` extra users join at
    once; if ``depart_after`` is set, the same cohort leaves that many
    intervals later (the broadcast ended and the crowd drains).
    """

    _join_prefix = "flash-"

    def __init__(
        self,
        alpha=0.05,
        burst_every=5,
        burst_size=64,
        depart_after=None,
        min_members=2,
    ):
        super().__init__(alpha=alpha, min_members=min_members)
        check_positive("burst_every", burst_every, integral=True)
        check_non_negative("burst_size", burst_size, integral=True)
        self.burst_every = int(burst_every)
        self.burst_size = int(burst_size)
        self.depart_after = depart_after
        self._cohorts = {}  # departure interval -> names

    def events(self, interval, members, rng):
        events = super().events(interval, members, rng)
        if self.burst_every and (interval + 1) % self.burst_every == 0:
            crowd = [
                "crowd-%d-%d" % (interval, index)
                for index in range(self.burst_size)
            ]
            events.joins.extend(crowd)
            if self.depart_after is not None:
                self._cohorts.setdefault(
                    interval + int(self.depart_after), []
                ).extend(crowd)
        for name in self._cohorts.pop(interval, []):
            if name in members and name not in events.leaves:
                events.leaves.append(name)
        return events


class TraceChurn(ChurnDriver):
    """Replay a membership trace file.

    Format: one event per line, ``<interval> <join|leave> <user>``;
    blank lines and ``#`` comments are ignored.  Events past the last
    traced interval yield empty batches (the trace simply ends).
    """

    def __init__(self, path):
        self.path = path
        self._by_interval = {}
        with open(path) as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3 or parts[1] not in ("join", "leave"):
                    raise ServiceError(
                        "bad trace line %d in %s: %r"
                        % (line_no, path, line)
                    )
                interval, op, user = int(parts[0]), parts[1], parts[2]
                events = self._by_interval.setdefault(
                    interval, ChurnEvents()
                )
                (events.joins if op == "join" else events.leaves).append(
                    user
                )

    @property
    def n_intervals(self):
        """Number of intervals the trace covers (last index + 1)."""
        if not self._by_interval:
            return 0
        return max(self._by_interval) + 1

    def events(self, interval, members, rng):
        recorded = self._by_interval.get(interval)
        if recorded is None:
            return ChurnEvents()
        # Copies: the daemon may mutate the lists it receives.
        return ChurnEvents(
            joins=list(recorded.joins), leaves=list(recorded.leaves)
        )


def save_trace(path, events_by_interval):
    """Write a :class:`TraceChurn`-readable trace file.

    ``events_by_interval`` maps interval index to :class:`ChurnEvents`
    (or any object with ``joins``/``leaves``).
    """
    with open(path, "w") as handle:
        handle.write("# interval op user\n")
        for interval in sorted(events_by_interval):
            events = events_by_interval[interval]
            for user in events.joins:
                handle.write("%d join %s\n" % (interval, user))
            for user in events.leaves:
                handle.write("%d leave %s\n" % (interval, user))


def make_driver(kind, alpha=0.20, trace_path=None, **kwargs):
    """CLI-facing factory: ``poisson`` / ``flash`` / ``trace`` / ``none``."""
    if kind == "poisson":
        return PoissonChurn(alpha=alpha, **kwargs)
    if kind == "flash":
        return FlashCrowdChurn(**kwargs)
    if kind == "trace":
        if not trace_path:
            raise ServiceError("trace churn needs a --trace-file path")
        return TraceChurn(trace_path)
    if kind == "none":
        return NoChurn()
    raise ServiceError("unknown churn driver %r" % (kind,))
