"""The long-running rekey daemon: scheduler, WAL, recovery, degradation.

:class:`RekeyDaemon` runs a :class:`~repro.core.server.GroupKeyServer`
*as a server*: membership requests arrive concurrently (from a churn
driver and/or :meth:`submit_join`/:meth:`submit_leave` callers on other
threads), the paper's periodic rekey fires at each interval end, and the
interval's message travels over a pluggable delivery backend
(:mod:`repro.service.transports`).

**Durability.**  With a ``state_dir`` configured, every acknowledged
request is fsynced to the write-ahead log (:mod:`repro.service.wal`)
and every committed interval atomically replaces the server snapshot
(:func:`repro.keytree.persistence.save_server`).  The discipline:

1. apply the request in memory, *then* append to the WAL, *then*
   acknowledge — nothing is acknowledged before it is durable;
2. at interval end: rekey → deliver → snapshot (atomic replace) →
   ``commit`` marker.  Replay filters on the snapshot's interval
   number, so a crash between snapshot and marker changes nothing.

:meth:`recover` inverts that: load the snapshot, replay the WAL suffix
(re-queueing every request the snapshot has not consumed), and — since
key derivation is deterministic in ``(seed, node id, version)`` — the
re-run rekey regenerates byte-identical key material, making redelivery
after a crash idempotent for members who already absorbed part of the
lost interval.  Forward/backward secrecy survives because evictions are
either in the snapshot (already rekeyed) or in the WAL (re-queued and
rekeyed on the next interval).

**Crash injection.**  A :class:`CrashPlan` raises :class:`DaemonCrash`
(a stand-in for ``SIGKILL`` — no cleanup runs, fsynced state is all
that survives) at a chosen interval and :data:`CRASH_POINTS` site; the
recovery property tests drive this at every point.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.server import GroupKeyServer
from repro.errors import ReproError, ServiceError
from repro.obs.metrics import ROUNDS_BUCKETS
from repro.obs.recorder import NULL
from repro.service.churn import ChurnEvents, NoChurn
from repro.service.health import IN_DEADLINE, IntervalMetrics, ServiceMetrics
from repro.service.members import MemberFleet
from repro.service.transports import DirectDelivery
from repro.util.rng import RandomSource

#: where an injected crash can fire inside one interval, in order
CRASH_POINTS = (
    "mid-requests",   # half the interval's churn accepted (and logged)
    "pre-rekey",      # all requests logged; marking not yet run
    "post-rekey",     # new keys exist in memory; nothing delivered
    "post-delivery",  # members updated; snapshot not yet written
    "post-snapshot",  # snapshot durable; commit marker not yet appended
)


class DaemonCrash(ServiceError):
    """The injected SIGKILL stand-in: abandon the process state."""


@dataclass
class CrashPlan:
    """Fire :class:`DaemonCrash` at (``interval``, ``point``)."""

    interval: int
    point: str

    def __post_init__(self):
        if self.point not in CRASH_POINTS:
            raise ServiceError(
                "unknown crash point %r (valid: %s)"
                % (self.point, ", ".join(CRASH_POINTS))
            )

    def should_fire(self, interval, point):
        return interval == self.interval and point == self.point


@dataclass
class DaemonConfig:
    """Service-level knobs (the protocol knobs live in GroupConfig)."""

    state_dir: object = None  # str | Path | None (None = not durable)
    interval_seconds: float = 0.0  # 0 → intervals run back to back
    deadline_rounds: int = 2
    deadline_policy: str = "unicast"  # or "carry"
    wal_compact_every: int = 32  # intervals between WAL compactions
    verify_invariants: bool = True
    crash_plan: object = None  # CrashPlan | None

    def __post_init__(self):
        if self.deadline_policy not in ("unicast", "carry"):
            raise ServiceError(
                "deadline_policy must be 'unicast' or 'carry', got %r"
                % (self.deadline_policy,)
            )


class RekeyDaemon:
    """One key server, run as a service across many rekey intervals."""

    def __init__(
        self,
        server,
        backend=None,
        fleet=None,
        churn=None,
        service=None,
        seed=None,
        obs=None,
    ):
        self.server = server
        #: observability recorder (NULL = disabled, zero-overhead)
        self.obs = obs if obs is not None else NULL
        self.backend = backend or DirectDelivery()
        self.server.set_observer(self.obs)
        self.backend.set_observer(self.obs)
        self.fleet = (
            fleet if fleet is not None else MemberFleet.register_all(server)
        )
        self.churn = churn or NoChurn()
        self.service = service or DaemonConfig()
        self.metrics = ServiceMetrics()
        self._rng = RandomSource(
            server.config.seed if seed is None else seed
        ).generator()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread = None
        #: (message, [names]) batches deferred by the carry policy
        self._carry = []
        #: recovery sets this: the next interval replays the WAL's
        #: requests *only* (no fresh churn), so its rekey reproduces the
        #: crashed interval byte for byte — see :meth:`recover`
        self._replay_interval = False
        self.crashed = None  # DaemonCrash captured by the background loop
        self.wal = None
        self.snapshot_path = None
        if self.service.state_dir is not None:
            import os

            from repro.service.wal import WriteAheadLog

            state_dir = os.fspath(self.service.state_dir)
            os.makedirs(state_dir, exist_ok=True)
            self.wal = WriteAheadLog(os.path.join(state_dir, "wal.jsonl"))
            self.snapshot_path = os.path.join(state_dir, "server.json")

    # -- construction ------------------------------------------------------

    @classmethod
    def start_new(
        cls,
        initial_users,
        config=None,
        backend=None,
        churn=None,
        service=None,
        seed=None,
        obs=None,
    ):
        """Boot a fresh group and (if durable) write the initial snapshot."""
        server = GroupKeyServer(initial_users, config=config)
        daemon = cls(
            server,
            backend=backend,
            churn=churn,
            service=service,
            seed=seed,
            obs=obs,
        )
        if daemon.snapshot_path is not None:
            daemon._save_snapshot()
        return daemon

    @classmethod
    def recover(
        cls,
        state_dir,
        config=None,
        backend=None,
        fleet=None,
        churn=None,
        service=None,
        seed=None,
        resync_members=True,
        obs=None,
    ):
        """Restart from ``state_dir``: snapshot load + WAL replay.

        ``fleet`` is the surviving member population (in-process tests
        pass the pre-crash fleet — members are remote in reality and do
        not die with the server); omit it to re-register every current
        user (the fresh-process path).  With ``resync_members`` set,
        members whose group key does not match the restored server's
        are re-registered over the stand-in SSL channel — the paper's
        story for a member that missed rekey messages; recovery is
        correct without it for any crash point, because the replay
        interval regenerates identical keys, but carried-over users
        whose serve was lost with the crash need the resync.

        When requests were replayed, the next interval is a *replay
        interval*: it processes exactly those requests (churn holds off
        one interval) so the re-run rekey matches what a pre-crash
        delivery may already have handed out.  With ``resync_members``
        off, callers must likewise not submit new requests before that
        interval has run.
        """
        import os

        from repro.keytree.persistence import load_server

        service = service or DaemonConfig()
        service.state_dir = state_dir
        snapshot_path = os.path.join(os.fspath(state_dir), "server.json")
        try:
            server = load_server(snapshot_path, config=config)
        except FileNotFoundError:
            raise ServiceError(
                "no snapshot at %s; nothing to recover" % snapshot_path
            )
        daemon = cls(
            server,
            backend=backend,
            fleet=fleet,
            churn=churn,
            service=service,
            seed=seed,
            obs=obs,
        )
        daemon.metrics.bump("recoveries")
        replayed = rejected = 0
        for record in daemon.wal.pending_requests(server.intervals_processed):
            try:
                if record["op"] == "join":
                    server.request_join(record["user"])
                else:
                    server.request_leave(record["user"])
                replayed += 1
            except ReproError:
                # e.g. a leave whose join it cancels was itself replayed
                # into a cancellation — the pair nets out; or a duplicate
                # from an overlapping trace.  Never fatal on replay.
                rejected += 1
        daemon.metrics.bump("requests_replayed", replayed)
        daemon.metrics.bump("requests_rejected", rejected)
        # The crashed interval may already have *delivered* before dying
        # (post-delivery crash): members then hold the keys of a rekey
        # the snapshot never saw.  Key derivation is deterministic in
        # (seed, node id, version) but NOT in the request set — mixing
        # fresh churn into the re-run would mint the *same* key bytes
        # for a different eviction set, handing the current group key to
        # users the crashed delivery already served.  So the next
        # interval replays the logged requests only; churn resumes after.
        daemon._replay_interval = any(server.pending_requests)
        if resync_members:
            # A joiner registered just before the crash is in the fleet
            # but not yet in the recovered tree (its join was replayed
            # and is pending again) — it re-registers when that join is
            # processed, so drop its stale state now.
            for name in sorted(set(daemon.fleet.members) - server.users):
                daemon.fleet.members.pop(name)
            for name in sorted(server.users - set(daemon.fleet.members)):
                daemon.fleet.register(server, name)
                daemon.metrics.bump("members_resynced")
            for name in daemon.fleet.out_of_sync(server):
                daemon.fleet.register(server, name)
                daemon.metrics.bump("members_resynced")
        daemon.obs.emit(
            "recovery",
            interval=server.intervals_processed,
            replayed=replayed,
            rejected=rejected,
            replay_interval=daemon._replay_interval,
        )
        return daemon

    # -- request intake ----------------------------------------------------

    def submit_join(self, name):
        """Accept (apply + durably log) a join for the next rekey."""
        self._submit("join", name)

    def submit_leave(self, name):
        """Accept (apply + durably log) a leave for the next rekey."""
        self._submit("leave", name)

    def _submit(self, op, name):
        with self._lock:
            interval = self.server.intervals_processed
            if op == "join":
                self.server.request_join(name)
            else:
                self.server.request_leave(name)
            if self.wal is not None:
                self.wal.append_request(op, name, interval)
                if self.obs.enabled:
                    self.obs.emit(
                        "wal_append", op=op, user=name, interval=interval
                    )
            self.metrics.bump(
                "joins_accepted" if op == "join" else "leaves_accepted"
            )

    def _accept_churn(self, events):
        """Apply a churn driver's batch, tolerating invalid requests."""
        rejected = 0
        for op, name in [("join", u) for u in events.joins] + [
            ("leave", u) for u in events.leaves
        ]:
            try:
                self._submit(op, name)
            except ReproError:
                rejected += 1
                self.metrics.bump("requests_rejected")
        return rejected

    # -- crash injection ---------------------------------------------------

    def _maybe_crash(self, interval, point):
        plan = self.service.crash_plan
        if plan is not None and plan.should_fire(interval, point):
            if self.obs.enabled:
                self.obs.emit("crash", interval=interval, point=point)
                if self.obs.bus is not None:
                    self.obs.bus.flush()
            raise DaemonCrash(
                "injected crash at interval %d, point %r" % (interval, point)
            )

    # -- the interval ------------------------------------------------------

    def run_interval(self):
        """Run one complete rekey interval; returns its metrics record."""
        with self._lock:
            obs = self.obs
            interval = self.server.intervals_processed
            if obs.enabled:
                if obs.bus is not None:
                    # Stamp every event emitted while this interval runs
                    # (spans, FEC, WAL, protocol rounds) with its number.
                    obs.bus.set_context(interval=interval)
                obs.emit("interval_start", members=self.server.n_users)
            with obs.span("daemon.interval", interval=interval):
                record, report = self._interval_body(interval)
            if obs.enabled:
                self._record_obs(record, report)
            return record

    def _interval_body(self, interval):
        """The interval pipeline; the caller holds the lock and the
        ``daemon.interval`` root span."""
        obs = self.obs
        t_start = time.perf_counter()
        with obs.span("daemon.carry"):
            carry_served = self._serve_carry()
        if carry_served and obs.enabled:
            obs.emit("carry_served", served=carry_served)
        if self._replay_interval:
            events = ChurnEvents()
            self._replay_interval = False
        else:
            events = self.churn.events(
                interval, self.server.users, self._rng
            )
        with obs.span("daemon.intake"):
            rejected = self._split_accept(events, interval)
        self._maybe_crash(interval, "pre-rekey")

        joins, leaves = self.server.pending_requests
        t_mark = time.perf_counter()
        with obs.span("daemon.rekey"):
            batch, message = self.server.rekey()
        marking_ms = (time.perf_counter() - t_mark) * 1e3
        if obs.enabled:
            obs.emit(
                "marking_complete",
                joins=len(joins),
                leaves=len(leaves),
                n_encryptions=batch.n_encryptions if batch else 0,
                marking_ms=round(marking_ms, 3),
            )
        self._maybe_crash(interval, "post-rekey")

        for name in leaves:
            self.fleet.evict(name)
        for name in joins:
            self.fleet.register(self.server, name)

        report = None
        if not message.is_empty:
            with obs.span("daemon.deliver"):
                report = self.backend.deliver(
                    message,
                    self.fleet,
                    deadline_rounds=self.service.deadline_rounds,
                    policy=self.service.deadline_policy,
                )
            if report.carried:
                self._carry.append((message, list(report.carried)))
        self._maybe_crash(interval, "post-delivery")

        if self.service.verify_invariants:
            self.fleet.check_agreement(
                self.server, exclude=self.pending_carry_names()
            )
        if self.snapshot_path is not None:
            with obs.span("daemon.snapshot"):
                self._save_snapshot()
            if obs.enabled:
                obs.emit("snapshot", path=self.snapshot_path)
            self._maybe_crash(interval, "post-snapshot")
            self.wal.append_commit(interval)
            every = self.service.wal_compact_every
            if every and (interval + 1) % every == 0:
                self.wal.compact(self.server.intervals_processed)
                if obs.enabled:
                    obs.emit(
                        "wal_compact",
                        through_interval=self.server.intervals_processed,
                    )

        record = IntervalMetrics.from_parts(
            interval=interval,
            n_members=self.server.n_users,
            n_joins=len(joins),
            n_leaves=len(leaves),
            rejected_requests=rejected,
            message=None if message.is_empty else message,
            batch=batch,
            marking_ms=marking_ms,
            duration_ms=(time.perf_counter() - t_start) * 1e3,
            report=report,
            carry_served=carry_served,
            group_key_fp=self.server.group_key.fingerprint(),
            wal_seq=self.wal.next_seq - 1 if self.wal else -1,
        )
        self.metrics.record(record)
        return record, report

    def _record_obs(self, record, report):
        """Mirror one interval's record onto the obs surfaces: Prometheus
        histograms/gauges and the ``interval_complete`` event."""
        obs = self.obs
        obs.observe("marking_ms", record.marking_ms)
        obs.observe("interval_ms", record.duration_ms)
        obs.gauge("members", record.n_members)
        obs.gauge("rho", record.rho)
        latencies = IntervalMetrics.recovery_latencies(report)
        if latencies is not None:
            for latency in latencies:
                obs.observe(
                    "recovery_latency_rounds",
                    latency,
                    buckets=ROUNDS_BUCKETS,
                )
        if record.decision not in (IN_DEADLINE, "empty"):
            obs.emit(
                "degradation",
                decision=record.decision,
                unicast_served=record.unicast_served,
                carried_users=record.carried_users,
            )
        obs.emit("interval_complete", **record.to_dict())
        if obs.bus is not None:
            obs.bus.flush()

    def _split_accept(self, events, interval):
        """Accept the driver's events with the mid-requests crash point
        firing after the first half has been logged."""
        half_joins = len(events.joins) // 2
        half_leaves = len(events.leaves) // 2
        first = type(events)(
            joins=events.joins[:half_joins],
            leaves=events.leaves[:half_leaves],
        )
        second = type(events)(
            joins=events.joins[half_joins:],
            leaves=events.leaves[half_leaves:],
        )
        rejected = self._accept_churn(first)
        self._maybe_crash(interval, "mid-requests")
        rejected += self._accept_churn(second)
        return rejected

    def _serve_carry(self):
        """Serve last interval's carried users by unicast from the
        stored message, before this interval's work begins."""
        served = 0
        for message, names in self._carry:
            for name in names:
                member = self.fleet.members.get(name)
                if member is None:  # evicted while stale; stays out
                    continue
                wanted = message.needs_by_user.get(member.user_id, ())
                member.absorb_encryptions(
                    [message.encryption_map[e] for e in wanted],
                    max_kid=message.max_kid,
                )
                served += 1
        self._carry = []
        return served

    def pending_carry_names(self):
        """Names whose key updates are still deferred."""
        names = set()
        for _, batch_names in self._carry:
            names.update(batch_names)
        return names

    def _save_snapshot(self):
        from repro.keytree.persistence import save_server

        save_server(self.server, self.snapshot_path)

    # -- scheduling --------------------------------------------------------

    def run(self, n_intervals, on_interval=None):
        """Run ``n_intervals`` back to back (paced if configured)."""
        records = []
        for _ in range(int(n_intervals)):
            t0 = time.monotonic()
            record = self.run_interval()
            records.append(record)
            if on_interval is not None:
                on_interval(record)
            pace = self.service.interval_seconds
            if pace > 0:
                remaining = pace - (time.monotonic() - t0)
                if remaining > 0:
                    time.sleep(remaining)
        return records

    def start(self, n_intervals=None, on_interval=None):
        """Run intervals on a background thread (stop with :meth:`stop`).

        Requests submitted from other threads interleave safely with
        interval processing.  A :class:`DaemonCrash` fired by the crash
        plan is captured in :attr:`crashed` and terminates the loop —
        exactly like the process dying.
        """
        if self._thread is not None and self._thread.is_alive():
            raise ServiceError("daemon already running")
        self._stop.clear()

        def _loop():
            done = 0
            while not self._stop.is_set():
                if n_intervals is not None and done >= n_intervals:
                    break
                t0 = time.monotonic()
                try:
                    record = self.run_interval()
                except DaemonCrash as crash:
                    self.crashed = crash
                    return
                done += 1
                if on_interval is not None:
                    on_interval(record)
                pace = self.service.interval_seconds
                if pace > 0:
                    self._stop.wait(
                        max(0.0, pace - (time.monotonic() - t0))
                    )

        self._thread = threading.Thread(target=_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout=30.0):
        """Signal the background loop to finish and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- introspection -----------------------------------------------------

    def health(self):
        report = self.metrics.health(n_members=self.server.n_users)
        # Surface which hot-path implementations this daemon runs with,
        # so an operator can tell a reference-mode deployment apart from
        # the (default) fast configuration at a glance.
        report["marking"] = (
            "incremental"
            if self.server.config.incremental_marking
            else "from-scratch"
        )
        report["fec_coder"] = self.server.config.fec_coder
        return report

    def close(self):
        if self.wal is not None:
            self.wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "RekeyDaemon(members=%d, intervals=%d, durable=%s)" % (
            self.server.n_users,
            self.server.intervals_processed,
            self.wal is not None,
        )
