"""The long-running rekey daemon: scheduler, WAL, recovery, degradation.

:class:`RekeyDaemon` runs a :class:`~repro.core.server.GroupKeyServer`
*as a server*: membership requests arrive concurrently (from a churn
driver and/or :meth:`submit_join`/:meth:`submit_leave` callers on other
threads), the paper's periodic rekey fires at each interval end, and the
interval's message travels over a pluggable delivery backend
(:mod:`repro.service.transports`).

**Durability.**  With a ``state_dir`` configured, every acknowledged
request is fsynced to the write-ahead log (:mod:`repro.service.wal`)
and every committed interval atomically replaces the server snapshot
(:func:`repro.keytree.persistence.save_server`).  The discipline:

1. apply the request in memory, *then* append to the WAL, *then*
   acknowledge — nothing is acknowledged before it is durable;
2. at interval end: rekey → deliver → snapshot (atomic replace) →
   ``commit`` marker.  Replay filters on the snapshot's interval
   number, so a crash between snapshot and marker changes nothing.

:meth:`recover` inverts that: load the snapshot, replay the WAL suffix
(re-queueing every request the snapshot has not consumed), and — since
key derivation is deterministic in ``(seed, node id, version)`` — the
re-run rekey regenerates byte-identical key material, making redelivery
after a crash idempotent for members who already absorbed part of the
lost interval.  Forward/backward secrecy survives because evictions are
either in the snapshot (already rekeyed) or in the WAL (re-queued and
rekeyed on the next interval).

**Crash injection.**  A :class:`CrashPlan` raises :class:`DaemonCrash`
(a stand-in for ``SIGKILL`` — no cleanup runs, fsynced state is all
that survives) at a chosen interval and :data:`CRASH_POINTS` site; the
recovery property tests drive this at every point.

**Fault tolerance.**  Storage I/O (WAL appends, snapshot writes) runs
through the :class:`~repro.chaos.seams.Filesystem`/``Clock`` seams with
bounded-retry backoff; a WAL found corrupt at startup is quarantined
instead of aborting; :meth:`recover` walks a snapshot *ladder*
(``server.json`` → ``server.json.prev``) before giving up with
:class:`~repro.errors.RecoveryError`; and a :class:`CircuitBreaker`
caps consecutive unicast-cutover degradations by forcing the cheaper
``carry`` policy for a cooldown.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from repro.chaos.seams import REAL_FILESYSTEM, SYSTEM_CLOCK
from repro.core.server import GroupKeyServer
from repro.errors import RecoveryError, ReproError, ServiceError
from repro.obs.metrics import ROUNDS_BUCKETS
from repro.obs.recorder import NULL
from repro.obs.slo import SLOTracker
from repro.obs.trace import (
    PhaseProfiler,
    format_trace,
    mint_trace_id,
    tracing,
)
from repro.service.churn import ChurnEvents, NoChurn
from repro.service.health import IN_DEADLINE, IntervalMetrics, ServiceMetrics
from repro.service.members import MemberFleet
from repro.service.transports import UNICAST_CUTOVER, DirectDelivery
from repro.util.retry import RetryPolicy
from repro.util.rng import RandomSource

logger = logging.getLogger(__name__)

#: where an injected crash can fire inside one interval, in order
CRASH_POINTS = (
    "mid-requests",   # half the interval's churn accepted (and logged)
    "pre-rekey",      # all requests logged; marking not yet run
    "post-rekey",     # new keys exist in memory; nothing delivered
    "post-delivery",  # members updated; snapshot not yet written
    "post-snapshot",  # snapshot durable; commit marker not yet appended
)


class DaemonCrash(ServiceError):
    """The injected SIGKILL stand-in: abandon the process state."""


@dataclass
class CrashPlan:
    """Fire :class:`DaemonCrash` at (``interval``, ``point``)."""

    interval: int
    point: str

    def __post_init__(self):
        if self.point not in CRASH_POINTS:
            raise ServiceError(
                "unknown crash point %r (valid: %s)"
                % (self.point, ", ".join(CRASH_POINTS))
            )

    def should_fire(self, interval, point):
        return interval == self.interval and point == self.point


class CircuitBreaker:
    """Caps consecutive unicast-cutover degradations (see docs/robustness.md).

    Unicast cutover serves every straggler point-to-point inside the
    interval — correct, but the most expensive failure mode the daemon
    has, and under sustained feedback abuse or loss it can recur every
    interval.  The breaker watches delivery decisions: ``threshold``
    consecutive cutovers **open** it, which forces the cheaper ``carry``
    policy (stale users are served from the stored message next
    interval) for ``cooldown`` intervals; then a **half-open** trial
    interval runs the configured policy again — a clean result closes
    the breaker, another cutover re-opens it.  ``threshold=0`` disables.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold=5, cooldown=3):
        if threshold < 0 or cooldown < 1:
            raise ServiceError(
                "circuit breaker needs threshold >= 0 and cooldown >= 1"
            )
        self.threshold = int(threshold)
        self.cooldown = int(cooldown)
        self.state = self.CLOSED
        self.consecutive = 0
        self.opened_total = 0
        self._open_left = 0

    @property
    def enabled(self):
        return self.threshold > 0

    @property
    def forcing_carry(self):
        """Whether this interval's delivery must use the carry policy."""
        return self.enabled and self.state == self.OPEN

    def _trip(self):
        self.state = self.OPEN
        self._open_left = self.cooldown
        self.opened_total += 1
        self.consecutive = 0
        return "circuit_open"

    def record(self, decision):
        """Feed one interval's delivery decision; returns the transition
        event kind (``circuit_open`` / ``circuit_half_open`` /
        ``circuit_close``) or ``None`` when the state did not change."""
        if not self.enabled:
            return None
        if self.state == self.OPEN:
            self._open_left -= 1
            if self._open_left <= 0:
                self.state = self.HALF_OPEN
                return "circuit_half_open"
            return None
        if decision == UNICAST_CUTOVER:
            if self.state == self.HALF_OPEN:
                return self._trip()  # trial failed: straight back open
            self.consecutive += 1
            if self.consecutive >= self.threshold:
                return self._trip()
            return None
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self.consecutive = 0
            return "circuit_close"
        self.consecutive = 0
        return None

    def snapshot(self):
        """Health-surface view of the breaker."""
        return {
            "state": self.state if self.enabled else "disabled",
            "consecutive_cutovers": self.consecutive,
            "opened_total": self.opened_total,
        }


@dataclass
class DaemonConfig:
    """Service-level knobs (the protocol knobs live in GroupConfig)."""

    state_dir: object = None  # str | Path | None (None = not durable)
    interval_seconds: float = 0.0  # 0 → intervals run back to back
    deadline_rounds: int = 2
    deadline_policy: str = "unicast"  # or "carry"
    wal_compact_every: int = 32  # intervals between WAL compactions
    verify_invariants: bool = True
    crash_plan: object = None  # CrashPlan | None
    #: consecutive unicast-cutover intervals before the circuit breaker
    #: opens and forces the carry policy (0 disables the breaker)
    circuit_threshold: int = 5
    #: intervals the breaker stays open before a half-open trial
    circuit_cooldown: int = 3

    def __post_init__(self):
        if self.deadline_policy not in ("unicast", "carry"):
            raise ServiceError(
                "deadline_policy must be 'unicast' or 'carry', got %r"
                % (self.deadline_policy,)
            )


class RekeyDaemon:
    """One key server, run as a service across many rekey intervals."""

    def __init__(
        self,
        server,
        backend=None,
        fleet=None,
        churn=None,
        service=None,
        seed=None,
        obs=None,
        fs=None,
        clock=None,
        retry=None,
        epoch=None,
        fence=None,
    ):
        self.server = server
        #: observability recorder (NULL = disabled, zero-overhead)
        self.obs = obs if obs is not None else NULL
        #: storage/time seams — the chaos layer swaps in faulty doubles
        self.fs = fs if fs is not None else REAL_FILESYSTEM
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.retry = retry if retry is not None else RetryPolicy()
        self.backend = backend or DirectDelivery()
        self.server.set_observer(self.obs)
        self.backend.set_observer(self.obs)
        self.fleet = (
            fleet if fleet is not None else MemberFleet.register_all(server)
        )
        self.churn = churn or NoChurn()
        self.service = service or DaemonConfig()
        self.metrics = ServiceMetrics()
        self.circuit = CircuitBreaker(
            threshold=self.service.circuit_threshold,
            cooldown=self.service.circuit_cooldown,
        )
        #: multi-window SLO burn-rate tracking (enabled with obs)
        self.slo = (
            SLOTracker(clock=self.clock.monotonic)
            if self.obs.enabled
            else None
        )
        self._rng = RandomSource(
            server.config.seed if seed is None else seed
        ).generator()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread = None
        #: (message, [names]) batches deferred by the carry policy
        self._carry = []
        #: recovery sets this: the next interval replays the WAL's
        #: requests *only* (no fresh churn), so its rekey reproduces the
        #: crashed interval byte for byte — see :meth:`recover`
        self._replay_interval = False
        self.crashed = None  # DaemonCrash captured by the background loop
        #: HA identity (see docs/ha.md): the writer's epoch fencing
        #: token and the lease that mints them.  ``None`` epoch =
        #: standalone (no fencing, no ``epoch`` keys on disk).
        self.epoch = epoch if epoch is None else int(epoch)
        self.fence = fence
        self.role = "standalone" if epoch is None else "leader"
        #: leader-side replication tap (a ``LeaderPublisher``), attached
        #: via :meth:`attach_replication`
        self.replication = None
        self.wal = None
        self.snapshot_path = None
        if self.service.state_dir is not None:
            import os

            from repro.service.wal import WriteAheadLog

            state_dir = os.fspath(self.service.state_dir)
            os.makedirs(state_dir, exist_ok=True)
            # Quarantine (not abort) on a corrupt log: startup always
            # gets *a* WAL; what was salvaged/lost is an emitted event.
            self.wal = WriteAheadLog(
                os.path.join(state_dir, "wal.jsonl"),
                fs=self.fs,
                clock=self.clock,
                retry=self.retry,
                on_corruption="quarantine",
                obs=self.obs,
                epoch=self.epoch,
                fence=self.fence,
            )
            self.snapshot_path = os.path.join(state_dir, "server.json")

    # -- construction ------------------------------------------------------

    @classmethod
    def start_new(
        cls,
        initial_users,
        config=None,
        backend=None,
        churn=None,
        service=None,
        seed=None,
        obs=None,
        fs=None,
        clock=None,
        retry=None,
        epoch=None,
        fence=None,
    ):
        """Boot a fresh group and (if durable) write the initial snapshot."""
        server = GroupKeyServer(initial_users, config=config)
        daemon = cls(
            server,
            backend=backend,
            churn=churn,
            service=service,
            seed=seed,
            obs=obs,
            fs=fs,
            clock=clock,
            retry=retry,
            epoch=epoch,
            fence=fence,
        )
        if daemon.snapshot_path is not None:
            if not daemon._save_snapshot():
                # Without a baseline snapshot there is nothing to
                # recover into — refuse to pretend we are durable.
                raise ServiceError(
                    "could not write the initial snapshot to %s"
                    % daemon.snapshot_path
                )
        return daemon

    @classmethod
    def recover(
        cls,
        state_dir,
        config=None,
        backend=None,
        fleet=None,
        churn=None,
        service=None,
        seed=None,
        resync_members=True,
        obs=None,
        fs=None,
        clock=None,
        retry=None,
        epoch=None,
        fence=None,
    ):
        """Restart from ``state_dir``: snapshot load + WAL replay.

        ``fleet`` is the surviving member population (in-process tests
        pass the pre-crash fleet — members are remote in reality and do
        not die with the server); omit it to re-register every current
        user (the fresh-process path).  With ``resync_members`` set,
        members whose group key does not match the restored server's
        are re-registered over the stand-in SSL channel — the paper's
        story for a member that missed rekey messages; recovery is
        correct without it for any crash point, because the replay
        interval regenerates identical keys, but carried-over users
        whose serve was lost with the crash need the resync.

        When requests were replayed, the next interval is a *replay
        interval*: it processes exactly those requests (churn holds off
        one interval) so the re-run rekey matches what a pre-crash
        delivery may already have handed out.  With ``resync_members``
        off, callers must likewise not submit new requests before that
        interval has run.
        """
        import os

        from repro.keytree.persistence import PREVIOUS_SUFFIX

        service = service or DaemonConfig()
        service.state_dir = state_dir
        snapshot_path = os.path.join(os.fspath(state_dir), "server.json")
        server, snapshot_fallbacks = cls._load_snapshot_ladder(
            snapshot_path,
            [snapshot_path, snapshot_path + PREVIOUS_SUFFIX],
            config=config,
            obs=obs if obs is not None else NULL,
            fs=fs if fs is not None else REAL_FILESYSTEM,
        )
        daemon = cls(
            server,
            backend=backend,
            fleet=fleet,
            churn=churn,
            service=service,
            seed=seed,
            obs=obs,
            fs=fs,
            clock=clock,
            retry=retry,
            epoch=epoch,
            fence=fence,
        )
        daemon.metrics.bump("recoveries")
        daemon.metrics.bump("snapshot_fallbacks", snapshot_fallbacks)
        replayed = rejected = 0
        for record in daemon.wal.pending_requests(server.intervals_processed):
            try:
                if record["op"] == "join":
                    server.request_join(record["user"])
                else:
                    server.request_leave(record["user"])
                replayed += 1
            except ReproError:
                # e.g. a leave whose join it cancels was itself replayed
                # into a cancellation — the pair nets out; or a duplicate
                # from an overlapping trace.  Never fatal on replay.
                rejected += 1
        daemon.metrics.bump("requests_replayed", replayed)
        daemon.metrics.bump("requests_rejected", rejected)
        # The crashed interval may already have *delivered* before dying
        # (post-delivery crash): members then hold the keys of a rekey
        # the snapshot never saw.  Key derivation is deterministic in
        # (seed, node id, version) but NOT in the request set — mixing
        # fresh churn into the re-run would mint the *same* key bytes
        # for a different eviction set, handing the current group key to
        # users the crashed delivery already served.  So the next
        # interval replays the logged requests only; churn resumes after.
        daemon._replay_interval = any(server.pending_requests)
        if resync_members:
            # A joiner registered just before the crash is in the fleet
            # but not yet in the recovered tree (its join was replayed
            # and is pending again) — it re-registers when that join is
            # processed, so drop its stale state now.
            for name in sorted(set(daemon.fleet.members) - server.users):
                daemon.fleet.forget(name)
            for name in sorted(server.users - set(daemon.fleet.members)):
                daemon.fleet.register(server, name)
                daemon.metrics.bump("members_resynced")
            for name in daemon.fleet.out_of_sync(server):
                daemon.fleet.register(server, name)
                daemon.metrics.bump("members_resynced")
        daemon.obs.emit(
            "recovery",
            interval=server.intervals_processed,
            replayed=replayed,
            rejected=rejected,
            replay_interval=daemon._replay_interval,
        )
        return daemon

    @classmethod
    def _load_snapshot_ladder(cls, primary, candidates, config, obs, fs):
        """Walk the snapshot escalation ladder, newest generation first.

        Returns ``(server, n_fallbacks)`` — the first generation that
        loads and verifies, plus how many damaged ones were passed over.
        A damaged generation (CRC mismatch, unparseable JSON, wrong
        kind) is quarantined to ``<path>.corrupt-<n>`` and a
        ``snapshot_fallback`` event emitted; the ladder then tries the
        next one.  Missing generations are skipped silently.  When the
        *current* generation was damaged, falling back to ``.prev``
        composes with WAL replay because compaction always keeps the
        last committed interval's records (see ``_interval_body``).

        Raises :class:`~repro.errors.RecoveryError` when every rung is
        exhausted, or :class:`ServiceError` when none ever existed.
        """
        from repro.errors import KeyTreeError
        from repro.keytree.persistence import load_server
        from repro.service.wal import quarantine_path

        import os

        found_any = False
        failures = []
        for candidate in candidates:
            try:
                server = load_server(candidate, config=config)
            except FileNotFoundError:
                continue
            except KeyTreeError as exc:
                found_any = True
                failures.append("%s: %s" % (os.path.basename(candidate), exc))
                destination = quarantine_path(candidate, fs)
                fs.replace(candidate, destination)
                fs.fsync_dir(os.path.dirname(candidate) or ".")
                obs.emit(
                    "snapshot_fallback",
                    snapshot=os.path.basename(candidate),
                    quarantined=os.path.basename(destination),
                    error=str(exc),
                )
                logger.warning(
                    "snapshot %s is damaged (%s); quarantined to %s",
                    candidate,
                    exc,
                    destination,
                )
                continue
            if candidate != primary:
                obs.emit(
                    "snapshot_recovered_from",
                    snapshot=os.path.basename(candidate),
                    interval=server.intervals_processed,
                )
            return server, len(failures)
        if not found_any:
            raise ServiceError(
                "no snapshot at %s; nothing to recover" % primary
            )
        raise RecoveryError(
            "every snapshot generation is damaged (%s); quarantined copies "
            "are alongside the state dir for forensics" % "; ".join(failures)
        )

    # -- replication -------------------------------------------------------

    def attach_replication(self, publisher):
        """Wire a :class:`repro.ha.replication.LeaderPublisher` into the
        write path: every durable WAL append is streamed to followers,
        and each committed interval is followed by a state-digest frame
        so followers can verify convergence before they would promote.
        """
        if self.wal is None:
            raise ServiceError("replication needs a durable daemon")
        self.replication = publisher
        self.wal.on_append = publisher.on_wal_record
        return publisher

    # -- request intake ----------------------------------------------------

    def submit_join(self, name):
        """Accept (apply + durably log) a join for the next rekey."""
        self._submit("join", name)

    def submit_leave(self, name):
        """Accept (apply + durably log) a leave for the next rekey."""
        self._submit("leave", name)

    def _submit(self, op, name):
        with self._lock:
            interval = self.server.intervals_processed
            if op == "join":
                self.server.request_join(name)
            else:
                self.server.request_leave(name)
            if self.wal is not None:
                try:
                    self.wal.append_request(op, name, interval)
                except OSError as exc:
                    # Retries are exhausted (``io_giveup`` was emitted).
                    # The request is applied in memory but NOT durable,
                    # so it must not be acknowledged: surface the
                    # failure as a WalError — churn drivers count it
                    # rejected; direct submitters see the refusal.
                    from repro.errors import WalError

                    raise WalError(
                        "accepted %s(%r) could not be durably logged: %s"
                        % (op, name, exc)
                    )
                if self.obs.enabled:
                    self.obs.emit(
                        "wal_append", op=op, user=name, interval=interval
                    )
            self.metrics.bump(
                "joins_accepted" if op == "join" else "leaves_accepted"
            )

    def _accept_churn(self, events):
        """Apply a churn driver's batch, tolerating invalid requests."""
        rejected = 0
        for op, name in [("join", u) for u in events.joins] + [
            ("leave", u) for u in events.leaves
        ]:
            try:
                self._submit(op, name)
            except ReproError:
                rejected += 1
                self.metrics.bump("requests_rejected")
        return rejected

    # -- crash injection ---------------------------------------------------

    def _maybe_crash(self, interval, point):
        plan = self.service.crash_plan
        if plan is not None and plan.should_fire(interval, point):
            if self.obs.enabled:
                self.obs.emit("crash", interval=interval, point=point)
                if self.obs.bus is not None:
                    self.obs.bus.flush()
            raise DaemonCrash(
                "injected crash at interval %d, point %r" % (interval, point)
            )

    # -- the interval ------------------------------------------------------

    def run_interval(self):
        """Run one complete rekey interval; returns its metrics record."""
        with self._lock:
            obs = self.obs
            interval = self.server.intervals_processed
            # Deterministic in (seed, interval): the same run always
            # mints the same trace ids, so pinned-digest tests hold.
            trace_id = mint_trace_id(self.server.config.seed, interval)
            profiler = None
            if obs.enabled:
                if obs.bus is not None:
                    # Stamp every event emitted while this interval runs
                    # (spans, FEC, WAL, protocol rounds) with its number
                    # and the interval's trace id.
                    obs.bus.set_context(
                        interval=interval, trace=format_trace(trace_id)
                    )
                obs.emit("interval_start", members=self.server.n_users)
                profiler = PhaseProfiler(self.server.config.engine)
                obs.profiler = profiler
            try:
                with tracing(trace_id, interval):
                    with obs.span("daemon.interval", interval=interval):
                        record, report = self._interval_body(interval)
            finally:
                if profiler is not None:
                    obs.profiler = None
            if obs.enabled:
                profiler.finish(obs, interval)
                self._record_obs(record, report)
            return record

    def _interval_body(self, interval):
        """The interval pipeline; the caller holds the lock and the
        ``daemon.interval`` root span."""
        obs = self.obs
        t_start = time.perf_counter()
        with obs.span("daemon.carry"):
            carry_served = self._serve_carry()
        if carry_served and obs.enabled:
            obs.emit("carry_served", served=carry_served)
        if self._replay_interval:
            events = ChurnEvents()
            self._replay_interval = False
        else:
            events = self.churn.events(
                interval, self.server.users, self._rng
            )
        with obs.span("daemon.intake"):
            rejected = self._split_accept(events, interval)
        self._maybe_crash(interval, "pre-rekey")

        joins, leaves = self.server.pending_requests
        t_mark = time.perf_counter()
        with obs.span("daemon.rekey"):
            batch, message = self.server.rekey()
        marking_ms = (time.perf_counter() - t_mark) * 1e3
        if obs.enabled:
            obs.emit(
                "marking_complete",
                joins=len(joins),
                leaves=len(leaves),
                n_encryptions=batch.n_encryptions if batch else 0,
                marking_ms=round(marking_ms, 3),
            )
        self._maybe_crash(interval, "post-rekey")

        for name in leaves:
            self.fleet.evict(name)
        for name in joins:
            self.fleet.register(self.server, name)

        report = None
        policy = self.service.deadline_policy
        if self.circuit.forcing_carry:
            policy = "carry"
        if not message.is_empty:
            with obs.span("daemon.deliver"):
                report = self.backend.deliver(
                    message,
                    self.fleet,
                    deadline_rounds=self.service.deadline_rounds,
                    policy=policy,
                )
            if report.carried:
                self._carry.append((message, list(report.carried)))
            if report.detail.get("policy_ignored"):
                # The transport could not honour the configured carry
                # policy (UDP always cuts over) — count it so the health
                # ledger shows the policy is not in force.
                self.metrics.bump("policy_ignored")
            transition = self.circuit.record(report.decision)
            if transition is not None:
                if transition == "circuit_open":
                    self.metrics.bump("circuit_opens")
                if obs.enabled:
                    obs.emit(
                        transition,
                        interval=interval,
                        consecutive=self.circuit.consecutive,
                        cooldown=self.circuit.cooldown,
                    )
        self._maybe_crash(interval, "post-delivery")

        if self.service.verify_invariants:
            self.fleet.check_agreement(
                self.server, exclude=self.pending_carry_names()
            )
        if self.snapshot_path is not None:
            with obs.span("daemon.snapshot"):
                snapshot_ok = self._save_snapshot()
            if snapshot_ok:
                if obs.enabled:
                    obs.emit("snapshot", path=self.snapshot_path)
                self._maybe_crash(interval, "post-snapshot")
                self.wal.append_commit(interval)
                if self.replication is not None:
                    self.replication.on_commit(self.server, interval)
                every = self.service.wal_compact_every
                if every and (interval + 1) % every == 0:
                    # Keep the last committed interval's records too:
                    # recovery may fall back to the ``.prev`` snapshot
                    # generation, which replays from one interval back.
                    try:
                        self.wal.compact(
                            max(0, self.server.intervals_processed - 1)
                        )
                    except OSError as exc:
                        # Compaction only reclaims space; a failed one
                        # leaves the full (valid) log in place.
                        if obs.enabled:
                            obs.emit(
                                "io_giveup",
                                op="wal-compact",
                                attempts=1,
                                error=str(exc),
                            )
                    else:
                        if obs.enabled:
                            obs.emit(
                                "wal_compact",
                                through_interval=(
                                    self.server.intervals_processed - 1
                                ),
                            )
            else:
                # The interval's state is only in memory + WAL: skip the
                # commit marker and compaction so a crash now recovers
                # from the previous snapshot and replays this interval.
                self.metrics.bump("snapshot_failures")
                if obs.enabled:
                    obs.emit(
                        "snapshot_skipped",
                        interval=interval,
                        path=self.snapshot_path,
                    )

        record = IntervalMetrics.from_parts(
            interval=interval,
            n_members=self.server.n_users,
            n_joins=len(joins),
            n_leaves=len(leaves),
            rejected_requests=rejected,
            message=None if message.is_empty else message,
            batch=batch,
            marking_ms=marking_ms,
            duration_ms=(time.perf_counter() - t_start) * 1e3,
            report=report,
            carry_served=carry_served,
            group_key_fp=self.server.group_key.fingerprint(),
            wal_seq=self.wal.next_seq - 1 if self.wal else -1,
        )
        self.metrics.record(record)
        return record, report

    def _record_obs(self, record, report):
        """Mirror one interval's record onto the obs surfaces: Prometheus
        histograms/gauges and the ``interval_complete`` event."""
        obs = self.obs
        obs.observe("marking_ms", record.marking_ms)
        obs.observe("interval_ms", record.duration_ms)
        obs.gauge("members", record.n_members)
        obs.gauge("rho", record.rho)
        if self.epoch is not None:
            obs.gauge("ha_epoch", self.epoch)
        latencies = IntervalMetrics.recovery_latencies(report)
        if latencies is not None:
            for latency in latencies:
                obs.observe(
                    "recovery_latency_rounds",
                    latency,
                    buckets=ROUNDS_BUCKETS,
                )
        if self.slo is not None:
            self.slo.record_deadline(
                record.decision in (IN_DEADLINE, "empty")
            )
            if latencies is not None:
                budget = self.service.deadline_rounds
                for latency in latencies:
                    self.slo.record_recovery(latency <= budget)
            self.slo.publish(obs, interval=record.interval)
        if record.decision not in (IN_DEADLINE, "empty"):
            obs.emit(
                "degradation",
                decision=record.decision,
                unicast_served=record.unicast_served,
                carried_users=record.carried_users,
            )
        obs.emit("interval_complete", **record.to_dict())
        if obs.bus is not None:
            obs.bus.flush()

    def _split_accept(self, events, interval):
        """Accept the driver's events with the mid-requests crash point
        firing after the first half has been logged."""
        half_joins = len(events.joins) // 2
        half_leaves = len(events.leaves) // 2
        first = type(events)(
            joins=events.joins[:half_joins],
            leaves=events.leaves[:half_leaves],
        )
        second = type(events)(
            joins=events.joins[half_joins:],
            leaves=events.leaves[half_leaves:],
        )
        rejected = self._accept_churn(first)
        self._maybe_crash(interval, "mid-requests")
        rejected += self._accept_churn(second)
        return rejected

    def _serve_carry(self):
        """Serve last interval's carried users by unicast from the
        stored message, before this interval's work begins."""
        served = 0
        for message, names in self._carry:
            for name in names:
                member = self.fleet.members.get(name)
                if member is None:  # evicted while stale; stays out
                    continue
                wanted = message.needs_by_user.get(member.user_id, ())
                member.absorb_encryptions(
                    [message.encryption_map[e] for e in wanted],
                    max_kid=message.max_kid,
                )
                served += 1
        self._carry = []
        return served

    def pending_carry_names(self):
        """Names whose key updates are still deferred."""
        names = set()
        for _, batch_names in self._carry:
            names.update(batch_names)
        return names

    def _save_snapshot(self):
        """Write the server snapshot (rotating the previous generation),
        retrying transient I/O errors; returns whether it succeeded.

        On persistent failure the caller must treat the interval as
        uncommitted — the WAL still covers it, so nothing is lost, only
        not yet folded into a snapshot.
        """
        from repro.keytree.persistence import save_server

        def attempt():
            save_server(
                self.server,
                self.snapshot_path,
                fs=self.fs,
                rotate=True,
                epoch=self.epoch,
            )

        try:
            self.retry.run(
                attempt,
                clock=self.clock,
                on_retry=lambda n, err: self.obs.emit(
                    "io_retry", op="snapshot-save", attempt=n, error=str(err)
                ),
                on_giveup=lambda n, err: self.obs.emit(
                    "io_giveup", op="snapshot-save", attempts=n, error=str(err)
                ),
            )
        except OSError as exc:
            logger.warning(
                "snapshot save to %s failed after retries: %s",
                self.snapshot_path,
                exc,
            )
            return False
        return True

    # -- scheduling --------------------------------------------------------

    def run(self, n_intervals, on_interval=None):
        """Run ``n_intervals`` back to back (paced if configured)."""
        records = []
        for _ in range(int(n_intervals)):
            t0 = self.clock.monotonic()
            record = self.run_interval()
            records.append(record)
            if on_interval is not None:
                on_interval(record)
            pace = self.service.interval_seconds
            if pace > 0:
                remaining = pace - (self.clock.monotonic() - t0)
                if remaining > 0:
                    self.clock.sleep(remaining)
        return records

    def start(self, n_intervals=None, on_interval=None):
        """Run intervals on a background thread (stop with :meth:`stop`).

        Requests submitted from other threads interleave safely with
        interval processing.  A :class:`DaemonCrash` fired by the crash
        plan is captured in :attr:`crashed` and terminates the loop —
        exactly like the process dying.
        """
        if self._thread is not None and self._thread.is_alive():
            raise ServiceError("daemon already running")
        self._stop.clear()

        def _loop():
            done = 0
            while not self._stop.is_set():
                if n_intervals is not None and done >= n_intervals:
                    break
                t0 = time.monotonic()
                try:
                    record = self.run_interval()
                except DaemonCrash as crash:
                    self.crashed = crash
                    return
                done += 1
                if on_interval is not None:
                    on_interval(record)
                pace = self.service.interval_seconds
                if pace > 0:
                    self._stop.wait(
                        max(0.0, pace - (time.monotonic() - t0))
                    )

        self._thread = threading.Thread(target=_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout=30.0):
        """Signal the background loop to finish and wait for it.

        Returns ``True`` when the loop exited within ``timeout`` (or no
        loop was running); ``False`` — with a logged warning — when the
        thread is still alive, so operators see a hung shutdown instead
        of silently abandoning a daemon thread mid-interval.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        if thread.is_alive():
            logger.warning(
                "daemon loop did not stop within %.1fs "
                "(interval still running); thread left joined-to-daemon",
                timeout,
            )
            return False
        self._thread = None
        return True

    # -- introspection -----------------------------------------------------

    def health(self):
        report = self.metrics.health(n_members=self.server.n_users)
        # Surface which hot-path implementations this daemon runs with,
        # so an operator can tell a reference-mode deployment apart from
        # the (default) fast configuration at a glance.
        report["marking"] = (
            "incremental"
            if self.server.config.incremental_marking
            else "from-scratch"
        )
        report["fec_coder"] = self.server.config.fec_coder
        report["engine"] = self.server.config.engine
        report["circuit"] = self.circuit.snapshot()
        report["slo"] = (
            None if self.slo is None else self.slo.snapshot()
        )
        report["ha"] = {
            "role": self.role,
            "epoch": 0 if self.epoch is None else self.epoch,
            "replication": (
                None
                if self.replication is None
                else self.replication.snapshot()
            ),
        }
        return report

    def close(self):
        if self.wal is not None:
            self.wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "RekeyDaemon(members=%d, intervals=%d, durable=%s)" % (
            self.server.n_users,
            self.server.intervals_processed,
            self.wal is not None,
        )
