"""Long-running rekey service: daemon, churn drivers, WAL, health.

The paper's analysis is per-interval; this package runs the key server
*across* intervals as a durable, observable daemon:

- :mod:`repro.service.daemon` — :class:`RekeyDaemon`: scheduler,
  concurrent request intake, crash injection, snapshot+WAL recovery;
- :mod:`repro.service.churn` — sustained workload drivers (Poisson at
  the paper's α, flash crowds, trace replay);
- :mod:`repro.service.wal` — the fsynced write-ahead log of accepted
  membership requests;
- :mod:`repro.service.transports` — delivery backends (direct / the
  simulated lossy transport with AdjustRho / real loopback UDP) with
  per-interval deadlines and recorded degradation decisions;
- :mod:`repro.service.members` — the in-process member population that
  survives daemon crashes and checks agreement/lockout invariants;
- :mod:`repro.service.health` — per-interval metrics ledger, JSON
  export, and the probe-style health summary.

Driven from the CLI by ``python -m repro serve``; see ``docs/service.md``.
"""

from repro.service.churn import (
    ChurnEvents,
    FlashCrowdChurn,
    NoChurn,
    PoissonChurn,
    TraceChurn,
    make_driver,
    save_trace,
)
from repro.service.daemon import (
    CRASH_POINTS,
    CircuitBreaker,
    CrashPlan,
    DaemonConfig,
    DaemonCrash,
    RekeyDaemon,
)
from repro.service.health import IntervalMetrics, ServiceMetrics
from repro.service.members import MemberFleet
from repro.service.transports import (
    DeliveryReport,
    DirectDelivery,
    SessionDelivery,
    UdpDelivery,
    make_backend,
)
from repro.service.wal import (
    WriteAheadLog,
    quarantine_path,
    read_records,
    scan_records,
)

__all__ = [
    "CRASH_POINTS",
    "ChurnEvents",
    "CircuitBreaker",
    "CrashPlan",
    "DaemonConfig",
    "DaemonCrash",
    "DeliveryReport",
    "DirectDelivery",
    "FlashCrowdChurn",
    "IntervalMetrics",
    "MemberFleet",
    "NoChurn",
    "PoissonChurn",
    "RekeyDaemon",
    "ServiceMetrics",
    "SessionDelivery",
    "TraceChurn",
    "UdpDelivery",
    "WriteAheadLog",
    "make_backend",
    "make_driver",
    "quarantine_path",
    "read_records",
    "save_trace",
    "scan_records",
]
