"""Health and metrics surface of the rekey daemon.

Reuses the definitions of :mod:`repro.transport.metrics` (NACK counts,
rounds, unicast accounting) and adds the *service-level* dimensions the
paper's one-shot evaluation never needed: per-interval marking time,
the ρ trajectory across intervals, recovery-latency percentiles,
degradation decisions, and crash/recovery counters.

Two export surfaces:

- ``to_dict()`` / ``to_json()`` — the full ledger, schema documented in
  ``docs/service.md`` (stable keys; additive evolution only);
- ``health()`` — a cheap liveness/quality summary (``ok`` unless recent
  intervals degraded or an invariant check failed), the shape a probe
  endpoint would serve.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field

import numpy as np

IN_DEADLINE = "in-deadline"


def _percentile(values, q):
    if values is None or len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class IntervalMetrics:
    """Everything measured during one rekey interval."""

    interval: int
    n_members: int
    n_joins: int
    n_leaves: int
    rejected_requests: int
    message_id: int
    n_encryptions: int
    n_enc_packets: int
    n_blocks: int
    marking_ms: float
    duration_ms: float
    transport: str
    decision: str
    rho: float
    multicast_rounds: int
    first_round_nacks: int
    unicast_served: int
    carried_users: int
    carry_served: int
    #: recovery latency percentiles, in multicast rounds (unicast- or
    #: carry-recovered users count as one round past the last multicast
    #: round — they were still waiting when multicast stopped); NaN when
    #: the backend observes only aggregates (UDP), exported as ``null``
    recovery_p50: float
    recovery_p90: float
    recovery_p99: float
    group_key_fp: str
    wal_seq: int

    def to_dict(self):
        data = asdict(self)
        for key in ("recovery_p50", "recovery_p90", "recovery_p99"):
            value = data[key]
            if isinstance(value, float) and math.isnan(value):
                data[key] = None  # JSON has no NaN; null = unobserved
        return data

    @staticmethod
    def recovery_latencies(report):
        """Per-user recovery latencies in rounds from a delivery report.

        ``None`` when nothing per-user was observed: an empty interval
        (``report`` is ``None``) or a backend that only sees aggregates
        (UDP — ``recovery_rounds`` is ``None``).  Users multicast never
        recovered (round 0) count as one round past the last one.
        """
        if report is None or report.recovery_rounds is None:
            return None
        rounds = report.multicast_rounds
        return [
            r if r > 0 else rounds + 1 for r in report.recovery_rounds
        ]

    @classmethod
    def from_parts(
        cls,
        interval,
        n_members,
        n_joins,
        n_leaves,
        rejected_requests,
        message,
        batch,
        marking_ms,
        duration_ms,
        report,
        carry_served,
        group_key_fp,
        wal_seq,
    ):
        """Assemble the record from the daemon's working objects.

        ``report`` is a :class:`~repro.service.transports.DeliveryReport`
        or ``None`` for an empty interval (no membership change — the
        message was empty and nothing was sent).
        """
        rounds = report.multicast_rounds if report else 0
        latencies = cls.recovery_latencies(report)
        if report is not None and latencies is None:
            # Aggregate-only backend (UDP): a synthetic single-sample
            # distribution would masquerade as a real percentile, so the
            # percentiles are marked unobserved instead.
            p50 = p90 = p99 = float("nan")
        else:
            p50 = round(_percentile(latencies, 50), 3)
            p90 = round(_percentile(latencies, 90), 3)
            p99 = round(_percentile(latencies, 99), 3)
        return cls(
            interval=interval,
            n_members=n_members,
            n_joins=n_joins,
            n_leaves=n_leaves,
            rejected_requests=rejected_requests,
            message_id=message.message_id if message else -1,
            n_encryptions=batch.n_encryptions if batch else 0,
            n_enc_packets=message.n_enc_packets if message else 0,
            n_blocks=message.n_blocks if message else 0,
            marking_ms=round(marking_ms, 3),
            duration_ms=round(duration_ms, 3),
            transport=report.mode if report else "none",
            decision=report.decision if report else "empty",
            rho=float(report.rho) if report else 0.0,
            multicast_rounds=rounds,
            first_round_nacks=report.first_round_nacks if report else 0,
            unicast_served=report.unicast_served if report else 0,
            carried_users=len(report.carried) if report else 0,
            carry_served=carry_served,
            recovery_p50=p50,
            recovery_p90=p90,
            recovery_p99=p99,
            group_key_fp=group_key_fp,
            wal_seq=wal_seq,
        )


class ServiceMetrics:
    """The daemon's metrics ledger and health summary."""

    #: health turns "degraded" when more than this fraction of the
    #: recent window missed the in-interval deadline
    DEGRADED_FRACTION = 0.5
    WINDOW = 5

    def __init__(self):
        self.intervals = []
        self.counters = {
            "joins_accepted": 0,
            "leaves_accepted": 0,
            "requests_rejected": 0,
            "requests_replayed": 0,
            "members_resynced": 0,
            "recoveries": 0,
            "empty_intervals": 0,
            "deadline_misses": 0,
            # robustness surface (see docs/robustness.md)
            "snapshot_failures": 0,
            "snapshot_fallbacks": 0,
            "circuit_opens": 0,
            # intervals whose configured degradation policy the
            # transport could not honour (UDP ignores "carry")
            "policy_ignored": 0,
        }

    def record(self, interval_metrics):
        self.intervals.append(interval_metrics)
        if interval_metrics.decision == "empty":
            self.counters["empty_intervals"] += 1
        elif interval_metrics.decision != IN_DEADLINE:
            self.counters["deadline_misses"] += 1

    def bump(self, counter, by=1):
        self.counters[counter] += by

    @property
    def n_intervals(self):
        return len(self.intervals)

    def rho_trajectory(self):
        return [m.rho for m in self.intervals]

    def to_dict(self):
        return {
            "schema": 1,
            "counters": dict(self.counters),
            "intervals": [m.to_dict() for m in self.intervals],
            "rho_trajectory": self.rho_trajectory(),
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    def health(self, n_members=None):
        """Probe-style summary: status, why, and headline gauges."""
        recent = self.intervals[-self.WINDOW:]
        misses = [m for m in recent if m.decision not in (IN_DEADLINE, "empty")]
        status, reason = "ok", ""
        if recent and len(misses) > self.DEGRADED_FRACTION * len(recent):
            status = "degraded"
            reason = "%d of last %d intervals missed the deadline" % (
                len(misses),
                len(recent),
            )
        last = self.intervals[-1] if self.intervals else None
        notes = []
        if self.counters["policy_ignored"]:
            notes.append(
                "configured degradation policy was not in force for %d "
                "interval(s): the transport always cuts over to unicast"
                % self.counters["policy_ignored"]
            )
        return {
            "status": status,
            "reason": reason,
            "intervals_processed": self.n_intervals,
            "members": (
                n_members if n_members is not None
                else (last.n_members if last else 0)
            ),
            "recoveries": self.counters["recoveries"],
            "deadline_misses": self.counters["deadline_misses"],
            "notes": notes,
            "last_interval": last.to_dict() if last else None,
        }

    # -- human output ------------------------------------------------------

    TABLE_HEADER = (
        " int | members |  J/L  | encs | rho  | rounds | NACKs |"
        " uni | p99 rnd | mark ms | decision"
    )

    @staticmethod
    def format_row(m):
        p99 = m.recovery_p99
        p99_cell = (
            "      -"
            if isinstance(p99, float) and math.isnan(p99)
            else "%7.1f" % p99
        )
        return (
            "%4d | %7d | %2d/%-2d | %4d | %.2f | %6d | %5d | %3d |"
            " %s | %7.2f | %s"
            % (
                m.interval,
                m.n_members,
                m.n_joins,
                m.n_leaves,
                m.n_encryptions,
                m.rho,
                m.multicast_rounds,
                m.first_round_nacks,
                m.unicast_served,
                p99_cell,
                m.marking_ms,
                m.decision,
            )
        )
