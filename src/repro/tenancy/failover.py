"""Bulk failover: one promotion re-homes every tenant.

The single-group HA story (:mod:`repro.ha`) promotes one standby into
one group.  At tenancy scale the unit of failover is the *fleet*: the
storage root holds a thousand tenants' WALs and snapshots plus one
lease file, and :func:`promote_all` turns a cold standby into the
leader of all of them in one linearization step:

1. **Acquire the lease** — the root's single ``lease.json`` mints the
   next epoch.  Because every tenant's WAL was constructed with this
   lease as its fence, the one acquisition fences a deposed leader out
   of *every* tenant's write path before any byte lands.
2. **Recover every tenant** — each walks the ordinary snapshot + WAL
   recovery ladder under the new epoch
   (:meth:`~repro.tenancy.daemon.MultiGroupDaemon.recover_all`), so a
   tenant mid-crash replays its logged requests exactly as single-group
   recovery does: no interval is lost in any tenant.
3. **Verify the digests** — the old leader recorded each tenant's
   post-interval state digest beside its snapshot; a recovered tenant
   whose interval matches the record must reproduce that digest byte
   for byte.  A mismatch is surfaced (and fails the soak invariant)
   rather than silently splitting a tenant's key space.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.chaos.seams import REAL_FILESYSTEM, SYSTEM_CLOCK
from repro.errors import TenancyError
from repro.ha.digest import server_digest
from repro.ha.lease import DEFAULT_TTL, Lease
from repro.obs.recorder import NULL
from repro.tenancy.daemon import MultiGroupDaemon, read_digest

#: the fleet's single fencing domain, beside the registry
LEASE_FILENAME = "lease.json"


def fleet_lease(state_root, node_id, ttl=DEFAULT_TTL, fs=None, clock=None,
                obs=None):
    """The one lease every tenant of ``state_root`` is fenced by."""
    return Lease(
        os.path.join(os.fspath(state_root), LEASE_FILENAME),
        node_id,
        ttl=ttl,
        fs=fs,
        clock=clock,
        obs=obs,
    )


@dataclass
class PromotionReport:
    """What one bulk failover re-homed, and how it checked out."""

    node: str
    epoch: int
    tenants: int = 0
    digests_verified: int = 0
    digest_mismatches: list = field(default_factory=list)
    #: tenants recovered at a different interval than their recorded
    #: digest (a mid-crash tenant replaying its WAL suffix) — their
    #: digest check is deferred to their next committed interval
    digests_skipped: int = 0
    requests_replayed: int = 0

    @property
    def ok(self):
        return not self.digest_mismatches

    def to_dict(self):
        return {
            "node": self.node,
            "epoch": self.epoch,
            "tenants": self.tenants,
            "digests_verified": self.digests_verified,
            "digest_mismatches": list(self.digest_mismatches),
            "digests_skipped": self.digests_skipped,
            "requests_replayed": self.requests_replayed,
            "ok": self.ok,
        }


def promote_all(
    state_root,
    node_id,
    ttl=DEFAULT_TTL,
    churn=None,
    budget=None,
    solo_fraction=0.5,
    breaker_threshold=3,
    breaker_cooldown=4,
    backend_factory=None,
    service_factory=None,
    obs=None,
    fs=None,
    clock=None,
    retry=None,
):
    """Fail the whole fleet over to ``node_id``.

    Returns ``(daemon, report)`` — the promoted
    :class:`~repro.tenancy.daemon.MultiGroupDaemon` and the
    :class:`PromotionReport`.  Raises
    :class:`~repro.errors.HaError` while the old leader's lease is
    still live (promotion waits out the TTL, bounding split-brain), or
    :class:`~repro.errors.TenancyError` when the root has no registry.
    """
    obs = obs if obs is not None else NULL
    fs = fs if fs is not None else REAL_FILESYSTEM
    clock = clock if clock is not None else SYSTEM_CLOCK
    lease = fleet_lease(
        state_root, node_id, ttl=ttl, fs=fs, clock=clock, obs=obs
    )
    epoch = lease.acquire()
    daemon = MultiGroupDaemon.recover_all(
        state_root,
        churn=churn,
        budget=budget,
        solo_fraction=solo_fraction,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        backend_factory=backend_factory,
        service_factory=service_factory,
        obs=obs,
        fs=fs,
        clock=clock,
        retry=retry,
        epoch=epoch,
        fence=lease,
        lease=lease,
    )
    report = PromotionReport(node=str(node_id), epoch=epoch)
    for name, tenant in daemon.daemons.items():
        report.tenants += 1
        report.requests_replayed += tenant.metrics.counters[
            "requests_replayed"
        ]
        recorded = read_digest(state_root, name, fs=fs)
        interval = tenant.server.intervals_processed
        matched = None
        if (
            recorded is not None
            and int(recorded.get("interval", -1)) == interval
        ):
            matched = server_digest(tenant.server) == recorded.get("digest")
            if matched:
                report.digests_verified += 1
            else:
                report.digest_mismatches.append(name)
        else:
            report.digests_skipped += 1
        if obs.enabled:
            obs.emit(
                "tenant_rehomed",
                tenant=name,
                interval=interval,
                epoch=epoch,
                digest_ok=matched,
                replay=tenant._replay_interval,
            )
    if obs.enabled:
        obs.emit(
            "tenancy_promote",
            node=str(node_id),
            epoch=epoch,
            tenants=report.tenants,
            digests_verified=report.digests_verified,
            mismatches=len(report.digest_mismatches),
        )
        obs.gauge("tenancy_epoch", epoch)
    if report.digest_mismatches:
        # Surfaced, not fatal: the caller (soak, operator) decides —
        # unlike single-group promote there are 999 healthy tenants to
        # keep serving while one is investigated.
        for name in report.digest_mismatches:
            obs.count("tenancy_digest_mismatches", tenant=name)
    return daemon, report


def committed_intervals(state_root, name, fs=None):
    """The set of interval numbers with durable commit markers in one
    tenant's WAL — the zero-interval-lost witness."""
    from repro.service.wal import scan_records

    fs = fs if fs is not None else REAL_FILESYSTEM
    from repro.tenancy.daemon import tenant_state_dir

    wal_path = os.path.join(
        tenant_state_dir(state_root, name), "wal.jsonl"
    )
    records, _ = scan_records(wal_path, fs=fs)
    return {
        int(record["interval"])
        for record in records
        if record.get("op") == "commit"
    }
