"""The shared deadline-aware tick scheduler.

Time is counted in *ticks* — virtual interval boundaries, not wall
seconds — so every scheduling decision is a pure function of the fleet
state, which is what lets the tenancy soak pin a digest over scheduler
behaviour.  Each tenant has a cadence (``interval_ticks``) and is *due*
when the current tick reaches its deadline; each tick has a **budget**
in estimated cost units (:func:`estimate_cost` — a deterministic proxy
for an interval's encryption work, never a wall-clock measurement).

The fairness rule under overload: due tenants whose own cost fits
their *solo share* of the budget are scheduled first, in deadline
order; a **whale** — a tenant whose estimated cost alone exceeds
``budget * solo_fraction`` — sorts after every compliant tenant
regardless of deadline.  A whale therefore only ever defers itself
(and is flagged ``over_budget``, the strike that feeds its quarantine
breaker); compliant tenants' deadlines are untouched by a neighbor's
flash crowd.  Tenants that still do not fit the remaining budget are
deferred to the next tick and counted as a deadline miss.
"""

from __future__ import annotations

import math

from repro.errors import TenancyError


def estimate_cost(n_members, n_pending, degree=4):
    """Deterministic cost units for one tenant interval.

    Roughly the paper's encryption count shape: each pending request
    re-keys one root path (depth ``log_d N`` nodes with ``d`` children
    each), plus one unit of fixed interval overhead.  Only the shape
    matters — the scheduler compares estimates against each other and
    against the budget, never against measured time.
    """
    n_members = max(1, int(n_members))
    depth = max(1, int(math.ceil(math.log(max(n_members, 2), max(2, degree)))))
    return 1 + int(n_pending) * depth * max(2, int(degree))


class SchedulerPlan:
    """One tick's decision: who runs, who waits, who is a whale."""

    def __init__(self, tick, run, deferred, over_budget, cost_total):
        self.tick = tick
        self.run = list(run)
        self.deferred = list(deferred)
        self.over_budget = list(over_budget)
        self.cost_total = cost_total


class DeadlineScheduler:
    """Deadline scheduling over heterogeneous tenant cadences."""

    def __init__(self, budget=None, solo_fraction=0.5):
        if budget is not None:
            budget = int(budget)
            if budget < 1:
                raise TenancyError("tick budget must be >= 1 (or None)")
        if not (0.0 < float(solo_fraction) <= 1.0):
            raise TenancyError("solo_fraction must be in (0, 1]")
        self.budget = budget
        self.solo_fraction = float(solo_fraction)
        self._cadence = {}
        self._order = {}
        self._next_due = {}
        self.misses = {}
        self.runs = {}

    @property
    def solo_budget(self):
        """One tenant's cost share; ``None`` when the budget is off."""
        if self.budget is None:
            return None
        return max(1, int(self.budget * self.solo_fraction))

    def register(self, name, interval_ticks=1):
        if name in self._cadence:
            raise TenancyError("tenant %r already scheduled" % (name,))
        self._cadence[name] = int(interval_ticks)
        self._order[name] = len(self._order)
        self._next_due[name] = 0
        self.misses[name] = 0
        self.runs[name] = 0

    def due(self, tick, skip=()):
        """Names whose deadline has arrived, registration order."""
        return [
            name
            for name in self._cadence
            if self._next_due[name] <= tick and name not in skip
        ]

    def plan(self, tick, costs, skip=()):
        """Decide one tick; returns a :class:`SchedulerPlan`.

        ``costs`` maps each due tenant to its :func:`estimate_cost`
        units; ``skip`` is the quarantined set (not schedulable, not a
        miss — their deadline freezes until they return).
        """
        due = self.due(tick, skip=skip)
        solo = self.solo_budget
        whales = [
            name for name in due
            if solo is not None and costs[name] > solo
        ]
        whale_set = set(whales)
        compliant = [name for name in due if name not in whale_set]
        key = lambda name: (self._next_due[name], self._order[name])
        ordered = sorted(compliant, key=key) + sorted(whales, key=key)
        run, deferred = [], []
        spent = 0
        for name in ordered:
            cost = costs[name]
            if self.budget is None or spent + cost <= self.budget:
                run.append(name)
                spent += cost
            else:
                deferred.append(name)
        for name in run:
            self.runs[name] += 1
            self._next_due[name] = tick + self._cadence[name]
        for name in deferred:
            self.misses[name] += 1
        return SchedulerPlan(tick, run, deferred, whales, spent)

    def defer_quarantined(self, name, tick):
        """Freeze a quarantined tenant's deadline at re-entry time, so
        a long quarantine does not read as a burst of missed deadlines
        the moment the tenant returns."""
        self._next_due[name] = max(self._next_due[name], tick + 1)

    def miss_rate(self, name):
        """Deferred fraction of this tenant's scheduling decisions."""
        total = self.misses[name] + self.runs[name]
        return (self.misses[name] / total) if total else 0.0

    def snapshot(self):
        return {
            "budget": self.budget,
            "solo_budget": self.solo_budget,
            "misses": dict(self.misses),
            "runs": dict(self.runs),
        }
