"""The multi-group daemon: thousands of tenants, one run queue.

:class:`MultiGroupDaemon` runs one
:class:`~repro.service.daemon.RekeyDaemon` per registered tenant —
each with its own WAL and snapshot under ``<root>/tenants/<name>/``,
its own scheme knobs, and its own churn stream — on one shared
deadline scheduler (:mod:`repro.tenancy.scheduler`).  One tick is one
pass of the run queue:

1. quarantined tenants absorb their offered churn into the
   ``quarantined`` admission bucket and count down their cooldown;
2. each due tenant's churn is drawn, admitted against its quota
   (overflow is shed at the door), and submitted to its daemon;
3. the scheduler plans the tick against the cost budget — compliant
   tenants in deadline order, whales last, the overflow deferred;
4. scheduled tenants run one interval each (an over-budget tenant runs
   degraded: the existing deadline-degradation path, forced to the
   cheap carry policy), the tenant's post-interval state digest is
   recorded beside its snapshot, and strikes/failures feed its
   quarantine breaker.

A tenant's *failure* (WAL write refused, interval error) trips its
breaker and benches it; its neighbors' tick continues.  A
:class:`~repro.service.daemon.DaemonCrash` is different — that is the
injected SIGKILL stand-in, and it kills the whole process, exactly
like the single-group daemon.

All tenants share **one fencing domain**: the one lease under the
storage root.  Its epoch is stamped into every tenant's WAL and
snapshot, so bulk failover (:func:`repro.tenancy.failover.promote_all`)
fences a deposed leader out of *every* tenant's write path with a
single acquisition.
"""

from __future__ import annotations

import json
import os

from repro.chaos.seams import REAL_FILESYSTEM, SYSTEM_CLOCK
from repro.errors import ReproError, TenancyError, WalError
from repro.ha.digest import server_digest
from repro.obs.recorder import NULL
from repro.service.daemon import DaemonConfig, RekeyDaemon
from repro.tenancy.quotas import AdmissionController, TenantBreaker
from repro.tenancy.registry import TenantRegistry
from repro.tenancy.scheduler import DeadlineScheduler, estimate_cost
from repro.util.rng import RandomSource

#: per-tenant state lives under ``<root>/tenants/<name>/``
TENANTS_DIRNAME = "tenants"
#: the recorded post-interval state digest, beside the snapshot
DIGEST_FILENAME = "digest.json"


def tenant_state_dir(state_root, name):
    return os.path.join(os.fspath(state_root), TENANTS_DIRNAME, name)


def _write_digest(path, payload, fs):
    temp = path + ".tmp"
    handle = fs.open(temp, "w")
    try:
        fs.write(handle, json.dumps(payload, sort_keys=True))
        fs.fsync(handle)
    finally:
        handle.close()
    fs.replace(temp, path)


def read_digest(state_root, name, fs=None):
    """The tenant's recorded ``{"interval", "digest"}``, or ``None``."""
    fs = fs if fs is not None else REAL_FILESYSTEM
    path = os.path.join(tenant_state_dir(state_root, name), DIGEST_FILENAME)
    try:
        return json.loads(fs.read_bytes(path).decode("utf-8"))
    except (FileNotFoundError, ValueError):
        return None


class MultiGroupDaemon:
    """Every tenant's rekey daemon behind one deadline scheduler."""

    def __init__(
        self,
        registry,
        state_root,
        daemons,
        churn=None,
        budget=None,
        solo_fraction=0.5,
        breaker_threshold=3,
        breaker_cooldown=4,
        obs=None,
        fs=None,
        clock=None,
        lease=None,
    ):
        if not isinstance(registry, TenantRegistry) or not len(registry):
            raise TenancyError("MultiGroupDaemon needs a non-empty registry")
        self.registry = registry
        self.state_root = os.fspath(state_root)
        self.daemons = daemons
        self.churn = dict(churn or {})
        self.obs = obs if obs is not None else NULL
        self.fs = fs if fs is not None else REAL_FILESYSTEM
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: the single fencing domain (``None`` = standalone)
        self.lease = lease
        self.ticks = 0
        self.intervals_total = 0
        self.admission = AdmissionController()
        self.scheduler = DeadlineScheduler(
            budget=budget, solo_fraction=solo_fraction
        )
        self.breakers = {}
        self._rngs = {}
        for spec in registry:
            self.admission.register(spec.name, quota=spec.quota)
            self.scheduler.register(
                spec.name, interval_ticks=spec.interval_ticks
            )
            self.breakers[spec.name] = TenantBreaker(
                threshold=breaker_threshold, cooldown=breaker_cooldown
            )
            # One churn stream per tenant *interval*, spawned from the
            # tenant's seed: stream i is the i-th spawn, so a recovered
            # fleet re-synchronises by interval count alone, and one
            # tenant's draws never perturb another's (the isolation the
            # noisy-neighbor soak pins as byte equality).
            self._rngs[spec.name] = RandomSource(spec.config.seed)

    # -- construction --------------------------------------------------

    @classmethod
    def start_new(
        cls,
        registry,
        state_root,
        churn=None,
        budget=None,
        solo_fraction=0.5,
        breaker_threshold=3,
        breaker_cooldown=4,
        backend_factory=None,
        service_factory=None,
        obs=None,
        fs=None,
        clock=None,
        retry=None,
        fs_overrides=None,
        epoch=None,
        fence=None,
        lease=None,
    ):
        """Boot every tenant fresh and persist the registry at the root.

        ``backend_factory`` / ``service_factory`` map a spec to that
        tenant's delivery backend / :class:`DaemonConfig` (defaults:
        loss-free direct delivery, a durable config with invariant
        checks on); ``fs_overrides`` swaps one tenant's filesystem seam
        (how the chaos harness storms a single tenant's I/O).  With a
        ``lease``, its epoch fences every tenant's WAL.
        """
        obs = obs if obs is not None else NULL
        fs = fs if fs is not None else REAL_FILESYSTEM
        fs_overrides = dict(fs_overrides or {})
        if lease is not None and epoch is None:
            epoch = lease.acquire()
            fence = lease
        registry.save(state_root, fs=fs)
        daemons = {}
        for spec in registry:
            service = (
                service_factory(spec) if service_factory is not None
                else DaemonConfig()
            )
            service.state_dir = tenant_state_dir(state_root, spec.name)
            daemons[spec.name] = RekeyDaemon.start_new(
                spec.initial_members(),
                config=spec.config,
                backend=(
                    backend_factory(spec) if backend_factory is not None
                    else None
                ),
                service=service,
                seed=spec.config.seed,
                obs=obs,
                fs=fs_overrides.get(spec.name, fs),
                clock=clock,
                retry=retry,
                epoch=epoch,
                fence=fence,
            )
        return cls(
            registry,
            state_root,
            daemons,
            churn=churn,
            budget=budget,
            solo_fraction=solo_fraction,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            obs=obs,
            fs=fs,
            clock=clock,
            lease=lease,
        )

    @classmethod
    def recover_all(
        cls,
        state_root,
        churn=None,
        budget=None,
        solo_fraction=0.5,
        breaker_threshold=3,
        breaker_cooldown=4,
        backend_factory=None,
        service_factory=None,
        obs=None,
        fs=None,
        clock=None,
        retry=None,
        fs_overrides=None,
        epoch=None,
        fence=None,
        lease=None,
    ):
        """Recover every registered tenant from the shared root.

        The registry on disk is the tenant discovery mechanism: a
        standby needs nothing but the storage root.  Each tenant walks
        the ordinary single-group recovery ladder (snapshot + WAL
        replay, fleet resync); per-tenant ``rehomed`` bookkeeping is
        left to :func:`repro.tenancy.failover.promote_all`, which also
        verifies the recorded digests.
        """
        obs = obs if obs is not None else NULL
        fs = fs if fs is not None else REAL_FILESYSTEM
        fs_overrides = dict(fs_overrides or {})
        registry = TenantRegistry.load(state_root, fs=fs)
        bus = obs.bus if obs.enabled else None
        daemons = {}
        for spec in registry:
            service = (
                service_factory(spec) if service_factory is not None
                else DaemonConfig()
            )
            # Recovery-time events (wal_quarantine, recovery, replay)
            # must say whose state they describe.
            if bus is not None:
                bus.set_context(tenant=spec.name)
            try:
                daemons[spec.name] = RekeyDaemon.recover(
                    tenant_state_dir(state_root, spec.name),
                    config=spec.config,
                    backend=(
                        backend_factory(spec) if backend_factory is not None
                        else None
                    ),
                    service=service,
                    seed=spec.config.seed,
                    obs=obs,
                    fs=fs_overrides.get(spec.name, fs),
                    clock=clock,
                    retry=retry,
                    epoch=epoch,
                    fence=fence,
                )
            finally:
                if bus is not None:
                    bus.set_context(tenant=None)
        daemon = cls(
            registry,
            state_root,
            daemons,
            churn=churn,
            budget=budget,
            solo_fraction=solo_fraction,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            obs=obs,
            fs=fs,
            clock=clock,
            lease=lease,
        )
        # Churn RNG replay: a recovered fleet must not rewind a
        # tenant's workload stream.  Streams are spawned per interval,
        # so skipping the completed intervals' spawns re-synchronises
        # exactly — independent of the membership history.
        for name, tenant in daemons.items():
            if daemon.churn.get(name) is None:
                continue
            # a replay interval's batch was drawn before the crash (its
            # requests are in the WAL), so its stream is consumed too
            done = tenant.server.intervals_processed
            if tenant._replay_interval:
                done += 1
            for _ in range(done):
                daemon._rngs[name].generator()
        return daemon

    # -- the tick ------------------------------------------------------

    def tenant(self, name):
        try:
            return self.daemons[name]
        except KeyError:
            raise TenancyError("unknown tenant %r" % (name,)) from None

    def quarantined_names(self):
        return [
            name for name, breaker in self.breakers.items()
            if breaker.quarantined
        ]

    def _emit_tenant(self, kind, name, **detail):
        if self.obs.enabled:
            self.obs.emit(kind, tenant=name, **detail)

    def _offered_events(self, name, tenant):
        """Draw this tenant's offered churn for its next interval."""
        driver = self.churn.get(name)
        if driver is None:
            return None
        return driver.events(
            tenant.server.intervals_processed,
            set(tenant.server.users),
            self._rngs[name].generator(),
        )

    def _intake(self, name, tenant):
        """Admission + submission; returns (shed, failed)."""
        if tenant._replay_interval:
            # The recovery discipline: the replay interval consumes the
            # WAL's re-queued requests only.  Offering fresh churn now
            # would mix new requests into the re-run rekey, so the
            # outside world's next batch waits one tick.
            return 0, False
        events = self._offered_events(name, tenant)
        if events is None or not events.n_events:
            return 0, False
        admitted, shed = self.admission.admit(name, events)
        if shed:
            self._emit_tenant(
                "tenant_shed", name,
                offered=events.n_events, shed=shed,
            )
            self.obs.count("tenancy_shed_requests", by=shed, tenant=name)
        failed = False
        for op, user in [("join", u) for u in admitted.joins] + [
            ("leave", u) for u in admitted.leaves
        ]:
            try:
                if op == "join":
                    tenant.submit_join(user)
                else:
                    tenant.submit_leave(user)
            except WalError:
                # Accepted but not durable: the tenant's storage is
                # refusing writes.  This is the failure mode the
                # breaker exists for — bench the tenant, keep the
                # queue moving.
                failed = True
                self._emit_tenant(
                    "tenant_failure", name, op=op, stage="wal-append"
                )
                break
            except ReproError:
                # invalid request (duplicate join, unknown leaver) —
                # the tenant daemon's ordinary rejection path
                pass
        return shed, failed

    def _run_tenant(self, name, degraded):
        """One tenant interval; returns ``(ok, failed)``.

        ``degraded`` forces the carry policy — the existing
        deadline-degradation path — for this run (load shedding for a
        tenant over its cost share).  Failures are isolated: any error
        except the injected :class:`DaemonCrash` is recorded against
        this tenant alone.
        """
        tenant = self.daemons[name]
        bus = self.obs.bus if self.obs.enabled else None
        if bus is not None:
            bus.set_context(tenant=name)
        previous_policy = tenant.service.deadline_policy
        if degraded:
            tenant.service.deadline_policy = "carry"
            self._emit_tenant("tenant_degraded", name, policy="carry")
        try:
            record = tenant.run_interval()
        except (ReproError, OSError) as exc:
            from repro.service.daemon import DaemonCrash

            if isinstance(exc, DaemonCrash):
                raise  # the SIGKILL stand-in: the whole process dies
            self._emit_tenant(
                "tenant_failure", name, stage="interval",
            )
            self.obs.count("tenancy_tenant_failures", tenant=name)
            return False, True
        finally:
            tenant.service.deadline_policy = previous_policy
            if bus is not None:
                bus.set_context(tenant=None, interval=None, trace=None)
        self.intervals_total += 1
        self._record_digest(name, tenant)
        self._emit_tenant(
            "tenant_interval", name,
            interval=record.interval,
            members=record.n_members,
            joins=record.n_joins,
            leaves=record.n_leaves,
            decision=record.decision,
            degraded=bool(degraded),
        )
        if self.obs.enabled:
            self.obs.count("tenancy_intervals", tenant=name)
            self.obs.gauge("tenancy_members", record.n_members, tenant=name)
            self.obs.gauge(
                "tenancy_epoch",
                0 if tenant.epoch is None else tenant.epoch,
            )
        return True, False

    def _record_digest(self, name, tenant):
        """Record the tenant's post-interval state digest beside its
        snapshot, for promotion-time verification; best effort (a
        failed write only forfeits that check)."""
        if tenant.snapshot_path is None:
            return
        path = os.path.join(
            tenant_state_dir(self.state_root, name), DIGEST_FILENAME
        )
        payload = {
            "interval": tenant.server.intervals_processed,
            "digest": server_digest(tenant.server),
        }
        try:
            _write_digest(path, payload, tenant.fs)
        except OSError:
            self.obs.count("tenancy_digest_write_failures", tenant=name)

    def tick(self):
        """One scheduler tick over the whole fleet; returns its plan."""
        tick = self.ticks
        if self.lease is not None:
            self.lease.renew()
        shed_total = 0
        failed = set()
        # 1. quarantined tenants: absorb offered load, count cooldown
        quarantined = set(self.quarantined_names())
        for name in self.registry.names:
            if name not in quarantined:
                continue
            tenant = self.daemons[name]
            events = self._offered_events(name, tenant)
            if events is not None and events.n_events:
                self.admission.admit(name, events, quarantined=True)
                self.obs.count(
                    "tenancy_quarantined_requests",
                    by=events.n_events, tenant=name,
                )
            transition = self.breakers[name].tick_quarantine()
            if transition is not None:
                self._emit_tenant(transition, name, tick=tick)
                self.scheduler.defer_quarantined(name, tick)
        # 2. intake + cost estimation for schedulable due tenants
        due = self.scheduler.due(tick, skip=quarantined)
        costs = {}
        for name in due:
            tenant = self.daemons[name]
            shed, intake_failed = self._intake(name, tenant)
            shed_total += shed
            if intake_failed:
                failed.add(name)
            joins, leaves = tenant.server.pending_requests
            costs[name] = estimate_cost(
                tenant.server.n_users,
                len(joins) + len(leaves),
                degree=tenant.server.config.degree,
            )
        # A tenant whose intake already failed is struck immediately;
        # scheduling it this tick would only fail again.
        for name in failed:
            transition = self.breakers[name].trip()
            self._emit_tenant(transition, name, tick=tick, reason="failure")
            self.scheduler.defer_quarantined(name, tick)
        plan = self.scheduler.plan(
            tick, costs, skip=quarantined | failed
        )
        over_budget = set(plan.over_budget)
        for name in plan.over_budget:
            self._emit_tenant(
                "tenant_overload", name, tick=tick, cost=costs[name]
            )
        for name in plan.deferred:
            self._emit_tenant("tenant_deferred", name, tick=tick)
            self.obs.count("tenancy_deadline_misses", tenant=name)
        # 3. run the scheduled intervals
        for name in plan.run:
            ok, run_failed = self._run_tenant(name, name in over_budget)
            if run_failed:
                transition = self.breakers[name].trip()
                self._emit_tenant(
                    transition, name, tick=tick, reason="failure"
                )
                self.scheduler.defer_quarantined(name, tick)
            else:
                transition = self.breakers[name].record(
                    name in over_budget
                )
                if transition is not None:
                    self._emit_tenant(
                        transition, name, tick=tick, reason="overload"
                    )
                    if transition == "tenant_quarantine":
                        self.scheduler.defer_quarantined(name, tick)
        # a whale that did not even fit the leftover budget is still a
        # strike — it is the tenant shedding load, not its neighbors
        for name in plan.deferred:
            if name in over_budget:
                transition = self.breakers[name].record(True)
                if transition is not None:
                    self._emit_tenant(
                        transition, name, tick=tick, reason="overload"
                    )
                    self.scheduler.defer_quarantined(name, tick)
        if self.obs.enabled:
            self.obs.emit(
                "tenancy_tick",
                tick=tick,
                ran=len(plan.run),
                deferred=len(plan.deferred),
                quarantined=len(quarantined),
                shed=shed_total,
                cost=plan.cost_total,
            )
        self.ticks += 1
        return plan

    def run_ticks(self, n):
        """Run ``n`` ticks back to back; returns the plans."""
        return [self.tick() for _ in range(int(n))]

    # -- introspection -------------------------------------------------

    def health(self):
        quarantined = self.quarantined_names()
        report = {
            "status": "degraded" if quarantined else "ok",
            "tenants": len(self.registry),
            "ticks": self.ticks,
            "intervals_total": self.intervals_total,
            "quarantined": quarantined,
            "scheduler": self.scheduler.snapshot(),
            "admission": self.admission.to_dict(),
            "ha": {
                "role": "standalone" if self.lease is None else "leader",
                "epoch": (
                    0 if self.lease is None or self.lease.epoch is None
                    else self.lease.epoch
                ),
            },
        }
        report["tenant_health"] = {
            name: {
                "members": tenant.server.n_users,
                "intervals": tenant.server.intervals_processed,
                "breaker": self.breakers[name].snapshot(),
                "misses": self.scheduler.misses[name],
            }
            for name, tenant in self.daemons.items()
        }
        return report

    def check_agreement(self):
        """Per-tenant key agreement; returns the disagreeing tenants.

        Quarantined tenants are skipped — a benched tenant may hold
        carried-over members mid-degradation by design; it is checked
        again once its trial restores it.
        """
        broken = []
        quarantined = set(self.quarantined_names())
        for name, tenant in self.daemons.items():
            if name in quarantined:
                continue
            try:
                tenant.fleet.check_agreement(
                    tenant.server, exclude=tenant.pending_carry_names()
                )
            except ReproError:
                broken.append(name)
        return broken

    def close(self):
        for tenant in self.daemons.values():
            tenant.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "MultiGroupDaemon(tenants=%d, ticks=%d, intervals=%d)" % (
            len(self.registry), self.ticks, self.intervals_total
        )
