"""The tenant registry: who the groups are, persisted with the state.

A :class:`TenantSpec` is everything the multi-group daemon needs to run
one group as a tenant: its name (which doubles as its state-directory
namespace), initial size, a complete per-tenant
:class:`~repro.core.config.GroupConfig` (degree, block size, rho
bounds, engine, coder — the scheme/parameter choice the key-management
surveys frame as the per-group knob), its scheduler cadence in ticks,
and its admission quota.

The :class:`TenantRegistry` is the ordered collection of specs, and it
is *durable*: :meth:`TenantRegistry.save` writes ``registry.json``
beside the per-tenant state directories, so bulk failover
(:func:`repro.tenancy.failover.promote_all`) can rediscover the whole
fleet — names, cadences, quotas and every scheme knob — from the shared
storage root alone.  Loading re-validates every spec through the
``GroupConfig`` constructor: a damaged registry fails loudly at load
time, not deep inside a tenant's first interval.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

from repro.core.config import GroupConfig
from repro.errors import TenancyError

#: tenant names become directory names under ``<root>/tenants/`` and
#: Prometheus label values — keep them boring
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: where the registry lives under a tenancy storage root
REGISTRY_FILENAME = "registry.json"


@dataclass
class TenantSpec:
    """One tenant's group: size, scheme knobs, cadence and quota."""

    name: str
    n_members: int = 8
    config: GroupConfig = field(default_factory=GroupConfig)
    #: run this tenant's interval every ``interval_ticks`` scheduler
    #: ticks (1 = every tick; heterogeneous cadences share the queue)
    interval_ticks: int = 1
    #: join/leave requests admitted per interval (``None`` = unlimited)
    quota: int = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise TenancyError(
                "tenant name %r is not a valid namespace (want %s)"
                % (self.name, _NAME_RE.pattern)
            )
        self.n_members = int(self.n_members)
        if self.n_members < 1:
            raise TenancyError(
                "tenant %r needs n_members >= 1, got %d"
                % (self.name, self.n_members)
            )
        if not isinstance(self.config, GroupConfig):
            raise TenancyError(
                "tenant %r config must be a GroupConfig, got %s"
                % (self.name, type(self.config).__name__)
            )
        self.interval_ticks = int(self.interval_ticks)
        if self.interval_ticks < 1:
            raise TenancyError(
                "tenant %r needs interval_ticks >= 1, got %d"
                % (self.name, self.interval_ticks)
            )
        if self.quota is not None:
            self.quota = int(self.quota)
            if self.quota < 1:
                raise TenancyError(
                    "tenant %r quota must be >= 1 (or None), got %d"
                    % (self.name, self.quota)
                )

    def initial_members(self):
        """The tenant's boot membership (deterministic in the spec)."""
        return [
            "%s-m%04d" % (self.name, index)
            for index in range(self.n_members)
        ]

    def to_dict(self):
        return {
            "name": self.name,
            "n_members": self.n_members,
            "config": self.config.to_dict(),
            "interval_ticks": self.interval_ticks,
            "quota": self.quota,
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise TenancyError(
                "tenant spec must be a dict, got %s" % type(data).__name__
            )
        kwargs = dict(data)
        config = kwargs.pop("config", None)
        if config is not None:
            kwargs["config"] = GroupConfig.from_dict(config)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise TenancyError("bad tenant spec field: %s" % (exc,)) from exc


class TenantRegistry:
    """The ordered, durable collection of tenant specs."""

    def __init__(self, specs=()):
        self._specs = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec):
        if not isinstance(spec, TenantSpec):
            raise TenancyError(
                "registry takes TenantSpec, got %s" % type(spec).__name__
            )
        if spec.name in self._specs:
            raise TenancyError("duplicate tenant name %r" % (spec.name,))
        self._specs[spec.name] = spec
        return spec

    def get(self, name):
        try:
            return self._specs[name]
        except KeyError:
            raise TenancyError("unknown tenant %r" % (name,)) from None

    @property
    def names(self):
        """Tenant names in registration order (the scheduler tiebreak)."""
        return list(self._specs)

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self):
        return len(self._specs)

    def __contains__(self, name):
        return name in self._specs

    # -- persistence ---------------------------------------------------

    def to_dict(self):
        return {
            "schema": 1,
            "tenants": [spec.to_dict() for spec in self],
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict) or "tenants" not in data:
            raise TenancyError("registry document needs a 'tenants' list")
        return cls(TenantSpec.from_dict(entry) for entry in data["tenants"])

    def save(self, state_root, fs=None):
        """Durably write ``registry.json`` under ``state_root``."""
        from repro.chaos.seams import REAL_FILESYSTEM

        fs = fs if fs is not None else REAL_FILESYSTEM
        root = os.fspath(state_root)
        os.makedirs(root, exist_ok=True)
        path = os.path.join(root, REGISTRY_FILENAME)
        temp = path + ".tmp"
        handle = fs.open(temp, "w")
        try:
            fs.write(handle, json.dumps(self.to_dict(), sort_keys=True))
            fs.fsync(handle)
        finally:
            handle.close()
        fs.replace(temp, path)
        fs.fsync_dir(root)
        return path

    @classmethod
    def load(cls, state_root, fs=None):
        """Read ``registry.json`` back; every spec is re-validated."""
        from repro.chaos.seams import REAL_FILESYSTEM

        fs = fs if fs is not None else REAL_FILESYSTEM
        path = os.path.join(os.fspath(state_root), REGISTRY_FILENAME)
        try:
            raw = fs.read_bytes(path)
        except FileNotFoundError:
            raise TenancyError(
                "no tenant registry at %s; nothing to recover" % path
            ) from None
        try:
            data = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise TenancyError(
                "tenant registry %s is not valid JSON: %s" % (path, exc)
            ) from exc
        return cls.from_dict(data)


def make_fleet(count, seed=7, prefix="tenant", n_members=None,
               interval_ticks=None, quota=None):
    """A deterministic heterogeneous fleet of ``count`` tenant specs.

    Sizes, tree degrees, cadences, block sizes and engines vary per
    tenant (cycled deterministically from the index and ``seed``), so a
    fleet exercises the scheduler's heterogeneity for free.  Explicit
    ``n_members`` / ``interval_ticks`` / ``quota`` pin that knob for
    every tenant instead (the mass-rehome plan pins tiny groups).
    """
    count = int(count)
    if count < 1:
        raise TenancyError("a fleet needs count >= 1, got %d" % count)
    sizes = (4, 6, 8, 12, 16, 24)
    degrees = (4, 2, 3, 4)
    cadences = (1, 1, 2, 1, 4)
    blocks = (10, 5, 10, 8)
    engines = ("python", "numpy")
    specs = []
    for index in range(count):
        specs.append(
            TenantSpec(
                name="%s-%04d" % (prefix, index),
                n_members=(
                    sizes[index % len(sizes)]
                    if n_members is None else n_members
                ),
                config=GroupConfig(
                    degree=degrees[index % len(degrees)],
                    block_size=blocks[index % len(blocks)],
                    engine=engines[index % len(engines)],
                    seed=int(seed) * 1000003 + index,
                ),
                interval_ticks=(
                    cadences[index % len(cadences)]
                    if interval_ticks is None else interval_ticks
                ),
                quota=quota,
            )
        )
    return TenantRegistry(specs)
