"""Multi-tenant key service: many groups, one daemon, one fencing domain.

The paper analyzes one group's rekey pipeline; a production key server
(ROADMAP item 4) runs thousands of heterogeneous groups at once.  This
package is that layer:

- :mod:`repro.tenancy.registry` — :class:`TenantSpec` /
  :class:`TenantRegistry`: each tenant's group size, scheme knobs (a
  full per-tenant :class:`~repro.core.config.GroupConfig`), cadence and
  quota, persisted as ``registry.json`` under the storage root so a
  standby can rediscover the whole fleet;
- :mod:`repro.tenancy.quotas` — admission control (bounded join/leave
  intake per tenant, with the ``offered = accepted + shed +
  quarantined`` accounting identity) and the per-tenant quarantine
  breaker;
- :mod:`repro.tenancy.scheduler` — the shared deadline-aware tick
  scheduler: heterogeneous cadences, an estimated-cost budget per tick,
  and whale demotion so one overloaded tenant defers itself, never its
  neighbors;
- :mod:`repro.tenancy.daemon` — :class:`MultiGroupDaemon`: one
  :class:`~repro.service.daemon.RekeyDaemon` per tenant, namespaced
  WAL/snapshot state under one root, per-tenant observability labels;
- :mod:`repro.tenancy.failover` — :func:`promote_all`: a standby
  re-homes every tenant under one freshly minted lease epoch, verifying
  per-tenant state digests and interval continuity;
- :mod:`repro.tenancy.soak` — the ``tenancy-soak`` chaos harness and
  its three digest-pinned plans (noisy-neighbor, tenant-WAL-corruption,
  mass re-home).

See ``docs/tenancy.md`` for the operational story.
"""

from repro.tenancy.daemon import MultiGroupDaemon
from repro.tenancy.failover import PromotionReport, promote_all
from repro.tenancy.quotas import AdmissionController, TenantBreaker, TenantQuota
from repro.tenancy.registry import TenantRegistry, TenantSpec, make_fleet
from repro.tenancy.scheduler import DeadlineScheduler, estimate_cost
from repro.tenancy.soak import (
    TENANCY_PLAN_NAMES,
    TenancySoakResult,
    run_tenancy_soak,
)

__all__ = [
    "AdmissionController",
    "DeadlineScheduler",
    "MultiGroupDaemon",
    "PromotionReport",
    "TENANCY_PLAN_NAMES",
    "TenancySoakResult",
    "TenantBreaker",
    "TenantQuota",
    "TenantRegistry",
    "TenantSpec",
    "estimate_cost",
    "make_fleet",
    "promote_all",
    "run_tenancy_soak",
]
