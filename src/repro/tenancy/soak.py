"""The tenancy-soak harness: the multi-tenant daemon under abuse.

Three plans, each pinning one multi-tenant promise:

- ``noisy-neighbor`` — one tenant's flash-crowd churn storms the shared
  run queue.  The aggressor must be shed at admission and quarantined
  by its breaker, while every *victim* tenant finishes byte-identical
  to a baseline run without the aggressor (same interval counts, same
  group keys, deadline-miss rate within the band).  Cross-tenant fault
  isolation as an equality, not a vibe.
- ``tenant-wal-corruption`` — one tenant's WAL is damaged at rest and
  another's WAL writes fail persistently.  The damaged tenant must
  quarantine *its own WAL* (exactly one quarantine fleet-wide) and
  catch back up through recovery; the write-storm tenant must be
  benched by its breaker; everyone else completes every interval.
- ``mass-rehome`` — a leader carrying ~1k tenants is killed mid-tick
  (the injected SIGKILL stand-in) and a standby promotes: one lease
  acquisition fences every tenant, every tenant is re-homed, recorded
  state digests verify, WAL epochs stay monotonic, and no tenant loses
  a committed interval.

Every run is a pure function of ``(plan, seed)`` — virtual ticks, a
:class:`~repro.chaos.seams.FaultyClock`, per-tenant seeded churn — so
the tenancy-relevant event subsequence canonicalises to a pinned
**digest** exactly like the chaos soak's
(:func:`repro.chaos.soak.canonical_timeline`).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

from repro.chaos.seams import FaultyClock
from repro.chaos.soak import canonical_timeline, timeline_digest
from repro.errors import ChaosError, ReproError
from repro.obs.events import TENANCY_EVENT_KINDS, EventBus
from repro.obs.recorder import NULL, Recorder
from repro.tenancy.daemon import MultiGroupDaemon, tenant_state_dir
from repro.tenancy.registry import TenantRegistry, TenantSpec, make_fleet

#: the tenancy plans, in documentation order
TENANCY_PLAN_NAMES = (
    "noisy-neighbor",
    "tenant-wal-corruption",
    "mass-rehome",
)

TENANCY_PLAN_DESCRIPTIONS = {
    "noisy-neighbor": (
        "one tenant's flash crowd is shed and quarantined while every "
        "victim tenant finishes byte-identical to an aggressor-free run"
    ),
    "tenant-wal-corruption": (
        "a WAL byte-flip quarantines only its own tenant's log and an "
        "I/O-storm tenant is benched; neighbors complete every interval"
    ),
    "mass-rehome": (
        "a standby re-homes every tenant of a killed leader under one "
        "new epoch: digests verify, no committed interval is lost"
    ),
}

#: default fleet size per plan
PLAN_TENANTS = {
    "noisy-neighbor": 32,
    "tenant-wal-corruption": 24,
    "mass-rehome": 1000,
}

#: default scheduler ticks per plan
PLAN_TICKS = {
    "noisy-neighbor": 12,
    "tenant-wal-corruption": 10,
    "mass-rehome": 4,
}

#: smallest fleet each plan's cast of characters fits in (aggressor +
#: victim, two fault victims + a neighbor, a crasher + the re-homed)
PLAN_MIN_TENANTS = {
    "noisy-neighbor": 2,
    "tenant-wal-corruption": 3,
    "mass-rehome": 2,
}

#: event kinds that define a tenancy run's reproducible timeline: the
#: tenancy lifecycle itself plus the fault/recovery/fencing kinds the
#: plans exercise (all deterministic in (plan, seed))
TENANCY_TIMELINE_KINDS = frozenset(
    TENANCY_EVENT_KINDS
    | {
        "crash",
        "recovery",
        "wal_quarantine",
        "fault_injected",
        "soak_restart",
        "degradation",
        "ha_lease_acquired",
    }
)

#: noisy-neighbor knobs: the budget is generous enough that the 31
#: compliant victims always fit (their isolation is pinned as byte
#: equality), while solo_fraction makes the aggressor a whale from its
#: first admitted burst onward
NOISY_BUDGET = 4000
NOISY_SOLO_FRACTION = 0.2
AGGRESSOR_QUOTA = 64
AGGRESSOR_BURST = 256
#: deadline-miss band for victims vs the aggressor-free baseline
VICTIM_MISS_BAND = 0.02

#: tenant-wal-corruption: the write storm starts at this wal-write
#: occurrence (header + the first tick's appends succeed, then never
#: again)
STORM_AT = 5

#: mass-rehome lease TTL: huge vs the run's real duration, tiny vs the
#: FaultyClock's virtual sleep
LEASE_TTL = 3600.0


@dataclass
class TenancySoakResult:
    """Everything one tenancy-soak run observed and concluded."""

    plan: str
    seed: int
    tenants: int
    ticks_target: int
    ticks_completed: int = 0
    intervals_total: int = 0
    shed_total: int = 0
    quarantines: int = 0
    restarts: int = 0
    promotions: int = 0
    rehomed: int = 0
    digests_verified: int = 0
    requests_replayed: int = 0
    final_epoch: int = 0
    #: largest |victim miss-rate - baseline miss-rate| (noisy-neighbor)
    victim_miss_delta: float = 0.0
    #: the aggressor's admission ledger and breaker (noisy-neighbor)
    aggressor: dict = field(default_factory=dict)
    #: invariant name -> bool (empty when the run failed before the end)
    invariants: dict = field(default_factory=dict)
    #: canonical tenancy event sequence (see TENANCY_TIMELINE_KINDS)
    timeline: list = field(default_factory=list)
    digest: str = ""
    #: the terminal diagnostic, when the run could not finish
    failure: object = None

    @property
    def ok(self):
        return self.failure is None and bool(self.invariants) and all(
            self.invariants.values()
        )

    def to_dict(self):
        return {
            "plan": self.plan,
            "seed": self.seed,
            "tenants": self.tenants,
            "ticks_target": self.ticks_target,
            "ticks_completed": self.ticks_completed,
            "intervals_total": self.intervals_total,
            "shed_total": self.shed_total,
            "quarantines": self.quarantines,
            "restarts": self.restarts,
            "promotions": self.promotions,
            "rehomed": self.rehomed,
            "digests_verified": self.digests_verified,
            "requests_replayed": self.requests_replayed,
            "final_epoch": self.final_epoch,
            "victim_miss_delta": self.victim_miss_delta,
            "aggressor": dict(self.aggressor),
            "invariants": dict(self.invariants),
            "digest": self.digest,
            "failure": None if self.failure is None else str(self.failure),
            "ok": self.ok,
        }


def _fingerprints(daemon, names):
    return {
        name: (
            daemon.daemons[name].server.intervals_processed,
            daemon.daemons[name].server.group_key.fingerprint(),
        )
        for name in names
    }


# -- plan: noisy-neighbor ----------------------------------------------


def _noisy_registry(n_tenants, seed):
    """The heterogeneous fleet with tenant 0 re-specced as the
    quota-bounded, every-tick aggressor."""
    base = list(make_fleet(n_tenants, seed=seed))
    first = base[0]
    base[0] = TenantSpec(
        name=first.name,
        n_members=first.n_members,
        config=first.config,
        interval_ticks=1,
        quota=AGGRESSOR_QUOTA,
    )
    return TenantRegistry(base)


def _run_noisy_neighbor(result, root, n_tenants, n_ticks, seed, obs, say):
    from repro.service.churn import FlashCrowdChurn, NoChurn, PoissonChurn
    from repro.service.transports import SessionDelivery

    if n_tenants < 2:
        raise ChaosError("noisy-neighbor needs at least 2 tenants")

    def drivers(registry, aggressive):
        aggressor = registry.names[0]
        out = {}
        for spec in registry:
            if spec.name == aggressor:
                # The baseline swaps only this driver: every other
                # source of behaviour is identical across the runs.
                out[spec.name] = (
                    FlashCrowdChurn(
                        alpha=0.05, burst_every=1, burst_size=AGGRESSOR_BURST
                    )
                    if aggressive
                    else NoChurn()
                )
            else:
                out[spec.name] = PoissonChurn(alpha=0.05)
        return out

    def backend_factory(spec):
        # Lossy simulated transport, per-tenant seeded: the degradation
        # machinery is live, and victim deliveries are independent of
        # the aggressor's.
        return SessionDelivery(spec.config, seed=spec.config.seed + 1)

    def run(sub_root, aggressive, recorder):
        registry = _noisy_registry(n_tenants, seed)
        daemon = MultiGroupDaemon.start_new(
            registry,
            os.path.join(root, sub_root),
            churn=drivers(registry, aggressive),
            budget=NOISY_BUDGET,
            solo_fraction=NOISY_SOLO_FRACTION,
            backend_factory=backend_factory,
            obs=recorder,
            clock=FaultyClock(),
        )
        try:
            daemon.run_ticks(n_ticks)
        finally:
            daemon.close()
        return daemon

    say(
        "tenancy-soak: noisy-neighbor, seed %d, %d tenants, %d ticks"
        % (seed, n_tenants, n_ticks)
    )
    say("  baseline run (aggressor quiet) ...")
    baseline = run("baseline", aggressive=False, recorder=NULL)
    say("  aggressor run (flash crowd of %d/tick) ..." % AGGRESSOR_BURST)
    active = run("active", aggressive=True, recorder=obs)

    aggressor = active.registry.names[0]
    victims = active.registry.names[1:]
    ledger = active.admission.ledger(aggressor)
    breaker = active.breakers[aggressor]
    result.ticks_completed = active.ticks
    result.intervals_total = active.intervals_total
    result.shed_total = sum(
        entry["shed"] for entry in active.admission.to_dict().values()
    )
    result.quarantines = sum(
        b.quarantines for b in active.breakers.values()
    )
    result.aggressor = {
        "name": aggressor,
        "ledger": ledger.to_dict(),
        "quarantines": breaker.quarantines,
    }
    deltas = [
        abs(
            active.scheduler.miss_rate(name)
            - baseline.scheduler.miss_rate(name)
        )
        for name in victims
    ]
    result.victim_miss_delta = max(deltas) if deltas else 0.0

    invariants = result.invariants
    invariants["completed"] = (
        active.ticks == n_ticks and baseline.ticks == n_ticks
    )
    invariants["aggressor-shed"] = ledger.shed > 0
    invariants["aggressor-quarantined"] = breaker.quarantines >= 1
    invariants["victims-unperturbed"] = _fingerprints(
        active, victims
    ) == _fingerprints(baseline, victims)
    invariants["victim-miss-band"] = (
        result.victim_miss_delta <= VICTIM_MISS_BAND
    )
    invariants["victims-never-quarantined"] = not any(
        active.breakers[name].quarantines for name in victims
    )
    invariants["admission-conserved"] = (
        not active.admission.verify() and not baseline.admission.verify()
    )
    invariants["key-agreement"] = not active.check_agreement()


# -- plan: tenant-wal-corruption ---------------------------------------


def _run_wal_corruption(result, root, n_tenants, n_ticks, seed, obs, say):
    from repro.chaos.faults import FaultPlan, IoFault
    from repro.chaos.seams import FaultyFilesystem
    from repro.service.churn import PoissonChurn

    if n_tenants < 4:
        raise ChaosError("tenant-wal-corruption needs at least 4 tenants")
    if n_ticks < 4:
        raise ChaosError("tenant-wal-corruption needs at least 4 ticks")
    half = n_ticks // 2
    registry = make_fleet(n_tenants, seed=seed, interval_ticks=1)
    names = registry.names
    corrupt_name = names[len(names) // 3]
    storm_name = names[(2 * len(names)) // 3]
    say(
        "tenancy-soak: tenant-wal-corruption, seed %d, %d tenants, "
        "%d ticks (flip %s at tick %d; wal-write storm on %s)"
        % (seed, n_tenants, n_ticks, corrupt_name, half, storm_name)
    )
    # The storm plan is bound to one tenant's filesystem seam only: its
    # occurrence counter counts that tenant's WAL writes alone.
    fault = FaultPlan(
        name="tenant-wal-corruption",
        seed=seed,
        io_faults=(IoFault("wal-write", at=STORM_AT, times=1 << 20),),
    ).bind(obs)
    fs_overrides = {storm_name: FaultyFilesystem(fault)}
    clock = FaultyClock()

    def drivers():
        return {name: PoissonChurn(alpha=0.1) for name in names}

    daemon = MultiGroupDaemon.start_new(
        registry,
        root,
        churn=drivers(),
        fs_overrides=fs_overrides,
        obs=obs,
        clock=clock,
    )
    try:
        daemon.run_ticks(half)
        seg1_ticks = daemon.ticks
        seg1_intervals = daemon.intervals_total
        seg1_quarantines = sum(
            b.quarantines for b in daemon.breakers.values()
        )
        seg1_conserved = not daemon.admission.verify()
    finally:
        daemon.close()

    # Damage one tenant's log at rest, then restart the whole fleet
    # through recovery — the blast radius must be that tenant's WAL.
    # A flip that lands on the final line reads as a torn append (which
    # recovery forgives without quarantining), so keep flipping until
    # the scan actually reports damage; the flip offsets come from the
    # plan RNG over seed-determined file contents, so the loop is as
    # deterministic as a single flip.
    from repro.service.wal import scan_records

    fault.set_interval(half)
    wal_path = os.path.join(
        tenant_state_dir(root, corrupt_name), "wal.jsonl"
    )
    for _ in range(8):
        fault.flip_byte(wal_path)
        if scan_records(wal_path)[1] is not None:
            break
    else:  # pragma: no cover - 8 misses of the non-final lines
        raise ChaosError(
            "wal byte-flips never produced detectable damage"
        )
    if obs.enabled:
        obs.emit("soak_restart", interval=half, faults=["tenant-wal-flip"])
    say("  tick %d: flipped a byte of %s's WAL; recovering the fleet"
        % (half, corrupt_name))
    daemon = MultiGroupDaemon.recover_all(
        root,
        churn=drivers(),
        fs_overrides=fs_overrides,
        obs=obs,
        clock=clock,
    )
    result.restarts = 1
    try:
        daemon.run_ticks(n_ticks - half)
        result.ticks_completed = seg1_ticks + daemon.ticks
        result.intervals_total = seg1_intervals + daemon.intervals_total
        result.quarantines = seg1_quarantines + sum(
            b.quarantines for b in daemon.breakers.values()
        )
        quarantine_events = [
            event
            for event in obs.bus.events
            if event["kind"] == "wal_quarantine"
        ]
        invariants = result.invariants
        invariants["completed"] = result.ticks_completed == n_ticks
        invariants["wal-quarantine-isolated"] = len(
            quarantine_events
        ) == 1 and quarantine_events[0]["detail"].get(
            "tenant"
        ) == corrupt_name
        invariants["corrupt-tenant-caught-up"] = (
            daemon.daemons[corrupt_name].server.intervals_processed
            == n_ticks
        )
        invariants["storm-tenant-benched"] = (
            daemon.breakers[storm_name].quarantines >= 1
        )
        invariants["neighbors-complete"] = all(
            daemon.daemons[name].server.intervals_processed == n_ticks
            for name in names
            if name != storm_name
        )
        invariants["admission-conserved"] = (
            seg1_conserved and not daemon.admission.verify()
        )
        invariants["key-agreement"] = not daemon.check_agreement()
    finally:
        daemon.close()


# -- plan: mass-rehome -------------------------------------------------


def _run_mass_rehome(result, root, n_tenants, n_ticks, seed, obs, say):
    from repro.service.churn import PoissonChurn
    from repro.service.daemon import CrashPlan, DaemonConfig, DaemonCrash
    from repro.service.wal import epochs_monotonic, scan_records
    from repro.tenancy.failover import fleet_lease, promote_all

    if n_ticks < 3:
        raise ChaosError("mass-rehome needs at least 3 ticks")
    registry = make_fleet(
        n_tenants, seed=seed, n_members=3, interval_ticks=1
    )
    crash_name = registry.names[int(n_tenants * 0.6) % n_tenants]
    crash_tick = n_ticks // 2
    say(
        "tenancy-soak: mass-rehome, seed %d, %d tenants, %d ticks "
        "(leader dies mid-tick %d at %s)"
        % (seed, n_tenants, n_ticks, crash_tick, crash_name)
    )

    def drivers():
        return {
            name: PoissonChurn(alpha=0.15) for name in registry.names
        }

    def service_factory(spec):
        if spec.name == crash_name:
            return DaemonConfig(
                crash_plan=CrashPlan(
                    interval=crash_tick, point="post-delivery"
                )
            )
        return DaemonConfig()

    clock = FaultyClock()
    leader = MultiGroupDaemon.start_new(
        registry,
        root,
        churn=drivers(),
        service_factory=service_factory,
        obs=obs,
        clock=clock,
        lease=fleet_lease(
            root, "leader-0", ttl=LEASE_TTL, clock=clock, obs=obs
        ),
    )
    crashed = False
    try:
        for _ in range(n_ticks):
            try:
                leader.tick()
            except DaemonCrash:
                crashed = True
                break
    finally:
        # The stand-in for SIGKILL: nothing below writes state — the
        # close only returns the dead process's file handles.
        leader.close()
    say(
        "  leader died after %d full ticks (%d tenant intervals); "
        "waiting out the lease"
        % (leader.ticks, leader.intervals_total)
    )
    clock.sleep(LEASE_TTL + 1.0)

    promoted, report = promote_all(
        root,
        "standby-1",
        ttl=LEASE_TTL,
        churn=drivers(),
        obs=obs,
        clock=clock,
    )
    result.promotions = 1
    result.rehomed = report.tenants
    result.digests_verified = report.digests_verified
    result.requests_replayed = report.requests_replayed
    result.final_epoch = report.epoch
    say(
        "  promoted: %d tenants re-homed under epoch %d "
        "(%d digests verified, %d requests replayed)"
        % (
            report.tenants,
            report.epoch,
            report.digests_verified,
            report.requests_replayed,
        )
    )
    try:
        promoted.run_ticks(n_ticks - leader.ticks)
        result.ticks_completed = leader.ticks + promoted.ticks
        result.intervals_total = (
            leader.intervals_total + promoted.intervals_total
        )
        result.quarantines = sum(
            b.quarantines for b in promoted.breakers.values()
        )
        lost, nonmonotonic = [], []
        for name, tenant in promoted.daemons.items():
            records, wal_error = scan_records(
                os.path.join(tenant_state_dir(root, name), "wal.jsonl")
            )
            if wal_error is not None or not epochs_monotonic(records):
                nonmonotonic.append(name)
            commits = {
                int(record["interval"])
                for record in records
                if record.get("op") == "commit"
            }
            if commits != set(
                range(tenant.server.intervals_processed)
            ):
                lost.append(name)
        invariants = result.invariants
        invariants["leader-crashed"] = crashed
        invariants["completed"] = result.ticks_completed == n_ticks
        invariants["rehomed-all"] = report.tenants == n_tenants
        invariants["digests-verified"] = (
            report.ok and report.digests_verified == n_tenants
        )
        invariants["no-interval-lost"] = not lost
        invariants["wal-epochs-monotonic"] = not nonmonotonic
        invariants["final-epoch"] = report.epoch == 2
        invariants["key-agreement"] = not promoted.check_agreement()
        invariants["admission-conserved"] = (
            not promoted.admission.verify()
        )
    finally:
        promoted.close()


_PLAN_RUNNERS = {
    "noisy-neighbor": _run_noisy_neighbor,
    "tenant-wal-corruption": _run_wal_corruption,
    "mass-rehome": _run_mass_rehome,
}


def run_tenancy_soak(
    plan="noisy-neighbor",
    seed=7,
    tenants=None,
    ticks=None,
    state_root=None,
    obs_path=None,
    log=None,
):
    """Run one tenancy soak; returns a :class:`TenancySoakResult`
    (plan-induced failures land in ``result.failure``, not a raise).

    ``tenants`` / ``ticks`` override the plan's defaults (the pinned
    digests hold only for the defaults).  ``log`` is an optional
    callable for progress lines (the CLI passes ``print``).
    """
    if plan not in _PLAN_RUNNERS:
        raise ChaosError(
            "unknown tenancy plan %r (valid: %s)"
            % (plan, ", ".join(TENANCY_PLAN_NAMES))
        )
    n_tenants = PLAN_TENANTS[plan] if tenants is None else int(tenants)
    n_ticks = PLAN_TICKS[plan] if ticks is None else int(ticks)
    if n_ticks < 1:
        raise ChaosError("tenancy soak needs ticks >= 1")
    minimum = PLAN_MIN_TENANTS[plan]
    if n_tenants < minimum:
        raise ChaosError(
            "plan %r needs at least %d tenants, got %d"
            % (plan, minimum, n_tenants)
        )
    say = log if log is not None else (lambda line: None)
    if state_root is None:
        state_root = tempfile.mkdtemp(prefix="tenancy-soak-")
    bus = EventBus(path=obs_path)
    obs = Recorder(bus=bus)
    result = TenancySoakResult(
        plan=plan,
        seed=int(seed),
        tenants=n_tenants,
        ticks_target=n_ticks,
    )
    try:
        _PLAN_RUNNERS[plan](
            result, state_root, n_tenants, n_ticks, int(seed), obs, say
        )
        for name, passed in sorted(result.invariants.items()):
            obs.emit(
                "tenancy_invariant", invariant=name, passed=bool(passed)
            )
            say(
                "  invariant %-26s %s"
                % (name, "ok" if passed else "FAIL")
            )
    except ReproError as error:
        result.failure = error
        say("  tenancy soak aborted: %s" % error)
    finally:
        obs.emit(
            "tenancy_complete",
            plan=plan,
            seed=int(seed),
            ticks=result.ticks_completed,
            intervals=result.intervals_total,
            shed=result.shed_total,
            quarantines=result.quarantines,
        )
        result.timeline = canonical_timeline(
            bus.events, kinds=TENANCY_TIMELINE_KINDS
        )
        result.digest = timeline_digest(result.timeline)
        bus.close()
    return result
