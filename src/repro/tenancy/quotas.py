"""Admission control and the per-tenant quarantine breaker.

Two protections keep one tenant's behaviour from becoming every
tenant's problem:

- **Admission control** (:class:`AdmissionController`): each tenant's
  join/leave intake per interval is bounded by its spec quota.  Every
  offered request ends in exactly one of three buckets — *accepted*
  (submitted to the tenant's daemon), *shed* (over quota, dropped at
  the door), or *quarantined* (the tenant was off the run queue when
  the load arrived).  ``offered = accepted + shed + quarantined`` holds
  per tenant at every instant; :meth:`AdmissionController.verify`
  checks it and the tenancy soak pins it as an invariant.
- **The quarantine breaker** (:class:`TenantBreaker`): modelled on the
  daemon's delivery :class:`~repro.service.daemon.CircuitBreaker`, but
  guarding the *run queue* instead of the delivery policy.  A tenant
  that keeps blowing its cost share (or whose intervals keep failing)
  is quarantined — removed from scheduling for a cooldown — then given
  a half-open trial tick.  A clean trial restores it; another strike
  re-opens the quarantine.  Persistent failure thus costs the failing
  tenant its own cadence, never its neighbors' deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TenancyError
from repro.service.churn import ChurnEvents


@dataclass
class TenantQuota:
    """Per-interval intake bound (``None`` = unlimited)."""

    max_requests: int = None

    def __post_init__(self):
        if self.max_requests is not None:
            self.max_requests = int(self.max_requests)
            if self.max_requests < 1:
                raise TenancyError(
                    "quota max_requests must be >= 1 (or None), got %d"
                    % self.max_requests
                )


@dataclass
class AdmissionLedger:
    """One tenant's running admission accounting."""

    offered: int = 0
    accepted: int = 0
    shed: int = 0
    quarantined: int = 0

    def to_dict(self):
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "shed": self.shed,
            "quarantined": self.quarantined,
        }


class AdmissionController:
    """Bounded intake per tenant, with conservation accounting."""

    def __init__(self):
        self._quotas = {}
        self._ledgers = {}

    def register(self, tenant, quota=None):
        self._quotas[tenant] = TenantQuota(max_requests=quota)
        self._ledgers[tenant] = AdmissionLedger()

    def ledger(self, tenant):
        try:
            return self._ledgers[tenant]
        except KeyError:
            raise TenancyError(
                "tenant %r is not registered for admission" % (tenant,)
            ) from None

    def admit(self, tenant, events, quarantined=False):
        """Split one offered batch; returns ``(admitted_events, shed)``.

        Joins are admitted before leaves (a leave for a join that was
        shed would be rejected downstream anyway), preserving offered
        order within each kind, so the split is deterministic in the
        batch alone.  While the tenant is quarantined the whole batch
        lands in the ``quarantined`` bucket — the outside world does
        not stop offering load just because the tenant is benched.
        """
        ledger = self.ledger(tenant)
        offered = events.n_events
        ledger.offered += offered
        if quarantined:
            ledger.quarantined += offered
            return ChurnEvents(), 0
        limit = self._quotas[tenant].max_requests
        if limit is None or offered <= limit:
            ledger.accepted += offered
            return events, 0
        joins = events.joins[:limit]
        leaves = events.leaves[: max(0, limit - len(joins))]
        admitted = ChurnEvents(joins=list(joins), leaves=list(leaves))
        shed = offered - admitted.n_events
        ledger.accepted += admitted.n_events
        ledger.shed += shed
        return admitted, shed

    def verify(self):
        """The conservation identity, per tenant; returns the failures."""
        broken = []
        for tenant, ledger in self._ledgers.items():
            if ledger.offered != (
                ledger.accepted + ledger.shed + ledger.quarantined
            ):
                broken.append(tenant)
        return broken

    def to_dict(self):
        return {
            tenant: ledger.to_dict()
            for tenant, ledger in self._ledgers.items()
        }


class TenantBreaker:
    """Quarantine breaker: strikes open it, a clean trial closes it.

    States mirror the delivery breaker: ``ok`` (closed), ``quarantined``
    (open, counting down ``cooldown`` ticks), ``trial`` (half-open).  A
    *strike* is one tick in which the tenant was overloaded (estimated
    cost over its share) or failed outright; ``threshold`` consecutive
    strikes quarantine it.  A hard failure (:meth:`trip`) quarantines
    immediately — a tenant whose WAL writes are failing gets no grace.
    """

    OK = "ok"
    QUARANTINED = "quarantined"
    TRIAL = "trial"

    def __init__(self, threshold=3, cooldown=4):
        if threshold < 1 or cooldown < 1:
            raise TenancyError(
                "breaker needs threshold >= 1 and cooldown >= 1"
            )
        self.threshold = int(threshold)
        self.cooldown = int(cooldown)
        self.state = self.OK
        self.consecutive = 0
        self.quarantines = 0
        self._cooldown_left = 0

    @property
    def quarantined(self):
        return self.state == self.QUARANTINED

    def _open(self):
        self.state = self.QUARANTINED
        self._cooldown_left = self.cooldown
        self.quarantines += 1
        self.consecutive = 0
        return "tenant_quarantine"

    def trip(self):
        """Hard failure: quarantine now; returns the transition kind."""
        return self._open()

    def tick_quarantine(self):
        """Advance one quarantined tick; returns ``tenant_trial`` when
        the cooldown elapses (the next tick is the half-open trial)."""
        if self.state != self.QUARANTINED:
            return None
        self._cooldown_left -= 1
        if self._cooldown_left <= 0:
            self.state = self.TRIAL
            return "tenant_trial"
        return None

    def record(self, strike):
        """Feed one scheduled tick's outcome; returns the transition
        kind (``tenant_quarantine`` / ``tenant_recovered``) or ``None``."""
        if self.state == self.TRIAL:
            if strike:
                return self._open()
            self.state = self.OK
            self.consecutive = 0
            return "tenant_recovered"
        if strike:
            self.consecutive += 1
            if self.consecutive >= self.threshold:
                return self._open()
            return None
        self.consecutive = 0
        return None

    def snapshot(self):
        return {
            "state": self.state,
            "consecutive_strikes": self.consecutive,
            "quarantines": self.quarantines,
        }
