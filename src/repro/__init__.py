"""repro — Reliable group rekeying: a performance analysis (SIGCOMM 2001).

A from-scratch reproduction of the Yang/Li/Zhang/Lam group-rekeying
system: logical key hierarchies with periodic batch rekeying, a
proactive-FEC multicast rekey transport with adaptive proactivity and a
unicast tail, the packet-level simulation substrate used to evaluate it,
and the analytic performance models.

Quick start::

    from repro import SecureGroup, GroupConfig

    group = SecureGroup(["alice", "bob", "carol", "dave"], GroupConfig())
    group.leave("dave")          # queue a departure
    group.join("erin")           # queue a join
    group.rekey(lossy=True)      # batch-rekey and deliver over the
                                 # simulated lossy multicast network

Sub-packages (importable directly for lower-level use):

========================  ====================================================
``repro.core``            public API: server, member, group facade
``repro.keytree``         d-ary key tree + marking algorithm
``repro.rekey``           ENC/PARITY/USR/NACK formats, UKA, blocks
``repro.fec``             GF(256) Reed-Solomon erasure coder
``repro.crypto``          toy cipher, signatures, cost accounting
``repro.sim``             burst-loss processes and multicast topology
``repro.transport``       the rekey transport protocol + simulators
``repro.analysis``        closed-form performance models
========================  ====================================================
"""

from repro.core import GroupConfig, GroupKeyServer, GroupMember, SecureGroup
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "GroupConfig",
    "GroupKeyServer",
    "GroupMember",
    "ReproError",
    "SecureGroup",
    "__version__",
]
