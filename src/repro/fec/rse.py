"""Systematic Reed-Solomon erasure coder (Rizzo-style).

Codewords are indexed 0..254: indices ``0..k-1`` are the original data
packets (the code is systematic), indices ``k..254`` are parity packets.
Any ``k`` received codeword packets — data or parity, in any mix —
recover the ``k`` originals.

Construction: let ``V`` be the 255 x k Vandermonde matrix with
``V[i, j] = x_i^j`` where ``x_i = g^i`` for the field generator ``g``
(all ``x_i`` distinct and non-zero).  The systematic generator is
``G = V @ inv(V[:k])``: its top k x k block is the identity, and every
k x k row-selection of ``G`` stays invertible because the corresponding
rows of ``V`` form a (generalised) Vandermonde system.

The coder supports *incremental* parity: the protocol's later multicast
rounds send ``amax[i]`` **new** parity packets per block, which are just
further rows of ``G`` (indices continuing where the first round
stopped).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FECError, NotEnoughPacketsError
from repro.fec.gf256 import gf_matmul, gf_matrix_invert, gf_pow
from repro.util.validation import check_non_negative, check_positive

#: Maximum codeword index + 1.  With distinct non-zero evaluation points
#: in GF(256) there are 255 usable rows.
MAX_CODEWORDS = 255

_GENERATOR_CACHE = {}


def _generator_matrix(k):
    """Full 255 x k systematic generator for block size ``k`` (cached)."""
    matrix = _GENERATOR_CACHE.get(k)
    if matrix is None:
        points = [gf_pow(2, i) for i in range(MAX_CODEWORDS)]
        vandermonde = np.zeros((MAX_CODEWORDS, k), dtype=np.uint8)
        for i, x in enumerate(points):
            value = 1
            for j in range(k):
                vandermonde[i, j] = value
                value = _gf_mul_scalar(value, x)
        top_inverse = gf_matrix_invert(vandermonde[:k])
        matrix = _gf_matmul_small(vandermonde, top_inverse)
        _GENERATOR_CACHE[k] = matrix
    return matrix


def _gf_mul_scalar(a, b):
    from repro.fec.gf256 import gf_mul

    return gf_mul(a, b)


def _gf_matmul_small(a, b):
    """Dense GF matrix product for generator construction."""
    from repro.fec.gf256 import gf_mul

    rows, inner = a.shape
    cols = b.shape[1]
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            acc = 0
            for t in range(inner):
                acc ^= gf_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


def encoding_cost_units(k, n_parity):
    """Modelled FEC encoding cost: ``k`` units per parity packet.

    Rizzo's coder encodes one parity packet in time linear in the block
    size, so a rekey message costs ``k * (total parity packets)`` units
    — the quantity plotted in the paper's "relative FEC encoding time"
    figure (E03).
    """
    check_positive("k", k, integral=True)
    check_non_negative("n_parity", n_parity, integral=True)
    return k * n_parity


class RSECoder:
    """Encoder/decoder for one block size ``k``.

    All packets in a block must share one length (ENC packets are padded
    to a fixed size for exactly this reason).
    """

    def __init__(self, k):
        check_positive("block size k", k, integral=True)
        if k >= MAX_CODEWORDS:
            raise FECError(
                "block size %d exceeds the GF(256) limit of %d"
                % (k, MAX_CODEWORDS - 1)
            )
        self._k = int(k)
        self._generator = _generator_matrix(self._k)

    @property
    def k(self):
        """Block size: number of data packets per block."""
        return self._k

    def max_parity(self):
        """How many distinct parity packets this block size supports."""
        return MAX_CODEWORDS - self._k

    # -- encoding -------------------------------------------------------

    def _as_matrix(self, data_packets):
        if len(data_packets) != self._k:
            raise FECError(
                "expected %d data packets, got %d"
                % (self._k, len(data_packets))
            )
        lengths = {len(p) for p in data_packets}
        if len(lengths) != 1:
            raise FECError(
                "all packets in a block must have equal length, got %s"
                % sorted(lengths)
            )
        return np.stack(
            [np.frombuffer(bytes(p), dtype=np.uint8) for p in data_packets]
        )

    def parity(self, data_packets, n_parity, first_parity_index=0):
        """Generate ``n_parity`` parity packets for the block.

        ``first_parity_index`` selects where in the parity row space to
        start (0 for the proactive round; subsequent rounds continue
        from where the previous round stopped so every parity packet
        ever sent for a block is distinct and equally useful).
        """
        check_non_negative("n_parity", n_parity, integral=True)
        check_non_negative(
            "first_parity_index", first_parity_index, integral=True
        )
        if n_parity == 0:
            return []
        first_row = self._k + first_parity_index
        last_row = first_row + n_parity
        if last_row > MAX_CODEWORDS:
            raise FECError(
                "parity rows %d..%d exceed the GF(256) limit of %d"
                % (first_row, last_row - 1, MAX_CODEWORDS - 1)
            )
        data = self._as_matrix(data_packets)
        rows = self._generator[first_row:last_row]
        return [bytes(p) for p in gf_matmul(rows, data)]

    def encode(self, data_packets, n_parity):
        """Return the full codeword prefix: data then ``n_parity`` parity."""
        return [bytes(p) for p in data_packets] + self.parity(
            data_packets, n_parity
        )

    # -- decoding -------------------------------------------------------

    def decode(self, received):
        """Recover the ``k`` data packets from any ``k`` codeword packets.

        ``received`` maps codeword index -> packet bytes.  Extra packets
        beyond ``k`` are ignored (the first ``k`` lowest indices are
        used).  Raises :class:`NotEnoughPacketsError` with the shortfall
        recorded when fewer than ``k`` packets are present.
        """
        if not isinstance(received, dict):
            raise FECError("received must map codeword index -> bytes")
        if len(received) < self._k:
            missing = self._k - len(received)
            raise NotEnoughPacketsError(
                "need %d packets, have %d (%d more required)"
                % (self._k, len(received), missing)
            )
        for index in received:
            if not 0 <= index < MAX_CODEWORDS:
                raise FECError("codeword index %r out of range" % (index,))

        indices = sorted(received)[: self._k]
        if indices == list(range(self._k)):
            # All data packets arrived; no algebra needed.
            return [bytes(received[i]) for i in indices]

        lengths = {len(received[i]) for i in indices}
        if len(lengths) != 1:
            raise FECError(
                "received packets have differing lengths: %s"
                % sorted(lengths)
            )
        submatrix = self._generator[indices].copy()
        inverse = gf_matrix_invert(submatrix)
        stacked = np.stack(
            [
                np.frombuffer(bytes(received[i]), dtype=np.uint8)
                for i in indices
            ]
        )
        recovered = gf_matmul(inverse, stacked)
        return [bytes(p) for p in recovered]

    def parity_needed(self, n_received):
        """How many more packets a user must request (the NACK ``a``).

        By the property of Reed-Solomon encoding this is simply
        ``k - received`` (never negative).
        """
        check_non_negative("n_received", n_received, integral=True)
        return max(0, self._k - n_received)

    def __repr__(self):
        return "RSECoder(k=%d)" % self._k
