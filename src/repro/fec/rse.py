"""Systematic Reed-Solomon erasure coder (Rizzo-style).

Codewords are indexed 0..254: indices ``0..k-1`` are the original data
packets (the code is systematic), indices ``k..254`` are parity packets.
Any ``k`` received codeword packets — data or parity, in any mix —
recover the ``k`` originals.

Construction: let ``V`` be the 255 x k Vandermonde matrix with
``V[i, j] = x_i^j`` where ``x_i = g^i`` for the field generator ``g``
(all ``x_i`` distinct and non-zero).  The systematic generator is
``G = V @ inv(V[:k])``: its top k x k block is the identity, and every
k x k row-selection of ``G`` stays invertible because the corresponding
rows of ``V`` form a (generalised) Vandermonde system.

The coder supports *incremental* parity: the protocol's later multicast
rounds send ``amax[i]`` **new** parity packets per block, which are just
further rows of ``G`` (indices continuing where the first round
stopped).

Two interchangeable implementations share the generator matrix:

- :class:`RSECoder` (alias :data:`MatrixRSECoder`) — the default fast
  path.  Generator rows are compiled once into per-coefficient 256-byte
  multiplication tables; applying a row to a packet is a single
  :meth:`bytes.translate`, and the XOR accumulation across the block is
  one vectorised reduction over all rows at once.
- :class:`ReferenceRSECoder` — the original scalar path (per-coefficient
  ``gf_matmul`` loops and per-element Gauss-Jordan inversion), retained
  as the differential-testing oracle and for golden-vector generation.

Both produce bit-identical codewords; ``tests/fec`` enforces this with
exact equality, never statistical tolerance.
"""

from __future__ import annotations

from itertools import cycle

import numpy as np

from repro.errors import FECError, NotEnoughPacketsError
from repro.fec.gf256 import (
    GF_EXP,
    gf_encode_stacked,
    gf_matmul,
    gf_matmul_dense,
    gf_matrix_invert,
    gf_matrix_invert_fast,
    gf_mul_table_rows,
    gf_pow,
)
from repro.obs.recorder import NULL
from repro.util.validation import check_non_negative, check_positive

#: Maximum codeword index + 1.  With distinct non-zero evaluation points
#: in GF(256) there are 255 usable rows.
MAX_CODEWORDS = 255

_GENERATOR_CACHE = {}

#: Decode inversions are cached per erasure pattern; NACK-driven repair
#: rounds hit the same few patterns over and over, so this is a large
#: win for the fleet simulations.  Bounded so adversarial pattern churn
#: cannot grow memory without limit.
_DECODE_CACHE_LIMIT = 512


def _generator_matrix(k):
    """Full 255 x k systematic generator for block size ``k`` (cached).

    Vectorised construction: with ``x_i = 2^i`` the Vandermonde entry is
    ``V[i, j] = 2^(i*j mod 255)``, one exp-table gather for the whole
    matrix.  Byte-identical to :func:`_reference_generator_matrix` (the
    original scalar construction), which ``tests/fec`` verifies.
    """
    matrix = _GENERATOR_CACHE.get(k)
    if matrix is None:
        i = np.arange(MAX_CODEWORDS, dtype=np.int64)[:, None]
        j = np.arange(k, dtype=np.int64)[None, :]
        vandermonde = GF_EXP[(i * j) % 255]
        top_inverse = gf_matrix_invert_fast(vandermonde[:k])
        matrix = gf_matmul_dense(vandermonde, top_inverse)
        matrix.setflags(write=False)
        _GENERATOR_CACHE[k] = matrix
    return matrix


def _reference_generator_matrix(k):
    """The original loop-based generator construction (uncached).

    Kept as the oracle for the vectorised builder; only tests call it.
    """
    from repro.fec.gf256 import gf_mul

    points = [gf_pow(2, i) for i in range(MAX_CODEWORDS)]
    vandermonde = np.zeros((MAX_CODEWORDS, k), dtype=np.uint8)
    for i, x in enumerate(points):
        value = 1
        for j in range(k):
            vandermonde[i, j] = value
            value = gf_mul(value, x)
    top_inverse = gf_matrix_invert(vandermonde[:k])
    rows, inner = vandermonde.shape
    out = np.zeros((rows, k), dtype=np.uint8)
    for i in range(rows):
        for j in range(k):
            acc = 0
            for t in range(inner):
                acc ^= gf_mul(
                    int(vandermonde[i, t]), int(top_inverse[t, j])
                )
            out[i, j] = acc
    return out


def encoding_cost_units(k, n_parity):
    """Modelled FEC encoding cost: ``k`` units per parity packet.

    Rizzo's coder encodes one parity packet in time linear in the block
    size, so a rekey message costs ``k * (total parity packets)`` units
    — the quantity plotted in the paper's "relative FEC encoding time"
    figure (E03).
    """
    check_positive("k", k, integral=True)
    check_non_negative("n_parity", n_parity, integral=True)
    return k * n_parity


class _RSECoderBase:
    """Shared contract: validation, parity-row bookkeeping, decoding
    plumbing.  Subclasses supply ``_apply`` (rows x packets product) and
    ``_invert`` (k x k inversion)."""

    def __init__(self, k):
        check_positive("block size k", k, integral=True)
        if k >= MAX_CODEWORDS:
            raise FECError(
                "block size %d exceeds the GF(256) limit of %d"
                % (k, MAX_CODEWORDS - 1)
            )
        self._k = int(k)
        self._generator = _generator_matrix(self._k)
        #: observability recorder (repro.obs); spans are emitted only
        #: when a real recorder is attached — the ``enabled`` guard
        #: keeps the per-block cost at one attribute load otherwise
        self.obs = NULL

    @property
    def k(self):
        """Block size: number of data packets per block."""
        return self._k

    def max_parity(self):
        """How many distinct parity packets this block size supports."""
        return MAX_CODEWORDS - self._k

    # -- encoding -------------------------------------------------------

    def _check_block(self, data_packets):
        if len(data_packets) != self._k:
            raise FECError(
                "expected %d data packets, got %d"
                % (self._k, len(data_packets))
            )
        lengths = {len(p) for p in data_packets}
        if len(lengths) != 1:
            raise FECError(
                "all packets in a block must have equal length, got %s"
                % sorted(lengths)
            )

    def parity(self, data_packets, n_parity, first_parity_index=0):
        """Generate ``n_parity`` parity packets for the block.

        ``first_parity_index`` selects where in the parity row space to
        start (0 for the proactive round; subsequent rounds continue
        from where the previous round stopped so every parity packet
        ever sent for a block is distinct and equally useful).
        """
        check_non_negative("n_parity", n_parity, integral=True)
        check_non_negative(
            "first_parity_index", first_parity_index, integral=True
        )
        if n_parity == 0:
            return []
        first_row = self._k + first_parity_index
        last_row = first_row + n_parity
        if last_row > MAX_CODEWORDS:
            raise FECError(
                "parity rows %d..%d exceed the GF(256) limit of %d"
                % (first_row, last_row - 1, MAX_CODEWORDS - 1)
            )
        self._check_block(data_packets)
        obs = self.obs
        if obs.enabled:
            with obs.span(
                "fec.encode", k=self._k, n_parity=int(n_parity)
            ):
                return self._apply_generator_rows(
                    first_row, last_row, data_packets
                )
        return self._apply_generator_rows(first_row, last_row, data_packets)

    def _apply_generator_rows(self, first_row, last_row, data_packets):
        return self._apply(
            self._generator[first_row:last_row], data_packets
        )

    def encode(self, data_packets, n_parity):
        """Return the full codeword prefix: data then ``n_parity`` parity."""
        return [bytes(p) for p in data_packets] + self.parity(
            data_packets, n_parity
        )

    def parity_blocks(self, blocks, n_parity, first_parity_index=0):
        """Parity for *every* block of a message in one call.

        ``blocks`` is a sequence of blocks, each a sequence of ``k``
        equal-length data packets (all blocks of a rekey message share
        one packet size, so one fused kernel can encode the whole
        interval).  Returns one parity list per block — element ``b`` is
        exactly ``self.parity(blocks[b], n_parity, first_parity_index)``.

        This base implementation is the per-block oracle loop; the
        matrix coder overrides it with the stacked GF(256) kernel
        (:func:`repro.fec.gf256.gf_encode_stacked`), which ``tests/fec``
        pins to the loop — and to committed golden bytes.
        """
        return [
            self.parity(block, n_parity, first_parity_index)
            for block in blocks
        ]

    # -- decoding -------------------------------------------------------

    def decode(self, received):
        """Recover the ``k`` data packets from any ``k`` codeword packets.

        ``received`` maps codeword index -> packet bytes.  Extra packets
        beyond ``k`` are ignored (the first ``k`` lowest indices are
        used).  Raises :class:`NotEnoughPacketsError` with the shortfall
        recorded when fewer than ``k`` packets are present.
        """
        if not isinstance(received, dict):
            raise FECError("received must map codeword index -> bytes")
        if len(received) < self._k:
            missing = self._k - len(received)
            raise NotEnoughPacketsError(
                "need %d packets, have %d (%d more required)"
                % (self._k, len(received), missing)
            )
        for index in received:
            if not 0 <= index < MAX_CODEWORDS:
                raise FECError("codeword index %r out of range" % (index,))

        indices = sorted(received)[: self._k]
        if indices == list(range(self._k)):
            # All data packets arrived; no algebra needed.
            return [bytes(received[i]) for i in indices]

        lengths = {len(received[i]) for i in indices}
        if len(lengths) != 1:
            raise FECError(
                "received packets have differing lengths: %s"
                % sorted(lengths)
            )
        packets = [received[i] for i in indices]
        obs = self.obs
        if obs.enabled:
            with obs.span(
                "fec.decode", k=self._k, erased=self._k - sum(
                    1 for i in indices if i < self._k
                ),
            ):
                return self._decode_packets(indices, packets)
        return self._decode_packets(indices, packets)

    def _decode_packets(self, indices, packets):
        submatrix = self._generator[indices].copy()
        inverse = self._invert(submatrix)
        return self._apply(inverse, packets)

    def parity_needed(self, n_received):
        """How many more packets a user must request (the NACK ``a``).

        By the property of Reed-Solomon encoding this is simply
        ``k - received`` (never negative).
        """
        check_non_negative("n_received", n_received, integral=True)
        return max(0, self._k - n_received)

    def __repr__(self):
        return "%s(k=%d)" % (type(self).__name__, self._k)


class ReferenceRSECoder(_RSECoderBase):
    """The original scalar encoder/decoder, kept as the oracle.

    Applies generator rows with :func:`gf_matmul` (a per-coefficient
    Python loop over packet arrays) and inverts decode systems with the
    per-element :func:`gf_matrix_invert`.  Slow but transparently
    correct; :class:`RSECoder` must match it byte for byte.
    """

    def _apply(self, rows, packets):
        stacked = np.stack(
            [np.frombuffer(bytes(p), dtype=np.uint8) for p in packets]
        )
        return [bytes(p) for p in gf_matmul(rows, stacked)]

    def _invert(self, submatrix):
        return gf_matrix_invert(submatrix)


class RSECoder(_RSECoderBase):
    """Matrix-form encoder/decoder for one block size ``k`` (default).

    All packets in a block must share one length (ENC packets are padded
    to a fixed size for exactly this reason).

    Fast path: each generator coefficient is compiled once into a
    256-byte translation table (:func:`gf_mul_table_rows`); applying
    ``h`` rows to a ``k``-packet block is then ``h*k`` calls to
    :meth:`bytes.translate` fused into a single buffer, followed by one
    vectorised XOR reduction — no per-coefficient numpy round trips.
    Parity-row tables are cached per coder, and decode inversions are
    memoised per erasure pattern.
    """

    def __init__(self, k):
        super().__init__(k)
        self._row_tables = {}
        self._decode_cache = {}

    # -- table compilation ---------------------------------------------

    def _tables_for_rows(self, first_row, last_row):
        """Translation tables for generator rows [first_row, last_row),
        flattened row-major: k tables per row."""
        missing = [
            row for row in range(first_row, last_row)
            if row not in self._row_tables
        ]
        if missing:
            coefficients = self._generator[missing].reshape(-1)
            compiled = gf_mul_table_rows(coefficients)
            for position, row in enumerate(missing):
                base = position * self._k
                self._row_tables[row] = tuple(
                    compiled[base + column].tobytes()
                    for column in range(self._k)
                )
        tables = []
        for row in range(first_row, last_row):
            tables.extend(self._row_tables[row])
        return tables

    @staticmethod
    def _compile_matrix(matrix):
        compiled = gf_mul_table_rows(np.asarray(matrix).reshape(-1))
        return [compiled[i].tobytes() for i in range(compiled.shape[0])]

    def _translate_apply(self, tables, packets, n_rows):
        """XOR-accumulate translated packets: the fused hot loop.

        ``tables`` holds ``n_rows * k`` translation tables row-major.
        Every (row, column) term is translated into one contiguous
        buffer; a single reshape + XOR reduction collapses the block
        dimension.
        """
        data = [bytes(p) for p in packets]
        length = len(data[0])
        joined = b"".join(
            packet.translate(table)
            for table, packet in zip(tables, cycle(data))
        )
        combined = np.frombuffer(joined, dtype=np.uint8)
        out = np.bitwise_xor.reduce(
            combined.reshape(n_rows, self._k, length), axis=1
        )
        return [row.tobytes() for row in out]

    # -- hot-path overrides --------------------------------------------

    def _apply_generator_rows(self, first_row, last_row, data_packets):
        tables = self._tables_for_rows(first_row, last_row)
        return self._translate_apply(
            tables, data_packets, last_row - first_row
        )

    def _apply(self, rows, packets):
        rows = np.asarray(rows, dtype=np.uint8)
        return self._translate_apply(
            self._compile_matrix(rows), packets, rows.shape[0]
        )

    def _invert(self, submatrix):
        return gf_matrix_invert_fast(submatrix)

    def parity_blocks(self, blocks, n_parity, first_parity_index=0):
        """Stacked-block parity: one fused kernel for the whole message.

        Byte-identical to the base class's per-block loop (pinned by
        ``tests/fec`` golden vectors); blocks with differing packet
        lengths fall back to the loop, since the fused kernel needs one
        rectangular array.
        """
        check_non_negative("n_parity", n_parity, integral=True)
        check_non_negative(
            "first_parity_index", first_parity_index, integral=True
        )
        blocks = [list(block) for block in blocks]
        if n_parity == 0 or not blocks:
            return [[] for _ in blocks]
        first_row = self._k + first_parity_index
        last_row = first_row + n_parity
        if last_row > MAX_CODEWORDS:
            raise FECError(
                "parity rows %d..%d exceed the GF(256) limit of %d"
                % (first_row, last_row - 1, MAX_CODEWORDS - 1)
            )
        for block in blocks:
            self._check_block(block)
        if len({len(block[0]) for block in blocks}) != 1:
            return super().parity_blocks(
                blocks, n_parity, first_parity_index
            )
        length = len(blocks[0][0])
        stacked = np.frombuffer(
            b"".join(
                bytes(packet) for block in blocks for packet in block
            ),
            dtype=np.uint8,
        ).reshape(len(blocks), self._k, length)
        rows = self._generator[first_row:last_row]
        obs = self.obs
        if obs.enabled:
            with obs.span(
                "fec.encode_batch",
                k=self._k,
                n_blocks=len(blocks),
                n_parity=int(n_parity),
            ):
                encoded = gf_encode_stacked(rows, stacked)
        else:
            encoded = gf_encode_stacked(rows, stacked)
        return [
            [row.tobytes() for row in block_rows]
            for block_rows in encoded
        ]

    def _decode_packets(self, indices, packets):
        pattern = tuple(indices)
        tables = self._decode_cache.get(pattern)
        if tables is None:
            inverse = gf_matrix_invert_fast(self._generator[indices].copy())
            tables = self._compile_matrix(inverse)
            if len(self._decode_cache) >= _DECODE_CACHE_LIMIT:
                self._decode_cache.clear()
            self._decode_cache[pattern] = tables
        return self._translate_apply(tables, packets, self._k)


#: Explicit name for the fast implementation; ``RSECoder`` remains the
#: default everywhere.
MatrixRSECoder = RSECoder

#: Recognised coder kinds for :func:`make_coder` / ``GroupConfig``.
CODER_KINDS = ("matrix", "reference")


def make_coder(kind, k, obs=None):
    """Instantiate an RSE coder by kind: ``"matrix"`` or ``"reference"``."""
    if kind == "matrix":
        coder = RSECoder(k)
    elif kind == "reference":
        coder = ReferenceRSECoder(k)
    else:
        coder = None
    if coder is not None:
        if obs is not None:
            coder.obs = obs
        return coder
    raise FECError(
        "unknown RSE coder kind %r (expected one of %s)"
        % (kind, ", ".join(CODER_KINDS))
    )
