"""Forward-error-correction substrate: Reed-Solomon erasure coding.

The key server groups ENC packets into blocks of ``k`` and generates
PARITY packets with a Reed-Solomon Erasure (RSE) coder in the style of
L. Rizzo's classic implementation: a systematic code over GF(2^8) built
from a Vandermonde matrix, so that *any* ``k`` of the ``n`` codeword
packets recover the ``k`` originals.

- :mod:`repro.fec.gf256` — arithmetic over GF(2^8).
- :mod:`repro.fec.rse` — the coder, with support for generating extra
  parity packets incrementally (the protocol sends ``amax[i]`` *new*
  parity packets per block each round).
"""

from repro.fec.gf256 import (
    FIELD_SIZE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
)
from repro.fec.rse import MAX_CODEWORDS, RSECoder, encoding_cost_units

__all__ = [
    "FIELD_SIZE",
    "MAX_CODEWORDS",
    "RSECoder",
    "encoding_cost_units",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_mul_bytes",
    "gf_pow",
]
