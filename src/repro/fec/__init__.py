"""Forward-error-correction substrate: Reed-Solomon erasure coding.

The key server groups ENC packets into blocks of ``k`` and generates
PARITY packets with a Reed-Solomon Erasure (RSE) coder in the style of
L. Rizzo's classic implementation: a systematic code over GF(2^8) built
from a Vandermonde matrix, so that *any* ``k`` of the ``n`` codeword
packets recover the ``k`` originals.

- :mod:`repro.fec.gf256` — arithmetic over GF(2^8), scalar and
  vectorised (translation-table compilation, dense matmul, fast
  Gauss-Jordan inversion).
- :mod:`repro.fec.rse` — the coder, with support for generating extra
  parity packets incrementally (the protocol sends ``amax[i]`` *new*
  parity packets per block each round).  :class:`RSECoder` is the
  matrix-form fast path; :class:`ReferenceRSECoder` is the original
  scalar implementation kept as the differential-testing oracle.
"""

from repro.fec.gf256 import (
    FIELD_SIZE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
)
from repro.fec.rse import (
    CODER_KINDS,
    MAX_CODEWORDS,
    MatrixRSECoder,
    ReferenceRSECoder,
    RSECoder,
    encoding_cost_units,
    make_coder,
)

__all__ = [
    "CODER_KINDS",
    "FIELD_SIZE",
    "MAX_CODEWORDS",
    "MatrixRSECoder",
    "RSECoder",
    "ReferenceRSECoder",
    "encoding_cost_units",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_mul_bytes",
    "gf_pow",
    "make_coder",
]
