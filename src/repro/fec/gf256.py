"""Arithmetic over the finite field GF(2^8).

The field is realised as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1)
(polynomial 0x11D, the one used by Rizzo's erasure coder and by most
RS implementations), with generator element 2.  Multiplication uses
exp/log tables; addition is XOR.

``gf_mul_bytes`` is the hot path of encoding/decoding: it multiplies an
entire packet (a numpy ``uint8`` array) by one field coefficient using a
single table lookup, which keeps pure-Python RSE fast enough for the
transport simulations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FECError

FIELD_SIZE = 256
_PRIMITIVE_POLY = 0x11D
_GENERATOR = 2


def _build_tables():
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int16)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    # Duplicate so exp[log[a] + log[b]] never needs a modulo.
    exp[255:510] = exp[0:255]
    return exp, log


GF_EXP, GF_LOG = _build_tables()


def _build_extended_tables():
    # "Extended" log/exp tables let vectorised code multiply whole
    # matrices without masking out zeros: log(0) is mapped to a sentinel
    # large enough that any sentinel-tainted index lands in a zero region
    # of the extended exp table, so 0 * x = 0 falls out of the same
    # gather as every other product.
    log_ext = GF_LOG.astype(np.int64)
    log_ext[0] = _ZERO_LOG_SENTINEL
    exp_ext = np.zeros(2 * _ZERO_LOG_SENTINEL + 1, dtype=np.uint8)
    exp_ext[:512] = GF_EXP
    exp_ext[510:] = 0
    return exp_ext, log_ext


#: Sentinel standing in for log(0).  Two real logs sum to at most 508,
#: so any index >= 510 can only come from a zero operand.
_ZERO_LOG_SENTINEL = 1024

GF_EXP_EXT, GF_LOG_EXT = _build_extended_tables()


def gf_add(a, b):
    """Addition in GF(2^8): XOR (also subtraction)."""
    return a ^ b


def gf_mul(a, b):
    """Multiplication of two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(GF_EXP[int(GF_LOG[a]) + int(GF_LOG[b])])


def gf_inv(a):
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise FECError("zero has no multiplicative inverse in GF(256)")
    return int(GF_EXP[255 - int(GF_LOG[a])])


def gf_div(a, b):
    """Division a / b; raises on division by zero."""
    if b == 0:
        raise FECError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(GF_EXP[int(GF_LOG[a]) - int(GF_LOG[b]) + 255])


def gf_pow(a, exponent):
    """``a`` raised to a non-negative integer power."""
    if exponent < 0:
        raise FECError("negative exponents are not supported")
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return int(GF_EXP[(int(GF_LOG[a]) * exponent) % 255])


# Precomputed 256x256 multiplication table rows on demand: row[c] maps
# every byte b -> c*b.  Used to multiply whole packets by a coefficient.
_MUL_ROWS = {}


def _mul_row(coefficient):
    row = _MUL_ROWS.get(coefficient)
    if row is None:
        if coefficient == 0:
            row = np.zeros(256, dtype=np.uint8)
        else:
            log_c = int(GF_LOG[coefficient])
            row = np.zeros(256, dtype=np.uint8)
            row[1:] = GF_EXP[log_c + GF_LOG[1:256]]
        _MUL_ROWS[coefficient] = row
    return row


def gf_mul_bytes(coefficient, data):
    """Multiply every byte of ``data`` (uint8 array) by ``coefficient``."""
    if not 0 <= coefficient < 256:
        raise FECError("coefficient must be a byte, got %r" % (coefficient,))
    data = np.asarray(data, dtype=np.uint8)
    return _mul_row(int(coefficient))[data]


def gf_matmul(matrix, data):
    """Matrix-vector-of-packets product over GF(2^8).

    ``matrix`` is (r x c) of field elements; ``data`` is (c x length)
    uint8.  Returns (r x length) uint8: each output packet is the
    GF-linear combination of input packets given by one matrix row.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    data = np.asarray(data, dtype=np.uint8)
    if matrix.ndim != 2 or data.ndim != 2:
        raise FECError("gf_matmul expects 2-D inputs")
    if matrix.shape[1] != data.shape[0]:
        raise FECError(
            "shape mismatch: matrix is %r, data is %r"
            % (matrix.shape, data.shape)
        )
    out = np.zeros((matrix.shape[0], data.shape[1]), dtype=np.uint8)
    for row_index in range(matrix.shape[0]):
        accumulator = out[row_index]
        for col_index in range(matrix.shape[1]):
            coefficient = int(matrix[row_index, col_index])
            if coefficient:
                accumulator ^= gf_mul_bytes(coefficient, data[col_index])
    return out


def gf_mul_table_rows(coefficients):
    """Per-coefficient 256-entry multiplication tables, built in one shot.

    ``coefficients`` is a 1-D uint8 array of ``n`` field elements; the
    result is an ``(n, 256)`` uint8 array whose row ``i`` maps every
    byte ``b`` to ``coefficients[i] * b``.  Each row, via ``.tobytes()``,
    is directly usable with :meth:`bytes.translate` — the fastest way in
    pure Python to multiply a whole packet by one coefficient.
    """
    coefficients = np.asarray(coefficients, dtype=np.uint8)
    if coefficients.ndim != 1:
        raise FECError("gf_mul_table_rows expects a 1-D coefficient array")
    log_c = GF_LOG_EXT[coefficients]
    log_b = GF_LOG_EXT[np.arange(256)]
    return GF_EXP_EXT[log_c[:, None] + log_b[None, :]]


def gf_matmul_dense(a, b):
    """Dense field-matrix product ``a @ b`` over GF(2^8), vectorised.

    Unlike :func:`gf_matmul` (which treats ``b`` as a stack of packets
    and loops per coefficient), both operands here are small matrices of
    field elements; the whole product is computed with two table gathers
    and an XOR reduction.  Row-chunked so the intermediate
    ``(rows, inner, cols)`` tensor stays small even for k=254.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise FECError("gf_matmul_dense expects 2-D inputs")
    if a.shape[1] != b.shape[0]:
        raise FECError(
            "shape mismatch: a is %r, b is %r" % (a.shape, b.shape)
        )
    rows, inner = a.shape
    cols = b.shape[1]
    out = np.zeros((rows, cols), dtype=np.uint8)
    if inner == 0:
        return out
    log_b = GF_LOG_EXT[b]
    chunk = max(1, (1 << 20) // max(1, inner * cols))
    for start in range(0, rows, chunk):
        stop = min(start + chunk, rows)
        log_a = GF_LOG_EXT[a[start:stop]]
        products = GF_EXP_EXT[log_a[:, :, None] + log_b[None, :, :]]
        out[start:stop] = np.bitwise_xor.reduce(products, axis=1)
    return out


def gf_encode_stacked(rows, blocks):
    """Apply generator ``rows`` to a *stack* of blocks in one fused call.

    ``rows`` is ``(r, k)`` of field elements; ``blocks`` is a
    ``(n_blocks, k, length)`` uint8 array — every data packet of every
    block of one rekey message at once.  Returns
    ``(n_blocks, r, length)`` uint8: ``out[b]`` equals
    ``gf_matmul(rows, blocks[b])`` (the per-block path), but the whole
    message is encoded with two extended-table gathers and one XOR
    reduction instead of ``n_blocks * r * k`` per-coefficient passes.

    Chunked over blocks so the intermediate ``(chunk, r, k, length)``
    product tensor stays within a fixed footprint regardless of how many
    blocks an interval produced.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    blocks = np.asarray(blocks, dtype=np.uint8)
    if rows.ndim != 2 or blocks.ndim != 3:
        raise FECError(
            "gf_encode_stacked expects (r, k) rows and "
            "(n_blocks, k, length) blocks"
        )
    if rows.shape[1] != blocks.shape[1]:
        raise FECError(
            "shape mismatch: rows are %r, blocks are %r"
            % (rows.shape, blocks.shape)
        )
    n_blocks, k, length = blocks.shape
    r = rows.shape[0]
    out = np.zeros((n_blocks, r, length), dtype=np.uint8)
    if r == 0 or n_blocks == 0 or k == 0:
        return out
    log_rows = GF_LOG_EXT[rows]  # (r, k)
    per_block = max(1, r * k * length)
    chunk = max(1, (1 << 24) // per_block)
    for start in range(0, n_blocks, chunk):
        stop = min(start + chunk, n_blocks)
        log_blocks = GF_LOG_EXT[blocks[start:stop]]  # (c, k, length)
        products = GF_EXP_EXT[
            log_rows[None, :, :, None] + log_blocks[:, None, :, :]
        ]
        out[start:stop] = np.bitwise_xor.reduce(products, axis=2)
    return out


def gf_matrix_invert_fast(matrix):
    """Vectorised Gauss-Jordan inversion over GF(2^8).

    Same contract as :func:`gf_matrix_invert`, but each elimination step
    updates all rows at once with table gathers instead of per-element
    Python loops, so inverting the k x k systems that decoding needs is
    cheap even at k=254.
    """
    matrix = np.array(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise FECError("can only invert square matrices")
    size = matrix.shape[0]
    augmented = np.concatenate(
        [matrix, np.eye(size, dtype=np.uint8)], axis=1
    )
    for col in range(size):
        pivots = np.nonzero(augmented[col:, col])[0]
        if pivots.size == 0:
            raise FECError("matrix is singular over GF(256)")
        pivot_row = col + int(pivots[0])
        if pivot_row != col:
            augmented[[col, pivot_row]] = augmented[[pivot_row, col]]
        log_pivot_inv = (255 - int(GF_LOG[augmented[col, col]])) % 255
        augmented[col] = GF_EXP_EXT[
            GF_LOG_EXT[augmented[col]] + log_pivot_inv
        ]
        factors = augmented[:, col].copy()
        factors[col] = 0
        eliminate = np.nonzero(factors)[0]
        if eliminate.size:
            products = GF_EXP_EXT[
                GF_LOG_EXT[factors[eliminate]][:, None]
                + GF_LOG_EXT[augmented[col]][None, :]
            ]
            augmented[eliminate] ^= products
    return np.ascontiguousarray(augmented[:, size:])


def gf_matrix_invert(matrix):
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination."""
    matrix = np.array(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise FECError("can only invert square matrices")
    size = matrix.shape[0]
    work = matrix.astype(np.int32)
    identity = np.eye(size, dtype=np.int32)
    augmented = np.concatenate([work, identity], axis=1)
    for col in range(size):
        pivot_row = None
        for row in range(col, size):
            if augmented[row, col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise FECError("matrix is singular over GF(256)")
        if pivot_row != col:
            augmented[[col, pivot_row]] = augmented[[pivot_row, col]]
        pivot_inv = gf_inv(int(augmented[col, col]))
        for j in range(2 * size):
            augmented[col, j] = gf_mul(int(augmented[col, j]), pivot_inv)
        for row in range(size):
            if row == col or augmented[row, col] == 0:
                continue
            factor = int(augmented[row, col])
            for j in range(2 * size):
                augmented[row, j] ^= gf_mul(factor, int(augmented[col, j]))
    return augmented[:, size:].astype(np.uint8)
