"""Network-simulation substrate.

The paper evaluates rekey transport on the topology of Nonnenmacher et
al.: the key server reaches a loss-free backbone through one *source
link*, and every user hangs off the backbone through its own *receiver
link*.  Losses are bursty: each link runs an independent two-state
continuous-time Markov chain whose mean loss-burst duration is
``100 * p`` ms and mean loss-free duration ``100 * (1 - p)`` ms, giving
a stationary loss rate of exactly ``p``.

A fraction ``alpha`` of users are *high-loss* (``p_h``, default 20 %);
the rest are low-loss (``p_l``, default 2 %); the source link runs at
``p_s`` (default 1 %).

- :mod:`repro.sim.events` — a small deterministic event loop.
- :mod:`repro.sim.loss` — Bernoulli and two-state Markov loss processes,
  with both stepwise and vectorised sampling.
- :mod:`repro.sim.topology` — the source/receiver-link topology and the
  paper's default parameterisation.
"""

from repro.sim.events import EventLoop
from repro.sim.loss import BernoulliLoss, TwoStateMarkovLoss
from repro.sim.topology import (
    LossParameters,
    MulticastTopology,
    build_paper_topology,
)

__all__ = [
    "BernoulliLoss",
    "EventLoop",
    "LossParameters",
    "MulticastTopology",
    "TwoStateMarkovLoss",
    "build_paper_topology",
]
