"""Packet-loss processes.

Two models:

- :class:`BernoulliLoss` — independent loss at rate ``p``; used to
  validate the analytic models (which assume independence).
- :class:`TwoStateMarkovLoss` — the paper's burst-loss model: a
  continuous-time two-state (Gilbert) chain with exponentially
  distributed sojourns, mean loss-burst ``burst_scale * p`` ms and mean
  loss-free period ``burst_scale * (1 - p)`` ms (``burst_scale`` = 100 ms
  in the paper), so the stationary loss rate is exactly ``p``.

Both expose the same two interfaces:

- ``sample_at(times, rng)`` — vectorised: loss indicator at each of an
  increasing array of times (exact CTMC skeleton sampling, no
  discretisation error);
- ``stepper(rng)`` — an iterator-style object for event-driven use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.util.validation import check_positive, check_probability

_MS = 1e-3


class BernoulliLoss:
    """Independent loss at rate ``p``."""

    def __init__(self, p):
        self.p = check_probability("p", p)

    def sample_at(self, times, rng):
        """Loss indicators (True = lost) at each time (i.i.d.)."""
        times = np.asarray(times, dtype=float)
        return rng.random(times.shape) < self.p

    def stepper(self, rng):
        return _BernoulliStepper(self.p, rng)

    def __repr__(self):
        return "BernoulliLoss(p=%g)" % self.p


class _BernoulliStepper:
    def __init__(self, p, rng):
        self._p = p
        self._rng = rng

    def is_lost(self, time):
        return bool(self._rng.random() < self._p)


class TwoStateMarkovLoss:
    """Continuous-time two-state burst-loss chain.

    State ``LOSS`` drops every packet; state ``GOOD`` passes every
    packet.  Sojourn times are exponential with means
    ``burst_scale * p`` (loss) and ``burst_scale * (1 - p)`` (good),
    where ``burst_scale`` defaults to the paper's 100 ms.
    """

    def __init__(self, p, burst_scale_ms=100.0):
        self.p = check_probability("p", p)
        check_positive("burst_scale_ms", burst_scale_ms)
        self.burst_scale_ms = float(burst_scale_ms)
        if self.p in (0.0, 1.0):
            # Degenerate chains: permanently good / permanently lost.
            self._rate_leave_loss = None
            self._rate_leave_good = None
        else:
            mean_loss = self.burst_scale_ms * self.p * _MS
            mean_good = self.burst_scale_ms * (1.0 - self.p) * _MS
            self._rate_leave_loss = 1.0 / mean_loss
            self._rate_leave_good = 1.0 / mean_good

    @property
    def stationary_loss_rate(self):
        """Long-run fraction of time in the LOSS state (equals ``p``)."""
        return self.p

    def _skeleton_probabilities(self, gaps):
        """P(LOSS at t+gap | state at t) for each gap, exact for a CTMC.

        Returns ``(p_loss_given_good, p_loss_given_loss)`` arrays.
        """
        a = self._rate_leave_good  # good -> loss rate
        b = self._rate_leave_loss  # loss -> good rate
        total = a + b
        pi_loss = a / total
        decay = np.exp(-total * gaps)
        p_loss_given_good = pi_loss * (1.0 - decay)
        p_loss_given_loss = pi_loss + (1.0 - pi_loss) * decay
        return p_loss_given_good, p_loss_given_loss

    def sample_at(self, times, rng):
        """Exact loss indicators at an increasing array of times.

        The initial state is drawn from the stationary distribution, so
        every call represents an independent link history.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1:
            raise SimulationError("times must be one-dimensional")
        if times.size == 0:
            return np.zeros(0, dtype=bool)
        if np.any(np.diff(times) < 0):
            raise SimulationError("times must be non-decreasing")
        if self.p == 0.0:
            return np.zeros(times.size, dtype=bool)
        if self.p == 1.0:
            return np.ones(times.size, dtype=bool)
        gaps = np.diff(times)
        p_given_good, p_given_loss = self._skeleton_probabilities(gaps)
        draws = rng.random(times.size)
        lost = np.empty(times.size, dtype=bool)
        lost[0] = draws[0] < self.p
        for i in range(1, times.size):
            threshold = p_given_loss[i - 1] if lost[i - 1] else p_given_good[i - 1]
            lost[i] = draws[i] < threshold
        return lost

    def sample_matrix(self, times, n_chains, rng):
        """``n_chains`` independent histories at the same time grid.

        Vectorised across chains — this is the fleet simulator's hot
        path (one chain per user).  Returns (n_chains, len(times)) bool.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.zeros((n_chains, 0), dtype=bool)
        if np.any(np.diff(times) < 0):
            raise SimulationError("times must be non-decreasing")
        if self.p == 0.0:
            return np.zeros((n_chains, times.size), dtype=bool)
        if self.p == 1.0:
            return np.ones((n_chains, times.size), dtype=bool)
        gaps = np.diff(times)
        p_given_good, p_given_loss = self._skeleton_probabilities(gaps)
        draws = rng.random((n_chains, times.size))
        lost = np.empty((n_chains, times.size), dtype=bool)
        lost[:, 0] = draws[:, 0] < self.p
        for i in range(1, times.size):
            threshold = np.where(
                lost[:, i - 1], p_given_loss[i - 1], p_given_good[i - 1]
            )
            lost[:, i] = draws[:, i] < threshold
        return lost

    def stepper(self, rng):
        """Event-driven sampler holding explicit sojourn state."""
        return _MarkovStepper(self, rng)

    def __repr__(self):
        return "TwoStateMarkovLoss(p=%g, burst_scale_ms=%g)" % (
            self.p,
            self.burst_scale_ms,
        )


class _MarkovStepper:
    """Walks one chain forward through strictly increasing query times."""

    def __init__(self, model, rng):
        self._model = model
        self._rng = rng
        self._last_time = None
        if model.p == 0.0:
            self._lost = False
        elif model.p == 1.0:
            self._lost = True
        else:
            self._lost = bool(rng.random() < model.p)

    def is_lost(self, time):
        """Loss indicator at ``time`` (queries must be non-decreasing)."""
        model = self._model
        if model.p in (0.0, 1.0):
            return self._lost
        if self._last_time is not None:
            if time < self._last_time:
                raise SimulationError("loss queries must be non-decreasing")
            gap = time - self._last_time
            p_good, p_loss = model._skeleton_probabilities(
                np.asarray([gap])
            )
            threshold = p_loss[0] if self._lost else p_good[0]
            self._lost = bool(self._rng.random() < threshold)
        self._last_time = time
        return self._lost
