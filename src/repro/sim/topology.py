"""The paper's simulation topology and default loss parameters.

One source link (key server -> backbone, loss rate ``p_s``), a loss-free
backbone, and one receiver link per user.  A fraction ``alpha`` of the
users are high-loss (``p_h``); the rest are low-loss (``p_l``).  Every
link runs an independent :class:`~repro.sim.loss.TwoStateMarkovLoss`
chain (or Bernoulli, for analytic cross-checks).

Paper defaults: N = 4096, d = 4, J = 0, L = N/d, alpha = 20 %,
p_h = 20 %, p_l = 2 %, p_s = 1 %, sending rate 10 packets/second
(100 ms interval), ENC packet length 1027 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.loss import BernoulliLoss, TwoStateMarkovLoss
from repro.util.rng import RandomSource
from repro.util.validation import (
    check_positive,
    check_probability,
)


@dataclass(frozen=True)
class LossParameters:
    """Loss-environment knobs, with the paper's defaults."""

    alpha: float = 0.20  # fraction of high-loss users
    p_high: float = 0.20
    p_low: float = 0.02
    p_source: float = 0.01
    burst_scale_ms: float = 100.0
    bursty: bool = True  # False -> independent (Bernoulli) loss

    def __post_init__(self):
        check_probability("alpha", self.alpha)
        check_probability("p_high", self.p_high)
        check_probability("p_low", self.p_low)
        check_probability("p_source", self.p_source)
        check_positive("burst_scale_ms", self.burst_scale_ms)

    def make_process(self, p):
        """A loss process at rate ``p`` under these settings."""
        if self.bursty:
            return TwoStateMarkovLoss(p, burst_scale_ms=self.burst_scale_ms)
        return BernoulliLoss(p)


class MulticastTopology:
    """Source link + backbone + per-user receiver links.

    The high-loss subset is the first ``round(alpha * n_users)`` user
    indices; callers that need a random subset should shuffle their own
    user ordering (the protocol is symmetric in user index, so metrics
    are unaffected).
    """

    def __init__(self, n_users, params=None, random_source=None):
        check_positive("n_users", n_users, integral=True)
        self.n_users = int(n_users)
        self.params = params or LossParameters()
        self._random_source = random_source or RandomSource()
        self.n_high = int(round(self.params.alpha * self.n_users))
        self._source_process = self.params.make_process(self.params.p_source)
        self._high_process = self.params.make_process(self.params.p_high)
        self._low_process = self.params.make_process(self.params.p_low)

    def is_high_loss(self, user_index):
        """Whether ``user_index`` sits on a high-loss receiver link."""
        if not 0 <= user_index < self.n_users:
            raise SimulationError("user index %r out of range" % user_index)
        return user_index < self.n_high

    def user_loss_rate(self, user_index):
        """The receiver-link loss rate of ``user_index``."""
        return (
            self.params.p_high
            if self.is_high_loss(user_index)
            else self.params.p_low
        )

    def multicast_reception(self, times, rng=None):
        """Simulate one multicast burst of packets sent at ``times``.

        Returns a boolean (n_users, n_packets) matrix: True where the
        user *received* the packet.  A packet lost on the source link is
        lost for every user; receiver links drop independently.
        """
        times = np.asarray(times, dtype=float)
        if rng is None:
            rng = self._random_source.generator()
        source_lost = self._sample_one(self._source_process, times, rng)
        received = np.empty((self.n_users, times.size), dtype=bool)
        if self.n_high:
            received[: self.n_high] = ~self._sample_block(
                self._high_process, times, self.n_high, rng
            )
        if self.n_high < self.n_users:
            received[self.n_high :] = ~self._sample_block(
                self._low_process, times, self.n_users - self.n_high, rng
            )
        received[:, source_lost] = False
        return received

    def unicast_reception(self, user_index, times, rng=None):
        """Loss for unicast packets to one user (source + receiver link)."""
        times = np.asarray(times, dtype=float)
        if rng is None:
            rng = self._random_source.generator()
        process = (
            self._high_process
            if self.is_high_loss(user_index)
            else self._low_process
        )
        source_lost = self._sample_one(self._source_process, times, rng)
        receiver_lost = self._sample_one(process, times, rng)
        return ~(source_lost | receiver_lost)

    @staticmethod
    def _sample_one(process, times, rng):
        return process.sample_at(times, rng)

    @staticmethod
    def _sample_block(process, times, n_chains, rng):
        if hasattr(process, "sample_matrix"):
            return process.sample_matrix(times, n_chains, rng)
        return np.stack(
            [process.sample_at(times, rng) for _ in range(n_chains)]
        )

    def __repr__(self):
        return (
            "MulticastTopology(n_users=%d, alpha=%g, p_h=%g, p_l=%g, p_s=%g)"
            % (
                self.n_users,
                self.params.alpha,
                self.params.p_high,
                self.params.p_low,
                self.params.p_source,
            )
        )


def build_paper_topology(
    n_users=4096,
    alpha=0.20,
    p_high=0.20,
    p_low=0.02,
    p_source=0.01,
    bursty=True,
    seed=None,
):
    """The default experimental topology, one call."""
    params = LossParameters(
        alpha=alpha,
        p_high=p_high,
        p_low=p_low,
        p_source=p_source,
        bursty=bursty,
    )
    source = RandomSource(seed) if seed is not None else RandomSource()
    return MulticastTopology(n_users, params=params, random_source=source)
