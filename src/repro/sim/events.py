"""A small deterministic discrete-event loop.

Events fire in (time, sequence) order, so simultaneous events run in
scheduling order and runs are exactly reproducible.  The transport
session uses it for packet departures, arrivals, and round timeouts.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SimulationError
from repro.util.validation import check_non_negative


class EventLoop:
    """Priority-queue event loop with a monotone clock."""

    def __init__(self):
        self._queue = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self):
        """Current simulation time (seconds)."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` seconds from now."""
        check_non_negative("delay", delay)
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                "cannot schedule into the past (%r < %r)" % (when, self._now)
            )
        heapq.heappush(
            self._queue, (float(when), next(self._counter), callback, args)
        )

    @property
    def pending(self):
        """Number of events not yet dispatched."""
        return len(self._queue)

    def run(self, until=None):
        """Dispatch events in order; stop when empty or past ``until``.

        Returns the number of events dispatched.
        """
        if self._running:
            raise SimulationError("event loop is already running")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                when, _, callback, args = self._queue[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._queue)
                self._now = when
                callback(*args)
                dispatched += 1
            if until is not None and self._now < until:
                self._now = float(until)
        finally:
            self._running = False
        return dispatched

    def step(self):
        """Dispatch exactly one event; returns False when none remain."""
        if not self._queue:
            return False
        when, _, callback, args = heapq.heappop(self._queue)
        self._now = when
        callback(*args)
        return True
