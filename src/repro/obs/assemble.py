"""Cross-process trace assembly: per-member recovery timelines.

A fleet run with ``--obs-dir`` leaves one JSONL event stream per
process: the server's (``server.jsonl``, which also carries in-process
clients' milestones) and one per worker (``worker-NN.jsonl``).  Each
stream's ``mono`` timestamps come from *that process's* monotonic
clock — wall-clock comparisons across streams would be garbage.  The
assembler therefore skew-corrects every stream against the **announce
barrier**: the server's ``wire_announce`` event records the barrier's
completion on the server clock, every client's ``trace_announce``
records when it saw (and acked) the same ANNOUNCE on its own clock, and
the per-stream offset is the median of those pairings.  After
correction, all milestones live on one approximate server timeline
(within barrier-ack jitter, microseconds on loopback).

The assembly's **digest** covers only the deterministic facts — which
member reached which milestones in which interval under which trace id,
with what recovery round and drop count — never clocks or stream
names, so the same ``(plan, seed)`` digests identically whether the
clients ran in-process or sharded over workers, on any machine.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.errors import ObsError
from repro.obs.events import read_events

#: milestone names in timeline order
MILESTONES = ("announce", "first_data", "decoded", "key_decrypted")

_MILESTONE_OF_KIND = {
    "trace_announce": "announce",
    "trace_first_data": "first_data",
    "trace_decoded": "decoded",
    "trace_key_decrypted": "key_decrypted",
}


def _median(values):
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ObsError("median of an empty sequence")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _percentile(values, q):
    """Linear-interpolation percentile (numpy's default), stdlib-only."""
    ordered = sorted(values)
    if not ordered:
        raise ObsError("percentile of an empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass
class Timeline:
    """One member's end-to-end recovery inside one interval."""

    interval: int
    member_index: int
    member: str
    trace: str
    cohort: str
    served: bool
    stream: str
    #: milestone name -> skew-corrected server-timeline seconds
    milestones: dict = field(default_factory=dict)
    recovery_round: object = None
    dropped: object = None
    latency_ms: object = None

    @property
    def complete(self):
        """Did the member's trace reach every milestone it owes?

        Every member owes ``announce``; a *served* member additionally
        owes ``decoded`` and ``key_decrypted`` (``first_data`` is owed
        too unless the whole first round was absorbed by injected loss
        and recovery came via unicast — so it is not required).
        """
        if "announce" not in self.milestones:
            return False
        if not self.served:
            return True
        return (
            "decoded" in self.milestones
            and "key_decrypted" in self.milestones
        )

    def canonical(self):
        """The digest projection: deterministic facts only, no clocks."""
        return {
            "interval": self.interval,
            "member_index": self.member_index,
            "member": self.member,
            "trace": self.trace,
            "cohort": self.cohort,
            "served": self.served,
            "milestones": sorted(self.milestones),
            "recovery_round": self.recovery_round,
            "dropped": self.dropped,
        }


def timeline_digest(timelines):
    """SHA-256 over the canonical timelines (the determinism pin)."""
    data = json.dumps(
        sorted(
            (t.canonical() for t in timelines),
            key=lambda c: (c["interval"], c["member_index"]),
        ),
        sort_keys=True,
    ).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


@dataclass
class TraceAssembly:
    """The merged, skew-corrected view of one fleet run's streams."""

    timelines: list
    #: stream name -> applied clock offset (seconds, server − stream)
    offsets: dict
    #: interval -> the server's announce-barrier facts
    announces: dict
    streams: list

    def complete(self):
        return [t for t in self.timelines if t.complete]

    def incomplete(self):
        return [t for t in self.timelines if not t.complete]

    def digest(self):
        return timeline_digest(self.timelines)

    def completeness(self):
        """Per interval: expected members vs seen vs complete traces."""
        out = {}
        for interval, announce in sorted(self.announces.items()):
            seen = [t for t in self.timelines if t.interval == interval]
            out[interval] = {
                "expected": announce["members"],
                "seen": len(seen),
                "complete": sum(1 for t in seen if t.complete),
            }
        return out

    def recovery_cdf(self, points=(10, 25, 50, 75, 90, 95, 99)):
        """Client-side recovery-latency percentiles per loss cohort.

        Latencies are each client's *own* announce→decode measurement
        (one process, one clock — no skew correction involved), i.e.
        the member-perceived recovery latency the paper's CDFs plot.
        """
        by_cohort = {}
        for t in self.timelines:
            if t.served and t.latency_ms is not None:
                by_cohort.setdefault(t.cohort, []).append(t.latency_ms)
        cdf = {}
        for cohort, values in sorted(by_cohort.items()):
            cdf[cohort] = {
                "count": len(values),
                "percentiles_ms": {
                    "p%d" % q: round(_percentile(values, q), 3)
                    for q in points
                },
            }
        return cdf


def load_trace_dir(path):
    """Read every ``*.jsonl`` stream in a trace directory.

    Returns ``{stream name: [events]}`` (names are basenames, sorted).
    """
    pattern = os.path.join(os.fspath(path), "*.jsonl")
    files = sorted(glob.glob(pattern))
    if not files:
        raise ObsError("no .jsonl event streams under %r" % (path,))
    return {
        os.path.basename(name): read_events(name) for name in files
    }


def assemble(streams):
    """Merge per-process event streams into a :class:`TraceAssembly`.

    ``streams`` is ``{stream name: [event records]}`` as loaded by
    :func:`load_trace_dir`.  Exactly one stream (the server's) must
    carry the ``wire_announce`` events; client milestones may live in
    any stream, including the server's (in-process clients).
    """
    announces = {}
    for events in streams.values():
        for event in events:
            if event["kind"] != "wire_announce":
                continue
            detail = event["detail"]
            if "mono" not in detail:
                continue  # pre-tracing stream: nothing to anchor on
            announces[int(detail["interval"])] = {
                "trace": detail.get("trace"),
                "mono": float(detail["mono"]),
                "members": int(detail["members"]),
                "served": int(detail["served"]),
            }
    if not announces:
        raise ObsError(
            "no wire_announce barrier events found in any stream — "
            "was the run made with tracing enabled (--obs-dir)?"
        )

    # Per-stream clock offset: median over every (interval, announce)
    # pairing of  server-barrier-mono − client-announce-mono.
    offsets = {}
    grouped = {}  # (interval, member_index) -> (stream, milestone rows)
    for stream, events in sorted(streams.items()):
        samples = []
        for event in events:
            milestone = _MILESTONE_OF_KIND.get(event["kind"])
            if milestone is None:
                continue
            detail = event["detail"]
            interval = int(detail["interval"])
            if milestone == "announce" and interval in announces:
                samples.append(
                    announces[interval]["mono"] - float(detail["mono"])
                )
            key = (interval, int(detail["member_index"]))
            grouped.setdefault(key, (stream, []))[1].append(
                (milestone, detail)
            )
        if samples:
            offsets[stream] = round(_median(samples), 6)

    timelines = []
    for (interval, member_index), (stream, rows) in sorted(
        grouped.items()
    ):
        offset = offsets.get(stream, 0.0)
        first = rows[0][1]
        timeline = Timeline(
            interval=interval,
            member_index=member_index,
            member=first.get("member", "member-%04d" % member_index),
            trace=first.get("trace"),
            cohort=first.get("cohort"),
            served=bool(first.get("served")),
            stream=stream,
        )
        for milestone, detail in rows:
            timeline.milestones[milestone] = round(
                float(detail["mono"]) + offset, 6
            )
            if milestone == "decoded":
                timeline.recovery_round = detail.get("recovery_round")
                timeline.dropped = detail.get("dropped")
                timeline.latency_ms = detail.get("latency_ms")
        timelines.append(timeline)

    return TraceAssembly(
        timelines=timelines,
        offsets=offsets,
        announces=announces,
        streams=sorted(streams),
    )
