"""Service-level objectives with multi-window burn-rate gauges.

Two objectives cover the daemon's user-facing promises, straight from
the paper's framing of reliable rekeying:

- ``deadline`` — the fraction of intervals delivered inside the rekey
  deadline (decision ``in-deadline`` or an empty interval);
- ``recovery`` — the fraction of per-member recoveries that landed
  within the deadline's round budget.

Each objective tracks its good/total counts over several sliding time
windows and exposes the **burn rate** per window: the observed error
rate divided by the error budget (``1 - target``).  Burn 1.0 means the
budget is being consumed exactly at the rate that exhausts it at the
window's horizon; the classic multi-window alerting rule pages on a
*short* window burning fast while a *long* window confirms it is not a
blip.  The daemon publishes ``slo_burn_rate{slo,window}`` gauges onto
``/metrics`` every interval and emits one ``slo_burn`` event per
objective, which ``obs-report`` summarizes.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.errors import ObsError

#: (seconds, label) sliding windows, shortest first.  Sized for the
#: daemon's interval cadence rather than SRE wall-clock months: the
#: short window trips fast, the long one confirms.
DEFAULT_WINDOWS = ((60.0, "1m"), (300.0, "5m"), (1800.0, "30m"))


@dataclass(frozen=True)
class Objective:
    """One SLO: a name and a success-ratio target in (0, 1)."""

    name: str
    target: float
    description: str = ""

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ObsError(
                "SLO target must be in (0, 1), got %r" % (self.target,)
            )

    @property
    def error_budget(self):
        return 1.0 - self.target


class SLO:
    """Sliding-window good/total bookkeeping for one objective."""

    def __init__(self, objective, windows=DEFAULT_WINDOWS,
                 clock=time.monotonic):
        self.objective = objective
        self.windows = tuple(
            (float(seconds), str(label)) for seconds, label in windows
        )
        if not self.windows:
            raise ObsError("an SLO needs at least one window")
        self.clock = clock
        self._samples = deque()  # (t, good_count, total_count)
        self.good_total = 0
        self.total = 0

    @property
    def horizon(self):
        return max(seconds for seconds, _ in self.windows)

    def record(self, good, count=1, now=None):
        """Fold ``count`` outcomes (all good or all bad) into the window."""
        if count < 1:
            return
        now = self.clock() if now is None else float(now)
        good_count = count if good else 0
        self._samples.append((now, good_count, count))
        self.good_total += good_count
        self.total += count
        self._trim(now)

    def _trim(self, now):
        horizon = self.horizon
        while self._samples and now - self._samples[0][0] > horizon:
            self._samples.popleft()

    def error_rate(self, window_seconds, now=None):
        """Observed error fraction over the trailing window (0 if idle)."""
        now = self.clock() if now is None else float(now)
        good = total = 0
        for t, good_count, count in self._samples:
            if now - t <= window_seconds:
                good += good_count
                total += count
        if total == 0:
            return 0.0
        return (total - good) / total

    def burn_rate(self, window_seconds, now=None):
        """Error rate over the window, in error-budget multiples."""
        return (
            self.error_rate(window_seconds, now=now)
            / self.objective.error_budget
        )

    def burn_rates(self, now=None):
        """``{window label: burn rate}`` across every window."""
        now = self.clock() if now is None else float(now)
        return {
            label: round(self.burn_rate(seconds, now=now), 4)
            for seconds, label in self.windows
        }


class SLOTracker:
    """The daemon's SLO set and its ``/metrics`` publication.

    ``record_deadline``/``record_recovery`` are fed by the daemon after
    each interval; :meth:`publish` pushes one ``slo_burn_rate`` gauge
    per (objective, window) into the recorder's registry and emits one
    ``slo_burn`` event per objective.
    """

    def __init__(self, clock=time.monotonic, windows=DEFAULT_WINDOWS,
                 deadline_target=0.99, recovery_target=0.95):
        self.windows = windows
        self.slos = {
            "deadline": SLO(
                Objective(
                    "deadline",
                    deadline_target,
                    "intervals delivered inside the rekey deadline",
                ),
                windows=windows,
                clock=clock,
            ),
            "recovery": SLO(
                Objective(
                    "recovery",
                    recovery_target,
                    "member recoveries within the deadline's rounds",
                ),
                windows=windows,
                clock=clock,
            ),
        }

    def record_deadline(self, good):
        self.slos["deadline"].record(bool(good))

    def record_recovery(self, good, count=1):
        self.slos["recovery"].record(bool(good), count=count)

    def publish(self, obs, interval):
        """Push gauges + events for every objective; returns the rates."""
        published = {}
        for name, slo in sorted(self.slos.items()):
            rates = slo.burn_rates()
            published[name] = rates
            for label, burn in rates.items():
                obs.gauge("slo_burn_rate", burn, slo=name, window=label)
            obs.emit(
                "slo_burn",
                slo=name,
                target=slo.objective.target,
                interval=int(interval),
                good=slo.good_total,
                total=slo.total,
                windows=rates,
            )
        return published

    def snapshot(self):
        """Health-surface view: per objective, target + current burns."""
        return {
            name: {
                "target": slo.objective.target,
                "good": slo.good_total,
                "total": slo.total,
                "burn": slo.burn_rates(),
            }
            for name, slo in sorted(self.slos.items())
        }
