"""Spans, timers, and the recorder every subsystem writes into.

Two recorders share one duck-typed surface:

- :data:`NULL` (a :class:`NullRecorder`) — the default everywhere.  Its
  ``span()`` hands back one shared no-op context manager and every other
  method is a ``pass``; with observability off, instrumented code pays
  one attribute load and (on guarded hot paths) one truthiness test.
- :class:`Recorder` — the real thing: nestable spans on a thread-local
  stack, span durations folded into a :class:`~repro.obs.metrics`
  histogram per span name, counters/gauges/ad-hoc histograms, and
  (optionally) every span and event forwarded to an
  :class:`~repro.obs.events.EventBus`.

Spans use the monotonic :func:`time.perf_counter` clock — wall-clock
steps never corrupt a duration.  A child span inherits its parent's
fields, so ``span("daemon.interval", interval=7)`` stamps ``interval=7``
on every ``marking.apply`` / ``fec.encode`` span that closes inside it;
the ``obs-report`` CLI leans on exactly that to attribute time.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry


class _NullSpan:
    """The shared do-nothing span (one instance, reused)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def note(self, **fields):
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Zero-overhead recorder used when observability is disabled."""

    enabled = False
    bus = None
    metrics = None

    def span(self, name, **fields):
        return _NULL_SPAN

    def count(self, name, by=1, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, buckets=None, **labels):
        pass

    def emit(self, kind, **detail):
        pass


#: The module-wide disabled recorder every instrumented default points at.
NULL = NullRecorder()


class Span:
    """One timed section; created by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "name", "fields", "_start")

    def __init__(self, recorder, name, fields):
        self._recorder = recorder
        self.name = name
        self.fields = fields
        self._start = None

    def note(self, **fields):
        """Attach fields to a live span (they reach the span event)."""
        self.fields.update(fields)

    def __enter__(self):
        stack = self._recorder._stack()
        parent = stack[-1] if stack else None
        if parent is not None and parent.fields:
            merged = dict(parent.fields)
            merged.update(self.fields)
            self.fields = merged
        stack.append(self)
        self._start = self._recorder.clock()
        return self

    def __exit__(self, *exc_info):
        elapsed = self._recorder.clock() - self._start
        stack = self._recorder._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._recorder._finish_span(self, elapsed)
        return False


class Recorder:
    """The enabled recorder: metrics registry + optional event bus."""

    enabled = True

    def __init__(self, bus=None, clock=time.perf_counter):
        self.bus = bus
        self.clock = clock
        self.metrics = MetricsRegistry()
        #: optional span tap (a :class:`repro.obs.trace.PhaseProfiler`);
        #: the daemon installs one per interval to price pipeline phases
        self.profiler = None
        self._local = threading.local()

    def _stack(self):
        try:
            return self._local.spans
        except AttributeError:
            self._local.spans = []
            return self._local.spans

    def current_span(self):
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name, **fields):
        """A context manager timing one named section."""
        return Span(self, name, fields)

    def _finish_span(self, span, elapsed):
        ms = elapsed * 1e3
        self.metrics.histogram(
            "span_ms",
            help="Duration of instrumented spans by name.",
            span=span.name,
        ).observe(ms)
        profiler = self.profiler
        if profiler is not None:
            profiler.on_span(span.name, ms)
        if self.bus is not None:
            self.bus.emit(
                "span", name=span.name, ms=round(ms, 4), **span.fields
            )

    # -- instruments ----------------------------------------------------

    def count(self, name, by=1, **labels):
        self.metrics.counter(name, **labels).inc(by)

    def gauge(self, name, value, **labels):
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name, value, buckets=None, **labels):
        self.metrics.histogram(name, buckets=buckets, **labels).observe(
            value
        )

    # -- events ---------------------------------------------------------

    def emit(self, kind, **detail):
        """Forward an event to the bus (a no-op without one)."""
        if self.bus is not None:
            self.bus.emit(kind, **detail)
