"""Unified observability: spans, structured events, exposition.

One layer replaces three fragmented surfaces (session-only traces, the
in-memory health ledger, out-of-band ``perf_counter`` timing):

- :mod:`repro.obs.recorder` — the span/timer/counter API.  Everything
  instrumentable defaults to :data:`NULL` (a shared no-op recorder), so
  production hot paths pay nothing until a real :class:`Recorder` is
  injected;
- :mod:`repro.obs.events` — the versioned structured event bus
  (:class:`EventBus`), JSONL export and validation; subsumes the session
  trace kinds and adds marking/FEC/WAL/degradation/recovery events;
- :mod:`repro.obs.metrics` — counter/gauge/histogram instruments;
- :mod:`repro.obs.prometheus` — text-format exposition + parser;
- :mod:`repro.obs.httpd` — the ``/healthz`` + ``/metrics`` endpoint
  (``repro serve --metrics-port``);
- :mod:`repro.obs.report` — the ``repro obs-report`` analysis of an
  ``--obs-file`` JSONL (time breakdown + headline paper metrics).

See ``docs/observability.md`` for the span taxonomy and event schema.
"""

from repro.obs.events import (
    SCHEMA_VERSION,
    EventBus,
    is_registered,
    read_events,
    register_event_kind,
    registered_kinds,
    validate_jsonl,
    validate_record,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    ROUNDS_BUCKETS,
    MetricsRegistry,
)
from repro.obs.recorder import NULL, NullRecorder, Recorder

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "EventBus",
    "MetricsRegistry",
    "NULL",
    "NullRecorder",
    "ROUNDS_BUCKETS",
    "Recorder",
    "SCHEMA_VERSION",
    "is_registered",
    "read_events",
    "register_event_kind",
    "registered_kinds",
    "validate_jsonl",
    "validate_record",
]
