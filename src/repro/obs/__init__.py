"""Unified observability: spans, structured events, exposition.

One layer replaces three fragmented surfaces (session-only traces, the
in-memory health ledger, out-of-band ``perf_counter`` timing):

- :mod:`repro.obs.recorder` — the span/timer/counter API.  Everything
  instrumentable defaults to :data:`NULL` (a shared no-op recorder), so
  production hot paths pay nothing until a real :class:`Recorder` is
  injected;
- :mod:`repro.obs.events` — the versioned structured event bus
  (:class:`EventBus`), JSONL export and validation; subsumes the session
  trace kinds and adds marking/FEC/WAL/degradation/recovery events;
- :mod:`repro.obs.metrics` — counter/gauge/histogram instruments;
- :mod:`repro.obs.prometheus` — text-format exposition + parser;
- :mod:`repro.obs.httpd` — the ``/healthz`` + ``/metrics`` endpoint
  (``repro serve --metrics-port``);
- :mod:`repro.obs.trace` — interval-scoped distributed tracing (one
  deterministic trace id per rekey interval, propagated across
  processes in the wire control payloads) and the per-phase interval
  profiler;
- :mod:`repro.obs.slo` — service-level objectives with multi-window
  burn-rate gauges;
- :mod:`repro.obs.assemble` — merges per-process event streams into
  skew-corrected per-member recovery timelines;
- :mod:`repro.obs.report` — the ``repro obs-report`` analysis of obs
  JSONL streams (time breakdown, headline paper metrics, phase
  profile, SLO burn, and ``--trace-dir`` timelines).

See ``docs/observability.md`` for the span taxonomy and event schema.
"""

from repro.obs.assemble import (
    MILESTONES,
    Timeline,
    TraceAssembly,
    assemble,
    load_trace_dir,
    timeline_digest,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    EventBus,
    is_registered,
    read_events,
    register_event_kind,
    registered_kinds,
    validate_jsonl,
    validate_record,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    ROUNDS_BUCKETS,
    MetricsRegistry,
)
from repro.obs.recorder import NULL, NullRecorder, Recorder
from repro.obs.slo import DEFAULT_WINDOWS, SLO, Objective, SLOTracker
from repro.obs.trace import (
    PHASES,
    TRACE_NONE,
    PhaseProfiler,
    TraceContext,
    current_trace,
    current_trace_id,
    format_trace,
    mint_trace_id,
    parse_trace,
    tracing,
)

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_WINDOWS",
    "EventBus",
    "MILESTONES",
    "MetricsRegistry",
    "NULL",
    "NullRecorder",
    "Objective",
    "PHASES",
    "PhaseProfiler",
    "ROUNDS_BUCKETS",
    "Recorder",
    "SCHEMA_VERSION",
    "SLO",
    "SLOTracker",
    "TRACE_NONE",
    "Timeline",
    "TraceAssembly",
    "TraceContext",
    "assemble",
    "current_trace",
    "current_trace_id",
    "format_trace",
    "is_registered",
    "load_trace_dir",
    "mint_trace_id",
    "parse_trace",
    "read_events",
    "register_event_kind",
    "registered_kinds",
    "timeline_digest",
    "tracing",
    "validate_jsonl",
    "validate_record",
]
