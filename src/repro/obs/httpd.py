"""The daemon's scrape surface: ``/healthz`` + ``/metrics`` over stdlib.

:class:`MetricsServer` wraps a :class:`http.server.ThreadingHTTPServer`
bound to localhost, serving:

- ``GET /healthz`` — the daemon's probe summary as JSON; HTTP 200 while
  the status is ``ok``, 503 once it degrades (so a liveness probe needs
  no JSON parsing);
- ``GET /metrics`` — the Prometheus text exposition from
  :func:`repro.obs.prometheus.render`;
- anything else — 404.

The server runs on a daemon thread; request handling happens off the
rekey loop, reading the shared ledger/registry without locks (all
updates are GIL-atomic — see :mod:`repro.obs.metrics`).  Port 0 binds an
ephemeral port, exposed as :attr:`MetricsServer.port` — tests and the CI
smoke job rely on that.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.prometheus import CONTENT_TYPE, render


class MetricsServer:
    """Serve scrape endpoints for callables producing the documents."""

    def __init__(self, metrics_text, health_dict, port=0, host="127.0.0.1"):
        """``metrics_text()`` returns the exposition text;
        ``health_dict()`` returns the probe dict (``status`` key)."""
        self._metrics_text = metrics_text
        self._health_dict = health_dict
        self._thread = None

        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # keep scrapes off stderr
                pass

            def _send(self, status, content_type, body):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = server._metrics_text().encode("utf-8")
                        self._send(200, CONTENT_TYPE, body)
                    elif path == "/healthz":
                        health = server._health_dict()
                        status = (
                            200 if health.get("status") == "ok" else 503
                        )
                        body = json.dumps(health, sort_keys=True).encode(
                            "utf-8"
                        )
                        self._send(status, "application/json", body)
                    else:
                        self._send(
                            404, "text/plain; charset=utf-8",
                            b"not found; try /healthz or /metrics\n",
                        )
                except Exception as error:  # scrape must never kill us
                    self._send(
                        500, "text/plain; charset=utf-8",
                        ("error: %s\n" % error).encode("utf-8"),
                    )

        self.httpd = ThreadingHTTPServer((host, int(port)), Handler)
        self.httpd.daemon_threads = True
        self.host = host
        self.port = self.httpd.server_address[1]

    @classmethod
    def for_daemon(cls, daemon, port=0, host="127.0.0.1"):
        """Scrape surface for a :class:`~repro.service.daemon.RekeyDaemon`."""
        registry = daemon.obs.metrics if daemon.obs.enabled else None
        return cls(
            metrics_text=lambda: render(
                ledger=daemon.metrics,
                registry=registry,
                health=daemon.health(),
            ),
            health_dict=daemon.health,
            port=port,
            host=host,
        )

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def start(self):
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join(timeout=10.0)
            self._thread = None
        self.httpd.server_close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
