"""``python -m repro obs-report`` — analyse obs JSONL event streams.

The report answers its questions from the event stream alone (no
ledger, no daemon):

1. **Headline paper metrics** — the ρ trajectory, total first-round
   NACKs, and the worst per-interval recovery p99 — reproduced from the
   ``interval_complete`` events, which embed the full
   :class:`~repro.service.health.IntervalMetrics` record.
2. **Where does the time go** — per interval, wall milliseconds split by
   pipeline stage (marking vs. message build/encrypt vs. delivery vs.
   snapshot), reconstructed from ``span`` events via the interval field
   child spans inherit from the ``daemon.interval`` root span; plus the
   daemon's own ``phase_profile`` attribution when tracing is on.
3. **SLO burn** — the multi-window burn-rate trajectory from the
   ``slo_burn`` events, last and worst burn per window.
4. **Distributed traces** — with ``--trace-dir``, the skew-corrected
   per-member recovery timelines and the per-cohort client-side
   recovery-latency CDF (:mod:`repro.obs.assemble`).

``fec`` time (encode + decode spans) is reported as a nested column: it
overlaps ``build``/``deliver``, so it is shown for attribution, not
summed into the total.

Multiple inputs (repeated ``--obs-file``, positional paths, or whole
directories of ``*.jsonl`` streams) are merged by the envelope
timestamp before summarising.
"""

from __future__ import annotations

import glob
import math
import os

from repro.errors import ObsError
from repro.obs.events import (
    CHAOS_EVENT_KINDS,
    HA_EVENT_KINDS,
    WIRE_CHAOS_EVENT_KINDS,
    WIRE_EVENT_KINDS,
    read_events,
)


def expand_paths(paths):
    """Resolve files and directories into a flat list of JSONL files."""
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    out = []
    for path in paths:
        path = os.fspath(path)
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "*.jsonl")))
            if not found:
                raise ObsError("no .jsonl files under %r" % (path,))
            out.extend(found)
        else:
            out.append(path)
    return out


def load_events(paths):
    """Read every stream and merge the records by wall-clock ``t``."""
    events = []
    for path in expand_paths(paths):
        events.extend(read_events(path))
    events.sort(key=lambda e: e["t"])
    return events

#: Top-level children of daemon.interval: disjoint, so they sum.
_TOP_SPANS = {
    "daemon.carry": "carry",
    "daemon.intake": "intake",
    "daemon.rekey": "rekey",
    "daemon.deliver": "deliver",
    "daemon.snapshot": "snapshot",
}

#: Nested spans shown as attribution detail (they overlap the top level).
_NESTED_SPANS = {
    "marking.apply": "marking",
    "message.build": "build",
    "fec.encode": "fec",
    "fec.decode": "fec",
}


def summarize(events):
    """Reduce a validated event list to the report's numbers."""
    intervals = [
        e["detail"] for e in events if e["kind"] == "interval_complete"
    ]
    intervals.sort(key=lambda d: d.get("interval", 0))
    spans = [e["detail"] for e in events if e["kind"] == "span"]

    rho_trajectory = [d.get("rho", 0.0) for d in intervals]
    active = [d for d in intervals if d.get("decision") != "empty"]
    p99s = [
        d["recovery_p99"]
        for d in intervals
        if isinstance(d.get("recovery_p99"), (int, float))
        and not math.isnan(d["recovery_p99"])
    ]
    decisions = {}
    for d in intervals:
        decision = d.get("decision", "?")
        decisions[decision] = decisions.get(decision, 0) + 1

    fault_counts = {}
    fault_timeline = []
    ha_counts = {}
    failover_timeline = []
    wire_counts = {}
    wire_deliveries = []
    survivability = {
        "counts": {},
        "fault_families": {},
        "crashes": [],
        "evictions": [],
        "invariants": {},
    }
    for event in events:
        kind = event["kind"]
        if kind in WIRE_EVENT_KINDS:
            wire_counts[kind] = wire_counts.get(kind, 0) + 1
            if kind == "wire_delivery_complete":
                wire_deliveries.append(dict(event["detail"]))
        if kind in WIRE_CHAOS_EVENT_KINDS:
            counts = survivability["counts"]
            counts[kind] = counts.get(kind, 0) + 1
            detail = event["detail"]
            if kind == "wire_chaos_fault":
                fault = detail.get("fault", "?")
                families = survivability["fault_families"]
                families[fault] = families.get(fault, 0) + 1
            elif kind == "wire_client_crashed":
                survivability["crashes"].append(dict(detail))
            elif kind == "wire_client_evicted":
                survivability["evictions"].append(dict(detail))
            elif kind == "wire_chaos_invariant":
                survivability["invariants"][
                    detail.get("invariant", "?")
                ] = bool(detail.get("passed"))
        if kind in HA_EVENT_KINDS:
            ha_counts[kind] = ha_counts.get(kind, 0) + 1
            failover_timeline.append(
                {"kind": kind, "detail": dict(event["detail"])}
            )
        if kind not in CHAOS_EVENT_KINDS:
            continue
        fault_counts[kind] = fault_counts.get(kind, 0) + 1
        fault_timeline.append(
            {"kind": kind, "detail": dict(event["detail"])}
        )

    breakdown = {}
    span_totals = {}
    for span in spans:
        name = span.get("name", "?")
        ms = float(span.get("ms", 0.0))
        entry = span_totals.setdefault(name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += ms
        interval = span.get("interval")
        if interval is None:
            continue
        row = breakdown.setdefault(
            interval, {"total": 0.0, "fec": 0.0}
        )
        if name == "daemon.interval":
            row["total"] += ms
        elif name in _TOP_SPANS:
            row[_TOP_SPANS[name]] = row.get(_TOP_SPANS[name], 0.0) + ms
        if name in _NESTED_SPANS:
            key = _NESTED_SPANS[name]
            row[key] = row.get(key, 0.0) + ms
    for row in breakdown.values():
        accounted = sum(
            row.get(column, 0.0) for column in _TOP_SPANS.values()
        )
        row["other"] = max(0.0, row["total"] - accounted)

    phase_profiles = [
        e["detail"] for e in events if e["kind"] == "phase_profile"
    ]
    phase_profiles.sort(key=lambda d: d.get("interval", 0))
    slo_last = {}
    slo_worst = {}
    for event in events:
        if event["kind"] != "slo_burn":
            continue
        detail = event["detail"]
        name = detail.get("slo", "?")
        slo_last[name] = dict(detail)
        worst = slo_worst.setdefault(name, {})
        for window, burn in detail.get("windows", {}).items():
            worst[window] = max(worst.get(window, 0.0), burn)

    return {
        "n_events": len(events),
        "n_intervals": len(intervals),
        "intervals": intervals,
        "final_members": (
            intervals[-1].get("n_members", 0) if intervals else 0
        ),
        "rho_trajectory": rho_trajectory,
        "mean_rho": (
            sum(d.get("rho", 0.0) for d in active) / len(active)
            if active else 0.0
        ),
        "first_round_nacks_total": sum(
            d.get("first_round_nacks", 0) for d in intervals
        ),
        "recovery_p99_max": max(p99s) if p99s else None,
        "decisions": decisions,
        "fault_counts": fault_counts,
        "fault_timeline": fault_timeline,
        "ha_counts": ha_counts,
        "failover_timeline": failover_timeline,
        "wire_counts": wire_counts,
        "wire_deliveries": wire_deliveries,
        "wire_survivability": (
            survivability if survivability["counts"] else {}
        ),
        "wire_cohorts": _wire_cohorts(events) if wire_counts else {},
        "time_breakdown": breakdown,
        "span_totals": span_totals,
        "phase_profiles": phase_profiles,
        "slo_last": slo_last,
        "slo_worst": slo_worst,
    }


def _wire_cohorts(events):
    from repro.wire.fleet import cohort_summary

    return cohort_summary(events)


def _fmt_ms(value):
    return "%8.2f" % value


def render_report(paths, trace_dir=None):
    """Report lines for one or more JSONL files or stream directories.

    ``trace_dir`` additionally runs the cross-process trace assembly
    (:mod:`repro.obs.assemble`) over that directory's streams and
    appends the per-member timeline and per-cohort CDF sections.
    """
    files = expand_paths(paths)
    events = load_events(files)
    summary = summarize(events)
    shown = (
        files[0] if len(files) == 1 else "%d streams" % len(files)
    )
    lines = [
        "obs-report: %d event(s), %d interval(s) — %s"
        % (summary["n_events"], summary["n_intervals"], shown),
        "",
        "headline (from interval_complete events alone):",
        "  final members       %d" % summary["final_members"],
        "  rho trajectory      %s"
        % " ".join("%.2f" % rho for rho in summary["rho_trajectory"]),
        "  mean rho            %.3f (non-empty intervals)"
        % summary["mean_rho"],
        "  first-round NACKs   %d (total)"
        % summary["first_round_nacks_total"],
        "  recovery p99        %s"
        % (
            "%.1f rounds (worst interval)" % summary["recovery_p99_max"]
            if summary["recovery_p99_max"] is not None
            else "n/a (aggregate-only backend)"
        ),
        "  decisions           %s"
        % " ".join(
            "%s=%d" % (key, summary["decisions"][key])
            for key in sorted(summary["decisions"])
        ),
    ]
    if summary["failover_timeline"]:
        lines += [
            "",
            "failover timeline (HA events, in order):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, summary["ha_counts"][kind])
                for kind in sorted(summary["ha_counts"])
            ),
        ]
        for entry in summary["failover_timeline"]:
            detail = entry["detail"]
            rendered = " ".join(
                "%s=%s" % (key, detail[key]) for key in sorted(detail)
            )
            lines.append("  %-22s %s" % (entry["kind"], rendered))
    if summary["wire_counts"]:
        deliveries = summary["wire_deliveries"]
        lines += [
            "",
            "wire plane (wire_* events):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, summary["wire_counts"][kind])
                for kind in sorted(summary["wire_counts"])
            ),
        ]
        if deliveries:
            lines.append(
                "  deliveries          %d (rounds %s, unicast total %d, "
                "dropped total %d)"
                % (
                    len(deliveries),
                    " ".join(
                        str(d.get("rounds", "?")) for d in deliveries
                    ),
                    sum(d.get("unicast_served", 0) for d in deliveries),
                    sum(d.get("dropped", 0) for d in deliveries),
                )
            )
        for cohort in sorted(summary["wire_cohorts"]):
            stats = summary["wire_cohorts"][cohort]
            lines.append(
                "  cohort %-5s %5d report(s): recovery p50/p90/p99 "
                "%.1f/%.1f/%.1f ms, rounds %.2f, unicast %d, dropped %d"
                % (
                    cohort,
                    stats["reports"],
                    stats["recovery_ms"]["p50"],
                    stats["recovery_ms"]["p90"],
                    stats["recovery_ms"]["p99"],
                    stats["rounds_mean"],
                    stats["unicast"],
                    stats["dropped"],
                )
            )
    survivability = summary["wire_survivability"]
    if survivability:
        lines += [
            "",
            "wire survivability (wire-chaos events):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, survivability["counts"][kind])
                for kind in sorted(survivability["counts"])
            ),
        ]
        if survivability["fault_families"]:
            lines.append(
                "  datagram faults     %s"
                % " ".join(
                    "%s=%d"
                    % (fault, survivability["fault_families"][fault])
                    for fault in sorted(survivability["fault_families"])
                )
            )
        for entry in survivability["crashes"]:
            lines.append(
                "  crash scheduled     %s at interval %s (round %s)"
                % (
                    entry.get("member", "?"),
                    entry.get("interval", "?"),
                    entry.get("phase", "?"),
                )
            )
        for entry in survivability["evictions"]:
            lines.append(
                "  liveness eviction   %s at interval %s"
                % (
                    entry.get("member", "?"),
                    entry.get("interval", "?"),
                )
            )
        counts = survivability["counts"]
        lines.append(
            "  client resync FSM   resyncs=%d rehomed=%d "
            "stale-epoch-refused=%d register-giveups=%d"
            % (
                counts.get("wire_resync", 0),
                counts.get("wire_rehomed", 0),
                counts.get("wire_stale_epoch", 0),
                counts.get("wire_register_giveup", 0),
            )
        )
        if survivability["invariants"]:
            lines.append(
                "  invariants          %s"
                % " ".join(
                    "%s=%s"
                    % (
                        name,
                        "ok"
                        if survivability["invariants"][name]
                        else "FAIL",
                    )
                    for name in sorted(survivability["invariants"])
                )
            )
    if summary["fault_counts"]:
        lines += [
            "",
            "faults and recoveries (chaos events, in order):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, summary["fault_counts"][kind])
                for kind in sorted(summary["fault_counts"])
            ),
        ]
        for entry in summary["fault_timeline"]:
            detail = entry["detail"]
            rendered = " ".join(
                "%s=%s" % (key, detail[key]) for key in sorted(detail)
            )
            lines.append("  %-22s %s" % (entry["kind"], rendered))
    breakdown = summary["time_breakdown"]
    if breakdown:
        lines += [
            "",
            "where the time goes (ms; fec is nested inside build/deliver):",
            " int |    total |  marking |    build |  deliver | snapshot |"
            "      fec |    other",
        ]
        for interval in sorted(breakdown):
            row = breakdown[interval]
            lines.append(
                "%4s | %s | %s | %s | %s | %s | %s | %s"
                % (
                    interval,
                    _fmt_ms(row.get("total", 0.0)),
                    _fmt_ms(row.get("marking", 0.0)),
                    _fmt_ms(row.get("build", 0.0)),
                    _fmt_ms(row.get("deliver", 0.0)),
                    _fmt_ms(row.get("snapshot", 0.0)),
                    _fmt_ms(row.get("fec", 0.0)),
                    _fmt_ms(row.get("other", 0.0)),
                )
            )
    totals = summary["span_totals"]
    if totals:
        lines += ["", "span totals across the run:"]
        lines.append(
            "  %-24s %8s %12s %10s" % ("span", "count", "total ms", "mean ms")
        )
        ranked = sorted(
            totals.items(), key=lambda item: -item[1]["total_ms"]
        )
        for name, entry in ranked:
            lines.append(
                "  %-24s %8d %12.2f %10.3f"
                % (
                    name,
                    entry["count"],
                    entry["total_ms"],
                    entry["total_ms"] / max(1, entry["count"]),
                )
            )
    lines += _phase_lines(summary)
    lines += _slo_lines(summary)
    if trace_dir is not None:
        lines += _trace_lines(trace_dir)
    return lines


def _phase_lines(summary):
    """The daemon's own per-phase attribution (phase_profile events)."""
    profiles = summary["phase_profiles"]
    if not profiles:
        return []
    phases = sorted({p for d in profiles for p in d.get("phases", {})})
    lines = [
        "",
        "phase profile (engine %r; ms attributed by the span tap):"
        % (profiles[0].get("engine", "?"),),
        " int |" + "".join(" %9s |" % phase for phase in phases),
    ]
    for detail in profiles:
        row = detail.get("phases", {})
        lines.append(
            "%4s |" % detail.get("interval", "?")
            + "".join(
                " %9.3f |" % row.get(phase, 0.0) for phase in phases
            )
        )
    return lines


def _slo_lines(summary):
    """SLO burn rates: last sample and the worst burn per window."""
    last = summary["slo_last"]
    if not last:
        return []
    lines = ["", "SLO burn rates (error rate / error budget, per window):"]
    for name in sorted(last):
        detail = last[name]
        windows = detail.get("windows", {})
        worst = summary["slo_worst"].get(name, {})
        lines.append(
            "  %-10s target %.3f  good %d/%d  burn now [%s]  worst [%s]"
            % (
                name,
                detail.get("target", 0.0),
                detail.get("good", 0),
                detail.get("total", 0),
                " ".join(
                    "%s=%.2f" % (w, windows[w]) for w in sorted(windows)
                ),
                " ".join(
                    "%s=%.2f" % (w, worst[w]) for w in sorted(worst)
                ),
            )
        )
    return lines


def _trace_lines(trace_dir):
    """The distributed-trace section: timelines, skew, cohort CDF."""
    from repro.obs.assemble import assemble, load_trace_dir

    assembly = assemble(load_trace_dir(trace_dir))
    complete = assembly.complete()
    lines = [
        "",
        "distributed traces (%s):" % trace_dir,
        "  streams             %s" % " ".join(assembly.streams),
        "  clock offsets       %s"
        % " ".join(
            "%s=%+.6fs" % (stream, assembly.offsets[stream])
            for stream in sorted(assembly.offsets)
        ),
        "  timelines           %d total, %d complete, %d incomplete"
        % (
            len(assembly.timelines),
            len(complete),
            len(assembly.timelines) - len(complete),
        ),
        "  trace digest        %s" % assembly.digest(),
    ]
    for interval, row in sorted(assembly.completeness().items()):
        lines.append(
            "  interval %-4d       expected %d, traced %d, complete %d"
            % (interval, row["expected"], row["seen"], row["complete"])
        )
    cdf = assembly.recovery_cdf()
    if cdf:
        lines.append(
            "  recovery-latency CDF per cohort (client-side ms):"
        )
        for cohort in sorted(cdf):
            stats = cdf[cohort]
            percentiles = stats["percentiles_ms"]
            lines.append(
                "    %-5s %5d member(s): %s"
                % (
                    cohort,
                    stats["count"],
                    " ".join(
                        "%s=%.1f" % (p, percentiles[p])
                        for p in sorted(
                            percentiles,
                            key=lambda s: int(s[1:]),
                        )
                    ),
                )
            )
    return lines
