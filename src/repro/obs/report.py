"""``python -m repro obs-report`` — analyse one ``--obs-file`` JSONL.

The report answers two questions from the event stream alone (no ledger,
no daemon):

1. **Headline paper metrics** — the ρ trajectory, total first-round
   NACKs, and the worst per-interval recovery p99 — reproduced from the
   ``interval_complete`` events, which embed the full
   :class:`~repro.service.health.IntervalMetrics` record.
2. **Where does the time go** — per interval, wall milliseconds split by
   pipeline stage (marking vs. message build/encrypt vs. delivery vs.
   snapshot), reconstructed from ``span`` events via the interval field
   child spans inherit from the ``daemon.interval`` root span.

``fec`` time (encode + decode spans) is reported as a nested column: it
overlaps ``build``/``deliver``, so it is shown for attribution, not
summed into the total.
"""

from __future__ import annotations

import math

from repro.obs.events import (
    CHAOS_EVENT_KINDS,
    HA_EVENT_KINDS,
    WIRE_EVENT_KINDS,
    read_events,
)

#: Top-level children of daemon.interval: disjoint, so they sum.
_TOP_SPANS = {
    "daemon.carry": "carry",
    "daemon.intake": "intake",
    "daemon.rekey": "rekey",
    "daemon.deliver": "deliver",
    "daemon.snapshot": "snapshot",
}

#: Nested spans shown as attribution detail (they overlap the top level).
_NESTED_SPANS = {
    "marking.apply": "marking",
    "message.build": "build",
    "fec.encode": "fec",
    "fec.decode": "fec",
}


def summarize(events):
    """Reduce a validated event list to the report's numbers."""
    intervals = [
        e["detail"] for e in events if e["kind"] == "interval_complete"
    ]
    intervals.sort(key=lambda d: d.get("interval", 0))
    spans = [e["detail"] for e in events if e["kind"] == "span"]

    rho_trajectory = [d.get("rho", 0.0) for d in intervals]
    active = [d for d in intervals if d.get("decision") != "empty"]
    p99s = [
        d["recovery_p99"]
        for d in intervals
        if isinstance(d.get("recovery_p99"), (int, float))
        and not math.isnan(d["recovery_p99"])
    ]
    decisions = {}
    for d in intervals:
        decision = d.get("decision", "?")
        decisions[decision] = decisions.get(decision, 0) + 1

    fault_counts = {}
    fault_timeline = []
    ha_counts = {}
    failover_timeline = []
    wire_counts = {}
    wire_deliveries = []
    for event in events:
        kind = event["kind"]
        if kind in WIRE_EVENT_KINDS:
            wire_counts[kind] = wire_counts.get(kind, 0) + 1
            if kind == "wire_delivery_complete":
                wire_deliveries.append(dict(event["detail"]))
        if kind in HA_EVENT_KINDS:
            ha_counts[kind] = ha_counts.get(kind, 0) + 1
            failover_timeline.append(
                {"kind": kind, "detail": dict(event["detail"])}
            )
        if kind not in CHAOS_EVENT_KINDS:
            continue
        fault_counts[kind] = fault_counts.get(kind, 0) + 1
        fault_timeline.append(
            {"kind": kind, "detail": dict(event["detail"])}
        )

    breakdown = {}
    span_totals = {}
    for span in spans:
        name = span.get("name", "?")
        ms = float(span.get("ms", 0.0))
        entry = span_totals.setdefault(name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += ms
        interval = span.get("interval")
        if interval is None:
            continue
        row = breakdown.setdefault(
            interval, {"total": 0.0, "fec": 0.0}
        )
        if name == "daemon.interval":
            row["total"] += ms
        elif name in _TOP_SPANS:
            row[_TOP_SPANS[name]] = row.get(_TOP_SPANS[name], 0.0) + ms
        if name in _NESTED_SPANS:
            key = _NESTED_SPANS[name]
            row[key] = row.get(key, 0.0) + ms
    for row in breakdown.values():
        accounted = sum(
            row.get(column, 0.0) for column in _TOP_SPANS.values()
        )
        row["other"] = max(0.0, row["total"] - accounted)

    return {
        "n_events": len(events),
        "n_intervals": len(intervals),
        "intervals": intervals,
        "final_members": (
            intervals[-1].get("n_members", 0) if intervals else 0
        ),
        "rho_trajectory": rho_trajectory,
        "mean_rho": (
            sum(d.get("rho", 0.0) for d in active) / len(active)
            if active else 0.0
        ),
        "first_round_nacks_total": sum(
            d.get("first_round_nacks", 0) for d in intervals
        ),
        "recovery_p99_max": max(p99s) if p99s else None,
        "decisions": decisions,
        "fault_counts": fault_counts,
        "fault_timeline": fault_timeline,
        "ha_counts": ha_counts,
        "failover_timeline": failover_timeline,
        "wire_counts": wire_counts,
        "wire_deliveries": wire_deliveries,
        "wire_cohorts": _wire_cohorts(events) if wire_counts else {},
        "time_breakdown": breakdown,
        "span_totals": span_totals,
    }


def _wire_cohorts(events):
    from repro.wire.fleet import cohort_summary

    return cohort_summary(events)


def _fmt_ms(value):
    return "%8.2f" % value


def render_report(path):
    """Report lines for one JSONL file (validated while loading)."""
    events = read_events(path)
    summary = summarize(events)
    lines = [
        "obs-report: %d event(s), %d interval(s) — %s"
        % (summary["n_events"], summary["n_intervals"], path),
        "",
        "headline (from interval_complete events alone):",
        "  final members       %d" % summary["final_members"],
        "  rho trajectory      %s"
        % " ".join("%.2f" % rho for rho in summary["rho_trajectory"]),
        "  mean rho            %.3f (non-empty intervals)"
        % summary["mean_rho"],
        "  first-round NACKs   %d (total)"
        % summary["first_round_nacks_total"],
        "  recovery p99        %s"
        % (
            "%.1f rounds (worst interval)" % summary["recovery_p99_max"]
            if summary["recovery_p99_max"] is not None
            else "n/a (aggregate-only backend)"
        ),
        "  decisions           %s"
        % " ".join(
            "%s=%d" % (key, summary["decisions"][key])
            for key in sorted(summary["decisions"])
        ),
    ]
    if summary["failover_timeline"]:
        lines += [
            "",
            "failover timeline (HA events, in order):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, summary["ha_counts"][kind])
                for kind in sorted(summary["ha_counts"])
            ),
        ]
        for entry in summary["failover_timeline"]:
            detail = entry["detail"]
            rendered = " ".join(
                "%s=%s" % (key, detail[key]) for key in sorted(detail)
            )
            lines.append("  %-22s %s" % (entry["kind"], rendered))
    if summary["wire_counts"]:
        deliveries = summary["wire_deliveries"]
        lines += [
            "",
            "wire plane (wire_* events):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, summary["wire_counts"][kind])
                for kind in sorted(summary["wire_counts"])
            ),
        ]
        if deliveries:
            lines.append(
                "  deliveries          %d (rounds %s, unicast total %d, "
                "dropped total %d)"
                % (
                    len(deliveries),
                    " ".join(
                        str(d.get("rounds", "?")) for d in deliveries
                    ),
                    sum(d.get("unicast_served", 0) for d in deliveries),
                    sum(d.get("dropped", 0) for d in deliveries),
                )
            )
        for cohort in sorted(summary["wire_cohorts"]):
            stats = summary["wire_cohorts"][cohort]
            lines.append(
                "  cohort %-5s %5d report(s): recovery p50/p90/p99 "
                "%.1f/%.1f/%.1f ms, rounds %.2f, unicast %d, dropped %d"
                % (
                    cohort,
                    stats["reports"],
                    stats["recovery_ms"]["p50"],
                    stats["recovery_ms"]["p90"],
                    stats["recovery_ms"]["p99"],
                    stats["rounds_mean"],
                    stats["unicast"],
                    stats["dropped"],
                )
            )
    if summary["fault_counts"]:
        lines += [
            "",
            "faults and recoveries (chaos events, in order):",
            "  %s"
            % " ".join(
                "%s=%d" % (kind, summary["fault_counts"][kind])
                for kind in sorted(summary["fault_counts"])
            ),
        ]
        for entry in summary["fault_timeline"]:
            detail = entry["detail"]
            rendered = " ".join(
                "%s=%s" % (key, detail[key]) for key in sorted(detail)
            )
            lines.append("  %-22s %s" % (entry["kind"], rendered))
    breakdown = summary["time_breakdown"]
    if breakdown:
        lines += [
            "",
            "where the time goes (ms; fec is nested inside build/deliver):",
            " int |    total |  marking |    build |  deliver | snapshot |"
            "      fec |    other",
        ]
        for interval in sorted(breakdown):
            row = breakdown[interval]
            lines.append(
                "%4s | %s | %s | %s | %s | %s | %s | %s"
                % (
                    interval,
                    _fmt_ms(row.get("total", 0.0)),
                    _fmt_ms(row.get("marking", 0.0)),
                    _fmt_ms(row.get("build", 0.0)),
                    _fmt_ms(row.get("deliver", 0.0)),
                    _fmt_ms(row.get("snapshot", 0.0)),
                    _fmt_ms(row.get("fec", 0.0)),
                    _fmt_ms(row.get("other", 0.0)),
                )
            )
    totals = summary["span_totals"]
    if totals:
        lines += ["", "span totals across the run:"]
        lines.append(
            "  %-24s %8s %12s %10s" % ("span", "count", "total ms", "mean ms")
        )
        ranked = sorted(
            totals.items(), key=lambda item: -item[1]["total_ms"]
        )
        for name, entry in ranked:
            lines.append(
                "  %-24s %8d %12.2f %10.3f"
                % (
                    name,
                    entry["count"],
                    entry["total_ms"],
                    entry["total_ms"] / max(1, entry["count"]),
                )
            )
    return lines
