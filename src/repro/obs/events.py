"""The structured event bus: versioned schema, kind registry, JSONL.

Every observability event is one JSON object::

    {"v": 1, "t": <wall-clock seconds>, "kind": "<registered kind>",
     "detail": {...}}

``v`` is :data:`SCHEMA_VERSION` (additive evolution only: new kinds and
new detail keys never bump it; renaming or removing either does).  The
kind registry subsumes the session-protocol kinds that
:class:`repro.transport.trace.SessionTrace` historically owned and adds
the service-level kinds (marking, FEC, WAL, degradation, recovery) the
daemon emits.  The registry is *extensible* — embedders call
:func:`register_event_kind` instead of patching a frozen set, so a new
event kind is one line, not a ``ConfigurationError``.

An :class:`EventBus` collects events in memory and, when given a path,
appends them as JSONL (the daemon's ``--obs-file``).
:func:`validate_record` / :func:`validate_jsonl` check conformance; the
CI smoke job runs the latter over a real daemon run.
"""

from __future__ import annotations

import json
import time

from repro.errors import ObsError

#: Version of the event envelope. Additive changes keep it.
SCHEMA_VERSION = 1

#: Session-protocol kinds (historically SessionTrace.KNOWN_KINDS).
SESSION_EVENT_KINDS = frozenset(
    {
        "session_start",
        "round_planned",
        "round_complete",
        "unicast_start",
        "unicast_attempt",
        "session_complete",
    }
)

#: Service- and pipeline-level kinds added by the obs layer.
SERVICE_EVENT_KINDS = frozenset(
    {
        "span",               # a closed span: name, ms, inherited fields
        "interval_start",     # daemon interval began
        "interval_complete",  # detail = the IntervalMetrics record
        "marking_complete",   # marking output summary for one batch
        "fec_encode",         # parity generated for one block
        "wal_append",         # a request record became durable
        "wal_compact",        # WAL compaction ran
        "snapshot",           # server snapshot atomically replaced
        "degradation",        # deadline missed: unicast-cutover/carry-over
        "carry_served",       # carried users served at interval start
        "recovery",           # daemon recovered from snapshot + WAL
        "crash",              # injected crash fired
        "degradation_policy_ignored",  # configured policy not in force
                                       # on this transport (UDP + carry)
    }
)

#: Fault-injection and hardening kinds (see docs/robustness.md).
CHAOS_EVENT_KINDS = frozenset(
    {
        "fault_injected",          # the chaos plan fired one fault
        "io_retry",                # transient I/O error, retrying
        "io_giveup",               # retry budget exhausted
        "wal_quarantine",          # corrupt WAL moved aside, prefix salvaged
        "snapshot_fallback",       # damaged snapshot generation skipped
        "snapshot_recovered_from", # recovery used a non-primary generation
        "snapshot_skipped",        # snapshot save failed; interval uncommitted
        "circuit_open",            # degradation circuit breaker opened
        "circuit_half_open",       # cooldown elapsed; trial interval next
        "circuit_close",           # trial succeeded; breaker closed
        "feedback_chaos",          # NACK feedback was mangled in flight
        "rho_clamped",             # AdjustRho hit the rho_max ceiling
        "soak_restart",            # chaos soak restarted the daemon
        "soak_invariant",          # one soak invariant checked
    }
)

#: High-availability kinds: leases, replication, failover, fencing
#: (see docs/ha.md).
HA_EVENT_KINDS = frozenset(
    {
        "ha_role",                 # a node took a role (leader/standby)
        "ha_lease_acquired",       # lease written with a fresh epoch
        "ha_heartbeat_lost",       # standby saw the leader's lease lapse
        "ha_promote",              # standby promoted itself to leader
        "ha_fenced",               # stale-epoch append refused
        "ha_replication_connect",  # follower (re)subscribed to the stream
        "ha_catchup",              # follower replayed a backlog of records
        "ha_digest_check",         # follower compared state digests
    }
)

#: Asyncio UDP wire-plane kinds (see docs/networking.md).
WIRE_EVENT_KINDS = frozenset(
    {
        "wire_announce",           # announce barrier completed
        "wire_round",              # one multicast round sent + aggregated
        "wire_nack_window",        # the NACK aggregation window closed
        "wire_unicast",            # unicast phase served the stragglers
        "wire_member_recovered",   # one member reached key agreement
        "wire_delivery_complete",  # one interval delivered over the wire
        "wire_fleet_interval",     # fleet runner finished one interval
        "wire_fleet_complete",     # fleet run summary
        "wire_decode_error",       # undecodable datagram reached a socket
    }
)

#: Wire-plane survivability kinds: the datagram fault injector, the
#: client resync state machine and the liveness/failover path (see
#: docs/robustness.md, "Surviving failures on the wire").
WIRE_CHAOS_EVENT_KINDS = frozenset(
    {
        "wire_chaos_fault",        # the injector applied one datagram fault
        "wire_client_crashed",     # a plan scheduled one client death
        "wire_client_evicted",     # liveness timeout declared a member dead
        "wire_resync",             # client FSM left sync (and re-REGISTERed)
        "wire_rehomed",            # client adopted a higher leader epoch
        "wire_stale_epoch",        # a stale-epoch frame was refused
        "wire_register_giveup",    # REGISTER retry budget exhausted
        "wire_chaos_invariant",    # one wire-chaos invariant checked
        "wire_chaos_complete",     # wire-chaos soak summary
    }
)

#: Multi-tenant key-service kinds: the shared deadline scheduler,
#: per-tenant admission control, quarantine circuit breakers, and bulk
#: failover (see docs/tenancy.md).  Every tenant-scoped event carries a
#: ``tenant`` detail key (the daemon stamps it via the bus context).
TENANCY_EVENT_KINDS = frozenset(
    {
        "tenancy_tick",        # one scheduler tick: ran/deferred/shed counts
        "tenant_interval",     # one tenant's interval committed
        "tenant_shed",         # admission control shed part of a batch
        "tenant_deferred",     # a due tenant missed its tick (budget)
        "tenant_overload",     # a tenant's estimated cost blew its share
        "tenant_degraded",     # overload forced the carry policy this run
        "tenant_quarantine",   # breaker opened: tenant off the run queue
        "tenant_trial",        # quarantine cooldown elapsed; trial tick
        "tenant_recovered",    # trial succeeded; tenant back in rotation
        "tenant_failure",      # a tenant's interval/submission failed
        "tenancy_promote",     # standby re-homed the whole tenant fleet
        "tenant_rehomed",      # one tenant recovered under the new epoch
        "tenancy_invariant",   # one tenancy-soak invariant checked
        "tenancy_complete",    # tenancy soak summary
    }
)

#: Distributed-tracing, profiling and SLO kinds (see
#: docs/observability.md).  The ``trace_*`` milestones are emitted
#: *client-side* — per member, per interval — and carry a ``mono``
#: monotonic timestamp so the trace assembler can skew-correct streams
#: from different processes against the server's announce barrier.
TRACE_EVENT_KINDS = frozenset(
    {
        "trace_announce",       # client saw (and acked) the ANNOUNCE
        "trace_first_data",     # first surviving DATA frame arrived
        "trace_decoded",        # parity decode completed (keys recovered)
        "trace_key_decrypted",  # recovered keys absorbed; group key held
        "phase_profile",        # one interval's per-phase cost breakdown
        "slo_burn",             # multi-window SLO burn-rate sample
    }
)

_REGISTRY = set(
    SESSION_EVENT_KINDS
    | SERVICE_EVENT_KINDS
    | CHAOS_EVENT_KINDS
    | HA_EVENT_KINDS
    | WIRE_EVENT_KINDS
    | WIRE_CHAOS_EVENT_KINDS
    | TENANCY_EVENT_KINDS
    | TRACE_EVENT_KINDS
)


def register_event_kind(kind):
    """Add ``kind`` to the registry (idempotent); returns the kind."""
    if not isinstance(kind, str) or not kind:
        raise ObsError("event kind must be a non-empty string")
    _REGISTRY.add(kind)
    return kind


def is_registered(kind):
    return kind in _REGISTRY


def registered_kinds():
    """Snapshot of every registered kind (sorted)."""
    return sorted(_REGISTRY)


class EventBus:
    """Append-only event sink with optional JSONL persistence.

    ``context`` keys (set via :meth:`set_context`) are merged into every
    record's detail — the daemon stamps the current interval there so
    events emitted deep in the pipeline (session rounds, FEC encodes)
    carry it without plumbing.

    With ``line_buffered`` every emitted record is flushed to the JSONL
    handle immediately, so a crashed or SIGKILLed process (a fleet
    worker, a chaos-plan casualty) never loses its stream's tail — at
    the cost of one flush syscall per event.  The default stays fully
    buffered for the daemon's hot path.
    """

    def __init__(self, path=None, clock=time.time, keep=10000,
                 line_buffered=False):
        self.path = path
        self.clock = clock
        self.events = []
        self._keep = int(keep)
        self._context = {}
        self.line_buffered = bool(line_buffered)
        self._handle = open(path, "w") if path else None

    def set_context(self, **fields):
        """Merge ``fields`` into the ambient context (None deletes)."""
        for key, value in fields.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    def emit(self, kind, **detail):
        """Record one event; returns the envelope dict."""
        if kind not in _REGISTRY:
            raise ObsError(
                "unregistered event kind %r (register_event_kind first)"
                % (kind,)
            )
        merged = dict(self._context)
        merged.update(detail)
        record = {
            "v": SCHEMA_VERSION,
            "t": float(self.clock()),
            "kind": kind,
            "detail": merged,
        }
        self.events.append(record)
        if len(self.events) > self._keep:
            del self.events[: len(self.events) - self._keep]
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            if self.line_buffered:
                self._handle.flush()
        return record

    def of_kind(self, kind):
        return [e for e in self.events if e["kind"] == kind]

    def flush(self):
        if self._handle is not None:
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __len__(self):
        return len(self.events)


def validate_record(record, strict_kinds=False):
    """Check one event envelope; raises :class:`ObsError` when invalid.

    With ``strict_kinds`` the kind must be in the registry; without, any
    non-empty string passes (a reader must tolerate kinds newer than
    itself — that is what makes the schema additive).
    """
    if not isinstance(record, dict):
        raise ObsError("event must be a JSON object, got %r" % type(record))
    if record.get("v") != SCHEMA_VERSION:
        raise ObsError(
            "unsupported event schema version %r (expected %d)"
            % (record.get("v"), SCHEMA_VERSION)
        )
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ObsError("event kind must be a non-empty string")
    if strict_kinds and kind not in _REGISTRY:
        raise ObsError("unregistered event kind %r" % (kind,))
    if not isinstance(record.get("t"), (int, float)):
        raise ObsError("event time %r is not a number" % (record.get("t"),))
    if not isinstance(record.get("detail"), dict):
        raise ObsError("event detail must be an object")
    return record


def validate_jsonl(path, strict_kinds=False):
    """Validate every line of a JSONL file; returns the record count."""
    count = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise ObsError(
                    "%s:%d: not JSON (%s)" % (path, lineno, error)
                )
            try:
                validate_record(record, strict_kinds=strict_kinds)
            except ObsError as error:
                raise ObsError("%s:%d: %s" % (path, lineno, error))
            count += 1
    return count


def read_events(path):
    """Load and validate a JSONL event file into a list of records."""
    out = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise ObsError(
                    "%s:%d: not JSON (%s)" % (path, lineno, error)
                )
            out.append(validate_record(record))
    return out
