"""Prometheus text-format exposition (and a parser for round-trips).

:func:`render` turns the daemon's :class:`~repro.service.health.ServiceMetrics`
ledger — counters, the last interval's gauges — plus an optional
:class:`~repro.obs.metrics.MetricsRegistry` (span/latency histograms)
into the ``text/plain; version=0.0.4`` format Prometheus scrapes.  All
metric names carry the ``repro_`` prefix; ledger counters gain the
conventional ``_total`` suffix.

:func:`parse` is a deliberately small reader of the same format — enough
for the exposition tests to assert a lossless render → parse round-trip
(names, label sets, HELP/TYPE lines, histogram invariants) and for the
CI smoke job to check a live scrape.
"""

from __future__ import annotations

import math
import re

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: HELP text for the ledger-derived metrics.
_LEDGER_HELP = {
    "joins_accepted": "Join requests accepted (applied and logged).",
    "leaves_accepted": "Leave requests accepted (applied and logged).",
    "requests_rejected": "Membership requests rejected as invalid.",
    "requests_replayed": "WAL request records replayed during recovery.",
    "members_resynced": "Members re-registered after recovery.",
    "recoveries": "Daemon recoveries from snapshot + WAL.",
    "empty_intervals": "Intervals with no membership change.",
    "deadline_misses": "Intervals that missed the delivery deadline.",
    "policy_ignored": (
        "Intervals whose configured degradation policy the transport "
        "could not honour."
    ),
}


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value):
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def _sample_line(name, labels, value):
    if labels:
        body = ",".join(
            '%s="%s"' % (key, _escape_label(labels[key]))
            for key in sorted(labels)
        )
        return "%s{%s} %s" % (name, body, _format_value(value))
    return "%s %s" % (name, _format_value(value))


def _header(lines, name, kind, help_text):
    lines.append("# HELP %s %s" % (name, _escape_help(help_text or name)))
    lines.append("# TYPE %s %s" % (name, kind))


def _render_histogram(lines, name, labels, histogram):
    for bound, cumulative in histogram.cumulative():
        bucket_labels = dict(labels)
        bucket_labels["le"] = (
            "+Inf" if math.isinf(bound) else _format_value(bound)
        )
        lines.append(
            _sample_line(name + "_bucket", bucket_labels, cumulative)
        )
    lines.append(_sample_line(name + "_sum", labels, histogram.sum))
    lines.append(_sample_line(name + "_count", labels, histogram.count))


def render(ledger=None, registry=None, health=None):
    """Render the exposition document; returns the text (trailing \\n).

    ``ledger`` is a :class:`~repro.service.health.ServiceMetrics` (or
    None), ``registry`` a :class:`~repro.obs.metrics.MetricsRegistry`
    (or None), ``health`` an optional health dict whose ``status``
    becomes the ``repro_up`` gauge (1 ok / 0 degraded).
    """
    lines = []
    if ledger is not None:
        for counter in sorted(ledger.counters):
            name = "repro_%s_total" % counter
            _header(
                lines, name, "counter",
                _LEDGER_HELP.get(counter, counter.replace("_", " ")),
            )
            lines.append(_sample_line(name, {}, ledger.counters[counter]))
        name = "repro_intervals_processed_total"
        _header(
            lines, name, "counter", "Rekey intervals completed."
        )
        lines.append(_sample_line(name, {}, ledger.n_intervals))
        last = ledger.intervals[-1] if ledger.intervals else None
        gauges = (
            ("repro_members", "Current group size.",
             last.n_members if last else 0),
            ("repro_rho", "Proactivity factor of the last interval.",
             last.rho if last else 0.0),
            ("repro_last_interval_duration_ms",
             "Wall time of the last rekey interval.",
             last.duration_ms if last else 0.0),
            ("repro_last_first_round_nacks",
             "First-round NACK count of the last interval.",
             last.first_round_nacks if last else 0),
        )
        for name, help_text, value in gauges:
            _header(lines, name, "gauge", help_text)
            lines.append(_sample_line(name, {}, value))
    if health is not None:
        _header(
            lines, "repro_up", "gauge",
            "1 when the daemon reports ok, 0 when degraded.",
        )
        lines.append(
            _sample_line(
                "repro_up", {}, 1 if health.get("status") == "ok" else 0
            )
        )
    if registry is not None:
        for name, kind, help_text, samples in registry.families():
            full = "repro_" + name
            _header(lines, full, kind, help_text)
            for labels, instrument in samples:
                if kind == "histogram":
                    _render_histogram(lines, full, labels, instrument)
                else:
                    lines.append(
                        _sample_line(full, labels, instrument.value)
                    )
    return "\n".join(lines) + "\n"


# -- parsing (for round-trip tests and the CI smoke scrape) -------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"'
)


def _unescape_label(value):
    return (
        value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    )


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse(text):
    """Parse exposition text into ``{family: {...}}``.

    Each family maps to ``{"help": str, "type": str, "samples": [...]}``
    where a sample is ``(sample_name, labels_dict, value)``.  A sample
    whose family was never declared lands under its own name with type
    ``"untyped"``.
    """
    families = {}

    def family_for(name):
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            families[base] = {"help": "", "type": "untyped", "samples": []}
        return families[base]

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"help": "", "type": "untyped", "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"help": "", "type": "untyped", "samples": []}
            )["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError("line %d: unparseable sample %r" % (lineno, line))
        labels = {}
        if match.group("labels"):
            for label in _LABEL_RE.finditer(match.group("labels")):
                labels[label.group("key")] = _unescape_label(
                    label.group("value")
                )
        family_for(match.group("name"))["samples"].append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return families
