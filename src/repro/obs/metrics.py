"""In-process metric instruments: counters, gauges, histograms.

A :class:`MetricsRegistry` holds every instrument the recorder touches,
keyed by ``(name, sorted label items)``.  Instruments are plain Python
objects updated under the GIL (single attribute/list-slot writes), so
they are safe to update from the daemon thread while the HTTP exposition
thread renders them — exactly the concurrency the ``/metrics`` endpoint
needs, with no locks on the hot path.

Rendering to the Prometheus text format lives in
:mod:`repro.obs.prometheus`; this module is pure bookkeeping.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram buckets for millisecond durations (span timings).
DEFAULT_MS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Buckets for recovery latencies measured in multicast rounds.
ROUNDS_BUCKETS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, by=1):
        if by < 0:
            raise ValueError("counters only go up (got %r)" % (by,))
        self.value += by


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; the implicit ``+Inf`` bucket is always
    present.  Per-bucket counts are stored non-cumulatively and summed
    at render time, so ``observe`` is one bisect and one increment.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets=DEFAULT_MS_BUCKETS):
        self.buckets = tuple(float(b) for b in sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self):
        """(upper_bound, cumulative_count) pairs, ``+Inf`` last."""
        total = 0
        out = []
        for bound, count in zip(self.buckets, self.counts):
            total += count
            out.append((bound, total))
        out.append((float("inf"), total + self.counts[-1]))
        return out


class MetricsRegistry:
    """Name- and label-addressed instrument store."""

    def __init__(self):
        #: name -> {"kind": str, "help": str, "samples": {labels: obj}}
        self._families = {}

    @staticmethod
    def _label_key(labels):
        return tuple(sorted(labels.items()))

    def _family(self, name, kind, help_text):
        family = self._families.get(name)
        if family is None:
            family = {"kind": kind, "help": help_text or "", "samples": {}}
            self._families[name] = family
        elif family["kind"] != kind:
            raise ValueError(
                "metric %r is a %s, not a %s"
                % (name, family["kind"], kind)
            )
        if help_text and not family["help"]:
            family["help"] = help_text
        return family

    def counter(self, name, help="", **labels):
        family = self._family(name, "counter", help)
        key = self._label_key(labels)
        sample = family["samples"].get(key)
        if sample is None:
            sample = family["samples"][key] = Counter()
        return sample

    def gauge(self, name, help="", **labels):
        family = self._family(name, "gauge", help)
        key = self._label_key(labels)
        sample = family["samples"].get(key)
        if sample is None:
            sample = family["samples"][key] = Gauge()
        return sample

    def histogram(self, name, buckets=None, help="", **labels):
        family = self._family(name, "histogram", help)
        key = self._label_key(labels)
        sample = family["samples"].get(key)
        if sample is None:
            sample = family["samples"][key] = Histogram(
                buckets if buckets is not None else DEFAULT_MS_BUCKETS
            )
        return sample

    def families(self):
        """Snapshot iterable of (name, kind, help, samples) tuples.

        ``samples`` is a list of (labels dict, instrument) pairs, label
        sets in insertion order.
        """
        for name in sorted(self._families):
            family = self._families[name]
            samples = [
                (dict(key), sample)
                for key, sample in list(family["samples"].items())
            ]
            yield name, family["kind"], family["help"], samples

    def __len__(self):
        return len(self._families)
