"""Interval-scoped distributed tracing and per-phase profiling.

One rekey interval is one *trace*: the daemon mints a deterministic
64-bit trace id at ``interval_start`` (a pure function of the group
seed and the interval number, so the same run always mints the same
ids) and activates it as an ambient :class:`TraceContext` for the
duration of the interval.  Everything the interval touches tags its
events with that id:

- the daemon stamps the event-bus context, so every server-side event
  (spans, FEC, WAL, wire rounds) carries ``trace`` for free;
- the wire plane carries the id in its ``ANNOUNCE``/``REGISTER``/
  ``FEEDBACK`` control payloads (:mod:`repro.wire.codec`), so clients
  in *other processes* tag their recovery milestones with the same id;
- the HA replication stream tags its ``record``/``digest`` frames, so
  the standby's convergence checks join the interval's trace too.

Trace ids are deterministic on purpose: the cross-process timeline
assembly (:mod:`repro.obs.assemble`) can then be pinned by digest in CI
exactly like the wire fleet's protocol digest.

:class:`PhaseProfiler` is the per-interval phase-cost harness: the
:class:`~repro.obs.recorder.Recorder` taps every closing span into it,
and it folds span names onto the pipeline phases the batch-rekeying
literature prices (marking, keygen, assignment, FEC, delivery).  One
``phase_profile`` event per interval plus ``phase_ms`` Prometheus
histograms labeled by engine make the python/numpy cost breakdowns
first-class obs citizens.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import ObsError

#: The "no trace" sentinel carried on the wire before an interval's
#: context exists (e.g. a client's initial REGISTER).
TRACE_NONE = 0

_TRACE_MASK = 0xFFFFFFFFFFFFFFFF


def mint_trace_id(seed, interval):
    """A deterministic 64-bit trace id for one (seed, interval) pair.

    Hash-derived, so ids from different seeds do not collide by
    construction of the interval counter alone; never returns
    :data:`TRACE_NONE`.
    """
    material = b"repro-trace:%d:%d" % (int(seed), int(interval))
    digest = hashlib.sha256(material).digest()
    value = int.from_bytes(digest[:8], "big")
    return value if value != TRACE_NONE else 1


def format_trace(trace_id):
    """Render a trace id as the canonical 16-hex-char event field."""
    return "%016x" % (int(trace_id) & _TRACE_MASK)


def parse_trace(text):
    """Inverse of :func:`format_trace`; raises :class:`ObsError`."""
    if not isinstance(text, str) or len(text) != 16:
        raise ObsError("trace id must be 16 hex chars, got %r" % (text,))
    try:
        return int(text, 16)
    except ValueError:
        raise ObsError("trace id %r is not hex" % (text,))


@dataclass(frozen=True)
class TraceContext:
    """The ambient identity of the interval currently being processed."""

    trace_id: int
    interval: int

    @property
    def hex(self):
        return format_trace(self.trace_id)


_ACTIVE = threading.local()


def current():
    """The active :class:`TraceContext` on this thread, or ``None``."""
    return getattr(_ACTIVE, "context", None)


def current_trace_id():
    """The active trace id, or :data:`TRACE_NONE` outside an interval."""
    context = current()
    return TRACE_NONE if context is None else context.trace_id


def current_trace():
    """The active trace id as hex, or ``None`` outside an interval."""
    context = current()
    return None if context is None else context.hex


@contextmanager
def tracing(trace_id, interval):
    """Activate a :class:`TraceContext` for the duration of a block."""
    previous = current()
    _ACTIVE.context = TraceContext(
        trace_id=int(trace_id), interval=int(interval)
    )
    try:
        yield _ACTIVE.context
    finally:
        _ACTIVE.context = previous


# -- per-phase interval profiling ---------------------------------------

#: The pipeline phases the profiler prices, in pipeline order.
PHASES = ("marking", "keygen", "assignment", "fec", "delivery")

#: Span-name -> phase.  ``marking`` includes the key renewal the marking
#: algorithm performs; ``keygen`` is the cryptographic cost of turning
#: renewed keys into a message (encryption + signing); ``fec`` overlaps
#: ``delivery`` when decode spans close inside it (attribution, not a
#: disjoint sum).
PHASE_OF_SPAN = {
    "marking.apply": "marking",
    "message.encrypt": "keygen",
    "message.sign": "keygen",
    "message.assign": "assignment",
    "fec.encode": "fec",
    "fec.decode": "fec",
    "daemon.deliver": "delivery",
}


class PhaseProfiler:
    """Aggregates one interval's span closures into phase costs.

    Installed by the daemon as the recorder's span tap for exactly one
    interval, then :meth:`finish`\\ ed: one ``phase_profile`` event and
    one ``phase_ms{phase,engine}`` histogram observation per phase.
    """

    def __init__(self, engine):
        self.engine = str(engine)
        self.totals = {}
        self.counts = {}

    def on_span(self, name, ms):
        """The recorder's tap: fold one closed span into its phase."""
        phase = PHASE_OF_SPAN.get(name)
        if phase is None:
            return
        self.totals[phase] = self.totals.get(phase, 0.0) + float(ms)
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def finish(self, obs, interval):
        """Publish the interval's phase breakdown; returns it."""
        phases = {
            phase: round(self.totals[phase], 4)
            for phase in sorted(self.totals)
        }
        for phase, ms in phases.items():
            obs.observe("phase_ms", ms, phase=phase, engine=self.engine)
        if phases:
            obs.emit(
                "phase_profile",
                interval=int(interval),
                engine=self.engine,
                phases=phases,
                spans=dict(sorted(self.counts.items())),
            )
        return phases
