"""Structured tracing for transport sessions.

A :class:`SessionTrace` collects timestamped protocol events —
round boundaries, NACK aggregates, unicast attempts, completion — so a
delivery can be inspected or asserted on after the fact without
sprinkling print statements through the protocol code.  The
:class:`~repro.transport.session.RekeySession` emits into a trace when
given one; rendering is plain text, one event per line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event: simulation time, kind, and details."""

    time: float
    kind: str
    detail: dict

    def render(self):
        parts = " ".join(
            "%s=%s" % (key, value)
            for key, value in sorted(self.detail.items())
        )
        return "%10.3fs  %-18s %s" % (self.time, self.kind, parts)


KNOWN_KINDS = frozenset(
    {
        "session_start",
        "round_planned",
        "round_complete",
        "unicast_start",
        "unicast_attempt",
        "session_complete",
    }
)


@dataclass
class SessionTrace:
    """An append-only event log for one delivery session."""

    events: list = field(default_factory=list)
    strict: bool = True

    def emit(self, kind, time, **detail):
        """Record one event."""
        if self.strict and kind not in KNOWN_KINDS:
            raise ConfigurationError("unknown trace kind %r" % kind)
        self.events.append(TraceEvent(time=float(time), kind=kind,
                                      detail=detail))

    def of_kind(self, kind):
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def summary(self):
        """Event counts by kind."""
        counts = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def render(self, limit=None):
        """Multi-line text rendering (most recent last)."""
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(event.render() for event in events)

    def __len__(self):
        return len(self.events)
