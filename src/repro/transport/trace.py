"""Structured tracing for transport sessions (obs-schema shim).

A :class:`SessionTrace` collects timestamped protocol events —
round boundaries, NACK aggregates, unicast attempts, completion — so a
delivery can be inspected or asserted on after the fact without
sprinkling print statements through the protocol code.

Historically this module owned its own frozen set of event kinds and
strict mode rejected anything else; it is now a thin compatibility shim
over :mod:`repro.obs.events`: strict mode validates against the
*extensible* obs registry (so adding an event kind is a
:func:`repro.obs.events.register_event_kind` call, never a
:class:`ConfigurationError` in shipped code), and a trace can forward
every event into an :class:`~repro.obs.events.EventBus` for JSONL
export alongside the rest of the observability stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.events import SESSION_EVENT_KINDS, is_registered


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event: simulation time, kind, and details."""

    time: float
    kind: str
    detail: dict

    def render(self):
        parts = " ".join(
            "%s=%s" % (key, value)
            for key, value in sorted(self.detail.items())
        )
        return "%10.3fs  %-18s %s" % (self.time, self.kind, parts)


#: The session-protocol kinds (kept for compatibility; the authoritative
#: registry — a superset — lives in :mod:`repro.obs.events`).
KNOWN_KINDS = SESSION_EVENT_KINDS


@dataclass
class SessionTrace:
    """An append-only event log for one delivery session.

    ``strict`` validates kinds against the obs event registry; ``bus``
    optionally forwards every event to an
    :class:`~repro.obs.events.EventBus` (the simulation time travels as
    the ``sim_time`` detail key — the bus stamps wall-clock ``t``).
    """

    events: list = field(default_factory=list)
    strict: bool = True
    bus: object = None

    def emit(self, kind, time, **detail):
        """Record one event."""
        if self.strict and not is_registered(kind):
            raise ConfigurationError("unknown trace kind %r" % kind)
        self.events.append(TraceEvent(time=float(time), kind=kind,
                                      detail=detail))
        if self.bus is not None:
            self.bus.emit(kind, sim_time=float(time), **detail)

    def of_kind(self, kind):
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def summary(self):
        """Event counts by kind."""
        counts = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def render(self, limit=None):
        """Multi-line text rendering (most recent last)."""
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(event.render() for event in events)

    def __len__(self):
        return len(self.events)
