"""Adaptive control of the proactivity factor and NACK target (§6).

Two controllers:

- :class:`ProactivityController` — the ``AdjustRho`` algorithm (Fig. 11):
  after the first round of each rekey message, compare the number of
  NACKs received with the target ``numNACK``; overshoot raises ``rho``
  just enough that (based on this message's feedback) only ``numNACK``
  users would have NACKed; undershoot decays ``rho`` by one parity
  packet, probabilistically.

- :class:`NumNackController` — the heuristic that adapts the target
  itself: every deadline-clean message nudges ``numNACK`` up (cheaper),
  every missed deadline pulls it down by the number of missing users
  (faster delivery).
"""

from __future__ import annotations

import math

from repro.util.validation import (
    check_non_negative,
    check_positive,
)


def proactive_parity_count(rho, k):
    """Proactive PARITY packets per block: ``ceil((rho - 1) * k)``.

    A small epsilon absorbs binary floating-point noise so that e.g.
    ``rho = 1.6, k = 10`` yields 6 parity packets, not 7.
    """
    check_positive("k", k, integral=True)
    check_non_negative("rho", rho)
    return max(0, math.ceil((rho - 1.0) * k - 1e-9))


class ProactivityController:
    """The ``AdjustRho`` algorithm, one instance per key server.

    ``update`` is called once per rekey message with the first-round
    NACK report list ``A`` (each entry: the *largest* per-block parity
    count that user requested).  The adjusted ``rho`` applies to the
    *next* rekey message's proactive round.
    """

    #: default ceiling on ρ — generous (the paper's trajectories stay
    #: under 2) but finite, so hostile feedback cannot run it away
    DEFAULT_RHO_MAX = 8.0

    def __init__(self, k, rho=1.0, num_nack=20, rng=None, rho_max=None):
        check_positive("k", k, integral=True)
        check_non_negative("rho", rho)
        check_non_negative("num_nack", num_nack, integral=True)
        if rho_max is None:
            rho_max = self.DEFAULT_RHO_MAX
        check_positive("rho_max", rho_max)
        self.k = int(k)
        self.rho_max = float(rho_max)
        self.rho = min(float(rho), self.rho_max)
        self.num_nack = int(num_nack)
        self._rng = rng
        #: diagnostics of the last :meth:`update` call — how many NACK
        #: requests were out of range, and whether ρ hit the ceiling
        self.last_requests_clamped = 0
        self.last_rho_clamped = False

    def _random(self):
        if self._rng is None:
            from repro.util.rng import spawn_rng

            self._rng = spawn_rng()
        return float(self._rng.random())

    def update(self, first_round_requests):
        """Apply AdjustRho given the first round's NACK list ``A``.

        ``first_round_requests``: one integer per NACKing user — the
        maximum number of PARITY packets that user requested across
        blocks.  Returns the new ``rho``.

        The entries come from *untrusted* per-user NACK reports, so each
        is validated before it can steer the controller: negatives are
        treated as zero and anything above ``k`` is clamped to ``k`` —
        no user can legitimately need more parity packets than a block
        has data packets.  The adjusted ρ is additionally capped at
        :attr:`rho_max`, so a NACK storm saturates the proactivity
        factor instead of driving the next round's parity unbounded.
        """
        sanitized = []
        clamped = 0
        for raw in first_round_requests:
            value = int(raw)
            bounded = max(0, min(value, self.k))
            if bounded != value:
                clamped += 1
            sanitized.append(bounded)
        self.last_requests_clamped = clamped
        self.last_rho_clamped = False
        requests = sorted(sanitized, reverse=True)
        n_nacks = len(requests)
        if n_nacks > self.num_nack:
            # Raise rho so the (numNACK+1)-th neediest user would have
            # recovered within round one.
            extra = requests[self.num_nack]
            wanted = (extra + math.ceil(self.k * self.rho)) / self.k
            if wanted > self.rho_max:
                self.last_rho_clamped = True
            self.rho = min(wanted, self.rho_max)
        elif n_nacks < self.num_nack:
            # Possibly decay by one parity packet.
            probability = max(
                0.0, (self.num_nack - n_nacks * 2) / self.num_nack
            )
            if probability > 0.0 and self._random() < probability:
                self.rho = max(0.0, math.ceil(self.k * self.rho - 1) / self.k)
        return self.rho

    @property
    def parity_per_block(self):
        """Proactive parity packets the next message sends per block."""
        return proactive_parity_count(self.rho, self.k)

    def __repr__(self):
        return "ProactivityController(k=%d, rho=%.3f, num_nack=%d)" % (
            self.k,
            self.rho,
            self.num_nack,
        )


class NumNackController:
    """Adapts the NACK target ``numNACK`` from deadline outcomes."""

    def __init__(self, num_nack=20, max_nack=100):
        check_non_negative("num_nack", num_nack, integral=True)
        check_non_negative("max_nack", max_nack, integral=True)
        self.num_nack = int(num_nack)
        self.max_nack = int(max_nack)

    def update(self, users_missing_deadline):
        """One rekey message completed; adapt the target.

        Returns the new ``numNACK``.
        """
        check_non_negative(
            "users_missing_deadline", users_missing_deadline, integral=True
        )
        if users_missing_deadline == 0:
            self.num_nack = min(self.num_nack + 1, self.max_nack)
        else:
            self.num_nack = max(self.num_nack - users_missing_deadline, 0)
        return self.num_nack

    def __repr__(self):
        return "NumNackController(num_nack=%d, max_nack=%d)" % (
            self.num_nack,
            self.max_nack,
        )
