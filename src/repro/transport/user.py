"""User-side transport protocol (Fig. 3 / Fig. 27 of the companion text).

Per rekey message a user succeeds by any of:

1. receiving its *specific* ENC packet (the one whose
   ``<frmID, toID>`` interval covers the user's ID);
2. collecting at least ``k`` packets (ENC or PARITY) of the block that
   contains its specific packet, FEC-decoding the block and finding the
   packet inside;
3. receiving a USR packet during the unicast phase.

A user that lost its specific packet may not know the block to ask for;
the :class:`~repro.rekey.estimate.BlockIdEstimator` narrows the range
from received packets (including packets recovered by decoding other
blocks), and the user NACKs every block still in range.
"""

from __future__ import annotations

from repro.errors import NotEnoughPacketsError, TransportError
from repro.fec.rse import RSECoder
from repro.rekey.estimate import BlockIdEstimator
from repro.rekey.message import RekeyMessage
from repro.rekey.packets import NackPacket, NackRequest
from repro.util.validation import check_non_negative, check_positive


class UserTransport:
    """Receiver state machine for one rekey message."""

    def __init__(self, user_id, k, degree, n_blocks, message_id, coder=None):
        check_non_negative("user_id", user_id, integral=True)
        check_positive("k", k, integral=True)
        check_positive("n_blocks", n_blocks, integral=True)
        self.user_id = int(user_id)
        self.k = int(k)
        self.n_blocks = int(n_blocks)
        self.message_id = int(message_id)
        self._coder = coder or RSECoder(self.k)
        self._estimator = BlockIdEstimator(user_id, k, degree)
        self._payloads = {}  # block_id -> {codeword index -> payload}
        self._decoded_blocks = set()
        self.specific_packet = None
        self.usr_packet = None
        self.recovery_round = None  # 1-based multicast round; 0 = unicast
        self._current_round = 1

    # -- status ----------------------------------------------------------

    @property
    def done(self):
        """True once the user's encryptions are recovered."""
        return self.specific_packet is not None or self.usr_packet is not None

    @property
    def recovered_encryptions(self):
        """The encryptions recovered (from ENC or USR), or None."""
        if self.usr_packet is not None:
            return list(self.usr_packet.encryptions)
        if self.specific_packet is not None:
            return list(self.specific_packet.encryptions)
        return None

    # -- packet ingestion --------------------------------------------------

    def _check_message(self, packet):
        if packet.rekey_message_id != self.message_id:
            raise TransportError(
                "packet for message %d delivered to session %d"
                % (packet.rekey_message_id, self.message_id)
            )

    def on_enc(self, packet, payload):
        """Receive one ENC packet (``payload`` = its FEC-covered bytes)."""
        self._check_message(packet)
        if self.done:
            return
        block = self._payloads.setdefault(packet.block_id, {})
        block[packet.seq_in_block] = payload
        self._estimator.observe(packet)
        if packet.covers_user(self.user_id):
            self.specific_packet = packet
            self.recovery_round = self._current_round

    def on_parity(self, packet):
        """Receive one PARITY packet."""
        self._check_message(packet)
        if self.done:
            return
        block = self._payloads.setdefault(packet.block_id, {})
        block[packet.seq_in_block] = packet.payload

    def on_usr(self, packet):
        """Receive a unicast USR packet — immediate success."""
        self._check_message(packet)
        if packet.user_id != self.user_id:
            raise TransportError(
                "USR packet for user %d delivered to user %d"
                % (packet.user_id, self.user_id)
            )
        if self.done:
            return
        self.usr_packet = packet
        self.recovery_round = 0

    # -- round boundary ------------------------------------------------------

    def _try_decode(self, block_id):
        """FEC-decode one block; feed recovered ENC packets back in."""
        if block_id in self._decoded_blocks:
            return
        received = self._payloads.get(block_id, {})
        if len(received) < self.k:
            return
        try:
            payloads = self._coder.decode(dict(received))
        except NotEnoughPacketsError:  # pragma: no cover - guarded above
            return
        self._decoded_blocks.add(block_id)
        for seq, payload in enumerate(payloads):
            packet = RekeyMessage.rebuild_enc_packet(
                self.message_id, block_id, seq, payload
            )
            # Recovered packets tighten the estimator and may be ours.
            self._estimator.observe(packet)
            if packet.covers_user(self.user_id) and not self.done:
                self.specific_packet = packet
                self.recovery_round = self._current_round

    def end_of_round(self):
        """Round timeout: attempt recovery, emit a NACK if still short.

        Returns a :class:`NackPacket` or None (success or nothing
        recoverable to report).
        """
        if not self.done:
            for block_id in self._estimator.blocks_to_request(self.n_blocks):
                self._try_decode(block_id)
                if self.done:
                    break
        nack = None
        if not self.done:
            requests = []
            for block_id in self._estimator.blocks_to_request(self.n_blocks):
                have = len(self._payloads.get(block_id, {}))
                shortfall = self.k - have
                if shortfall > 0:
                    requests.append(
                        NackRequest(block_id=block_id, n_parity=shortfall)
                    )
            if requests:
                nack = NackPacket(
                    rekey_message_id=self.message_id,
                    user_id=self.user_id,
                    requests=tuple(requests),
                )
        self._current_round += 1
        return nack

    def __repr__(self):
        return "UserTransport(user=%d, done=%s, round=%d)" % (
            self.user_id,
            self.done,
            self._current_round,
        )
