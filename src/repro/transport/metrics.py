"""Metric containers shared by the session and fleet simulators.

The paper's evaluation metrics, with their exact definitions:

- **server bandwidth overhead** ``h'/h``: total packets *multicast* (ENC
  slots including last-block duplicates, plus every PARITY packet in
  every round) divided by the number of distinct ENC packets in the
  rekey message (§5.2);
- **NACKs of first round**: NACK packets arriving after round 1 (§6.1);
- **rounds for all users** / **rounds needed by a user**: multicast
  rounds until the last / each user recovered (§6.1);
- **users missing deadline**: users not recovered within the deadline
  (in rounds) by multicast (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RoundStats:
    """One multicast round of one rekey message."""

    round_index: int
    enc_packets_sent: int
    parity_packets_sent: int
    nacks_received: int
    users_recovered_total: int

    @property
    def packets_sent(self):
        return self.enc_packets_sent + self.parity_packets_sent


@dataclass
class UnicastStats:
    """The unicast mop-up phase of one rekey message."""

    users_served: int = 0
    usr_packets_sent: int = 0
    usr_bytes_sent: int = 0
    attempts: int = 0


@dataclass
class MessageStats:
    """Everything measured while delivering one rekey message."""

    message_index: int
    n_enc_packets: int
    n_blocks: int
    k: int
    rho: float
    rounds: list = field(default_factory=list)
    unicast: UnicastStats = field(default_factory=UnicastStats)
    #: per-user multicast round of recovery (1-based); 0 = recovered by
    #: unicast only
    user_rounds: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=int)
    )
    n_users: int = 0
    #: users who recovered by receiving their specific ENC packet
    #: directly (no FEC decoding work at all)
    n_recovered_direct: int = 0
    #: users who needed to FEC-decode their block
    n_recovered_decode: int = 0

    @property
    def total_multicast_packets(self):
        return sum(r.packets_sent for r in self.rounds)

    @property
    def bandwidth_overhead(self):
        """The paper's ``h'/h`` server bandwidth overhead."""
        if self.n_enc_packets == 0:
            return 0.0
        return self.total_multicast_packets / self.n_enc_packets

    @property
    def first_round_nacks(self):
        return self.rounds[0].nacks_received if self.rounds else 0

    @property
    def n_multicast_rounds(self):
        return len(self.rounds)

    @property
    def rounds_for_all_users(self):
        """Multicast rounds until every user recovered.

        Users finished only by unicast count as needing one round more
        than the last multicast round (they were still waiting when
        multicast stopped).
        """
        if self.n_users == 0:
            return 0
        if np.any(self.user_rounds == 0):
            return self.n_multicast_rounds + 1
        return int(self.user_rounds.max())

    @property
    def mean_rounds_per_user(self):
        """Average multicast rounds a user needed (unicast-recovered
        users count as ``n_multicast_rounds + 1``)."""
        if self.n_users == 0:
            return 0.0
        rounds = np.where(
            self.user_rounds == 0,
            self.n_multicast_rounds + 1,
            self.user_rounds,
        )
        return float(rounds.mean())

    @property
    def decode_fraction(self):
        """Fraction of users that had to run the RSE decoder (§5.2's
        'vast majority ... do not have any decoding overhead')."""
        recovered = self.n_recovered_direct + self.n_recovered_decode
        if recovered == 0:
            return 0.0
        return self.n_recovered_decode / recovered

    def users_missing_deadline(self, deadline_rounds):
        """Users not recovered by multicast within the deadline."""
        if self.n_users == 0:
            return 0
        recovered_in_time = (self.user_rounds > 0) & (
            self.user_rounds <= deadline_rounds
        )
        return int(self.n_users - recovered_in_time.sum())


@dataclass
class SequenceStats:
    """A sequence of rekey messages under adaptive control."""

    messages: list = field(default_factory=list)
    rho_trajectory: list = field(default_factory=list)
    num_nack_trajectory: list = field(default_factory=list)
    deadline_misses: list = field(default_factory=list)

    def append(self, message_stats, rho, num_nack, misses):
        self.messages.append(message_stats)
        self.rho_trajectory.append(rho)
        self.num_nack_trajectory.append(num_nack)
        self.deadline_misses.append(misses)

    @property
    def n_messages(self):
        return len(self.messages)

    def first_round_nacks(self):
        return [m.first_round_nacks for m in self.messages]

    def bandwidth_overheads(self):
        return [m.bandwidth_overhead for m in self.messages]

    def mean_bandwidth_overhead(self, skip=0):
        values = self.bandwidth_overheads()[skip:]
        return float(np.mean(values)) if values else 0.0

    def mean_first_round_nacks(self, skip=0):
        values = self.first_round_nacks()[skip:]
        return float(np.mean(values)) if values else 0.0

    def mean_rounds_for_all(self, skip=0):
        values = [m.rounds_for_all_users for m in self.messages[skip:]]
        return float(np.mean(values)) if values else 0.0

    def mean_rounds_per_user(self, skip=0):
        values = [m.mean_rounds_per_user for m in self.messages[skip:]]
        return float(np.mean(values)) if values else 0.0

    def digest(self):
        """SHA-256 over a canonical rendering of every recorded number.

        Two runs produce the same digest iff every per-round counter,
        per-user recovery round and adaptive-control step matched
        exactly — the regression anchor for simulator determinism.
        Floats are rendered with ``%.12g`` so the digest is stable
        across platforms that agree to within representation noise.
        """
        import hashlib
        import json

        def f(value):
            return "%.12g" % float(value)

        payload = {
            "rho": [f(r) for r in self.rho_trajectory],
            "num_nack": [int(n) for n in self.num_nack_trajectory],
            "deadline_misses": [int(m) for m in self.deadline_misses],
            "messages": [
                {
                    "index": int(m.message_index),
                    "enc": int(m.n_enc_packets),
                    "blocks": int(m.n_blocks),
                    "k": int(m.k),
                    "rho": f(m.rho),
                    "users": int(m.n_users),
                    "direct": int(m.n_recovered_direct),
                    "decode": int(m.n_recovered_decode),
                    "rounds": [
                        [
                            int(r.round_index),
                            int(r.enc_packets_sent),
                            int(r.parity_packets_sent),
                            int(r.nacks_received),
                            int(r.users_recovered_total),
                        ]
                        for r in m.rounds
                    ],
                    "unicast": [
                        int(m.unicast.users_served),
                        int(m.unicast.usr_packets_sent),
                        int(m.unicast.usr_bytes_sent),
                        int(m.unicast.attempts),
                    ],
                    "user_rounds": [int(r) for r in m.user_rounds],
                }
                for m in self.messages
            ],
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()
