"""Rekey transport: proactive-FEC multicast with a unicast tail.

The server protocol for one rekey message (Fig. 2 of the companion
text):

1. pack encryptions into ENC packets (UKA), partition into blocks;
2. multicast ``k`` ENC + ``ceil((rho - 1) * k)`` proactive PARITY
   packets per block, block-interleaved;
3. collect NACKs for a round; adjust the proactivity factor ``rho``
   (for the *next* message) from the first round's NACKs; multicast
   ``amax[i]`` new PARITY packets per block each further round;
4. switch to unicast of per-user USR packets (with escalating
   duplication) after at most two multicast rounds.

Two implementations share the same protocol logic:

- the **object-level session** (:mod:`repro.transport.session`) moves
  real byte packets through the loss topology — used by tests, examples
  and small-N validation;
- the **fleet simulator** (:mod:`repro.transport.fleet`) is a
  numpy-vectorised equivalent for N = 4096-scale parameter sweeps — the
  engine behind the figure benchmarks.  Equivalence is asserted in
  ``tests/transport/test_fleet_equivalence.py``.
"""

from repro.transport.adaptive import (
    NumNackController,
    ProactivityController,
    proactive_parity_count,
)
from repro.transport.metrics import (
    MessageStats,
    RoundStats,
    SequenceStats,
    UnicastStats,
)
from repro.transport.user import UserTransport
from repro.transport.server import ServerTransport, UnicastPolicy
from repro.transport.session import RekeySession, SessionConfig
from repro.transport.fleet import FleetConfig, FleetSimulator, FleetWorkload
from repro.transport.immediate import (
    ImmediateConfig,
    ImmediateFeedbackSession,
    ImmediateStats,
)
from repro.transport.trace import SessionTrace, TraceEvent

__all__ = [
    "FleetConfig",
    "FleetSimulator",
    "FleetWorkload",
    "ImmediateConfig",
    "ImmediateFeedbackSession",
    "ImmediateStats",
    "MessageStats",
    "NumNackController",
    "ProactivityController",
    "RekeySession",
    "RoundStats",
    "SequenceStats",
    "ServerTransport",
    "SessionConfig",
    "SessionTrace",
    "TraceEvent",
    "UnicastPolicy",
    "UnicastStats",
    "UserTransport",
    "proactive_parity_count",
]
