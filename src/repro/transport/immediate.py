"""Event-driven immediate-feedback transport (Appendix A's variant).

The round-based protocol waits a full round (≥ max RTT over all users)
before reacting to anything.  The companion text notes the alternative:
*"it is feasible for a user to send a NACK as soon as it detects a
loss, and for the server to multicast PARITY packets as soon as it
receives a NACK"*, with duplicate-request suppression by carrying *"the
maximum sequence number of the packets received by the user in a
specific block"* (Rubenstein et al.'s idea).

This module implements that variant on the discrete-event loop:

- the server streams the round-one schedule at the sending interval and
  thereafter transmits parity on demand, serialised through one send
  queue;
- each user has a fixed propagation delay; packets traverse the
  source-link chain plus the user's receiver chain (sampled in event
  time, so burst correlation is exact);
- a user NACKs its block the moment it can prove the block's round-one
  transmission has passed it by (it sees a packet scheduled *after* its
  block's last packet) while still short of ``k`` codewords — and again
  whenever new evidence arrives after its outstanding request was
  consumed;
- the server suppresses duplicate work: a NACK asking for ``a`` packets
  with max-seen sequence ``s`` is served only to the extent that fewer
  than ``a`` already-sent codewords with sequence > ``s`` are in flight.

Metrics are wall-clock completion times, directly comparable with the
round-based session's round counts (bench A04).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TransportError
from repro.sim.events import EventLoop
from repro.transport.adaptive import proactive_parity_count
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive


@dataclass
class ImmediateConfig:
    """Parameters of the immediate-feedback delivery."""

    rho: float = 1.0
    sending_interval_ms: float = 100.0
    min_delay_ms: float = 20.0
    max_delay_ms: float = 120.0
    #: extra guard before a user re-NACKs after an unanswered request
    renack_timeout_ms: float = 400.0
    max_parity_rows: int = 200
    deadline_s: float = 60.0


@dataclass
class ImmediateStats:
    """Outcome of one immediate-feedback delivery."""

    completion_times: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    packets_sent: int = 0
    nacks_sent: int = 0
    duplicate_nacks_suppressed: int = 0

    @property
    def mean_completion(self):
        return float(self.completion_times.mean())

    @property
    def worst_completion(self):
        return float(self.completion_times.max())


class _UserState:
    __slots__ = (
        "index",
        "block",
        "has_own",
        "count",
        "max_seq",
        "done_at",
        "nack_outstanding_until",
    )

    def __init__(self, index, block):
        self.index = index
        self.block = block
        self.has_own = False
        self.count = 0
        self.max_seq = -1
        self.done_at = None
        self.nack_outstanding_until = -1.0


class ImmediateFeedbackSession:
    """Runs one workload to completion with immediate feedback."""

    def __init__(self, workload, topology, config=None, rng=None):
        self.workload = workload
        self.topology = topology
        self.config = config or ImmediateConfig()
        self._rng = rng if rng is not None else spawn_rng()
        if topology.n_users != workload.n_users:
            raise TransportError(
                "topology serves %d users, workload needs %d"
                % (topology.n_users, workload.n_users)
            )
        check_positive(
            "sending_interval_ms", self.config.sending_interval_ms
        )
        self._interval = self.config.sending_interval_ms * 1e-3

    # -- main entry -------------------------------------------------------

    def run(self):
        """Run to completion; returns :class:`ImmediateStats`."""
        workload = self.workload
        config = self.config
        rng = self._rng
        loop = EventLoop()
        n_users = workload.n_users
        k = workload.k
        n_blocks = workload.n_blocks

        # Per-user fixed propagation delays and loss chains.
        delays = rng.uniform(
            config.min_delay_ms * 1e-3,
            config.max_delay_ms * 1e-3,
            size=n_users,
        )
        rows = rng.permutation(n_users)
        source_chain = self.topology.params.make_process(
            self.topology.params.p_source
        ).stepper(rng)
        user_chains = []
        for index in range(n_users):
            rate = self.topology.user_loss_rate(int(rows[index]))
            user_chains.append(
                self.topology.params.make_process(rate).stepper(
                    np.random.default_rng(rng.integers(0, 2**63))
                )
            )

        users = [
            _UserState(index, int(workload.block_of_user[index]))
            for index in range(n_users)
        ]
        pending = set(range(n_users))
        stats = ImmediateStats(completion_times=np.zeros(n_users))

        parity = proactive_parity_count(config.rho, k)
        per_block = k + parity
        # Round-one schedule: interleaved, global position order.
        schedule = [
            (block, slot)
            for slot in range(per_block)
            for block in range(n_blocks)
        ]
        #: position of each block's last round-one packet
        last_position = {}
        for position, (block, _) in enumerate(schedule):
            last_position[block] = position
        rows_used = [parity] * n_blocks  # parity rows consumed per block
        # Per block: (codeword seq, in-flight expiry) of every codeword
        # *enqueued* — recorded at enqueue time so that repairs waiting
        # in the send queue already suppress duplicate NACK service.
        sent_records = [[] for _ in range(n_blocks)]
        server = {"next_free": 0.0}
        # A codeword counts as in flight until a re-NACK could plausibly
        # have been provoked by its loss: the (queue-aware) transmit
        # time + two propagation legs + the re-NACK guard.
        inflight_margin = (
            config.renack_timeout_ms * 1e-3
            + 2 * config.max_delay_ms * 1e-3
            + self._interval
        )

        def finish(user, when):
            user.done_at = when
            stats.completion_times[user.index] = when
            pending.discard(user.index)

        def send_packet(block, seq, position=None):
            """Serialise through the server's send queue."""
            when = max(loop.now, server["next_free"])
            server["next_free"] = when + self._interval
            sent_records[block].append((seq, when + inflight_margin))
            loop.schedule_at(when, transmit, block, seq, position)

        def transmit(block, seq, position):
            stats.packets_sent += 1
            own_plan = None
            if seq < k:
                own_plan = int(workload.slot_plan[block * k + seq])
            if source_chain.is_lost(loop.now):
                return
            # Sample receiver chains at transmit time (the chains are
            # link conditions; the propagation delay shifts arrival).
            for index in list(pending):
                user = users[index]
                if user_chains[index].is_lost(loop.now):
                    continue
                loop.schedule_at(
                    loop.now + delays[index],
                    arrive,
                    index,
                    block,
                    seq,
                    own_plan,
                    position,
                )

        def arrive(index, block, seq, own_plan, position):
            user = users[index]
            if user.done_at is not None:
                return
            if own_plan is not None and own_plan == int(
                workload.plan_of_user[index]
            ):
                user.has_own = True
                finish(user, loop.now)
                return
            if block == user.block:
                user.count += 1
                user.max_seq = max(user.max_seq, seq)
                if user.count >= k:
                    finish(user, loop.now)
                    return
            # Loss detection: any packet scheduled after my block's
            # round-one transmission proves the block has gone past.
            if position is not None and position > last_position[user.block]:
                maybe_nack(user)
            elif position is None and block == user.block:
                # Repair traffic for my block that still leaves me short
                # re-arms detection immediately.
                maybe_nack(user)

        def maybe_nack(user):
            if user.done_at is not None or user.count >= k:
                return
            if loop.now < user.nack_outstanding_until:
                return
            user.nack_outstanding_until = (
                loop.now + self.config.renack_timeout_ms * 1e-3
            )
            loop.schedule_at(
                loop.now + delays[user.index], server_nack, user.index
            )

        def server_nack(index):
            user = users[index]
            if user.done_at is not None:
                return
            stats.nacks_sent += 1
            block = user.block
            need = k - user.count
            # Suppression: repair rows still in flight for this block
            # (queued or travelling) may yet reach the user; only the
            # shortfall beyond them is new work.  (Rubenstein's max-seq
            # rule orders *sequenced* data; for erasure codewords any
            # unseen row helps, so counting whole in-flight repair rows
            # aggregates concurrent NACKs the way round-based amax
            # does.)
            outstanding = sum(
                1
                for seq, expiry in sent_records[block]
                if seq >= k + parity and expiry > loop.now
            )
            fresh = need - outstanding
            if fresh <= 0:
                stats.duplicate_nacks_suppressed += 1
                return
            for _ in range(fresh):
                if rows_used[block] >= self.config.max_parity_rows:
                    raise TransportError("parity row budget exhausted")
                seq = k + rows_used[block]
                rows_used[block] += 1
                send_packet(block, seq, position=None)

        def watchdog(index):
            """Detection of last resort: a user that heard *nothing*
            after its block still re-NACKs on a timer."""
            user = users[index]
            if user.done_at is not None:
                return
            maybe_nack(user)
            loop.schedule(
                config.renack_timeout_ms * 1e-3, watchdog, index
            )

        # Kick off round one.
        for position, (block, slot) in enumerate(schedule):
            send_packet(block, slot, position)
        round_one_span = len(schedule) * self._interval
        for index in range(n_users):
            loop.schedule_at(
                round_one_span
                + delays[index]
                + config.renack_timeout_ms * 1e-3,
                watchdog,
                index,
            )

        loop.run(until=self.config.deadline_s)
        if pending:
            raise TransportError(
                "%d users still pending at the deadline" % len(pending)
            )
        return stats
