"""Vectorised transport simulator for large-N parameter sweeps.

Implements exactly the protocol of :mod:`repro.transport.session`, but
over numpy arrays instead of per-user objects: reception matrices come
straight from the loss chains, block counters are matrix products, and
recovery conditions are boolean reductions.  One simplification is made
(and documented): users are assumed to NACK their *true* block — the
block-ID estimator pins the exact block except with probability ~p²
(Appendix D), which perturbs NACK contents negligibly at the paper's
loss rates.  Everything else — UKA packing, last-block duplicates,
interleaving, proactive/reactive parity, AdjustRho, numNACK adaptation,
deadline accounting, unicast escalation — matches the object-level
session, and ``tests/transport/test_fleet_equivalence.py`` holds the two
implementations together statistically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TransportError
from repro.keytree.marking import MarkingAlgorithm
from repro.keytree.tree import KeyTree
from repro.rekey.assignment import UserOrientedKeyAssignment
from repro.rekey.blocks import BlockPartition
from repro.rekey.packets import DEFAULT_ENC_PACKET_SIZE
from repro.transport.adaptive import (
    NumNackController,
    ProactivityController,
    proactive_parity_count,
)
from repro.transport.metrics import (
    MessageStats,
    RoundStats,
    SequenceStats,
    UnicastStats,
)
from repro.util.rng import RandomSource
from repro.util.validation import check_positive


class FleetWorkload:
    """The plan-level shape of one rekey message.

    Arrays (all indexed by *active user* — a user that needs at least
    one encryption this interval):

    - ``plan_of_user``: which ENC packet carries the user's encryptions;
    - ``block_of_user``: which FEC block that packet sits in;
    - ``usr_packet_bytes``: size of the user's USR packet (for unicast
      byte accounting).
    """

    def __init__(self, n_enc_packets, k, plan_of_user, usr_packet_bytes=None):
        check_positive("n_enc_packets", n_enc_packets, integral=True)
        check_positive("k", k, integral=True)
        self.n_enc_packets = int(n_enc_packets)
        self.k = int(k)
        self.partition = BlockPartition(self.n_enc_packets, self.k)
        self.n_blocks = self.partition.n_blocks
        self.plan_of_user = np.asarray(plan_of_user, dtype=int)
        if self.plan_of_user.size == 0:
            raise TransportError("workload has no active users")
        if self.plan_of_user.min() < 0 or (
            self.plan_of_user.max() >= self.n_enc_packets
        ):
            raise TransportError("plan_of_user indexes out of range")
        self.block_of_user = self.plan_of_user // self.k
        if usr_packet_bytes is None:
            usr_packet_bytes = np.full(self.plan_of_user.shape, 70)
        self.usr_packet_bytes = np.asarray(usr_packet_bytes, dtype=int)
        # slot arrays in block-major order (incl. last-block duplicates)
        slots = self.partition.slots
        self.slot_block = np.array([s.block_id for s in slots], dtype=int)
        self.slot_seq = np.array([s.seq_in_block for s in slots], dtype=int)
        self.slot_plan = np.array([s.plan_index for s in slots], dtype=int)

    @property
    def n_users(self):
        return int(self.plan_of_user.size)

    @classmethod
    def from_batch(cls, batch_result, k, packet_size=DEFAULT_ENC_PACKET_SIZE):
        """Build from a marking-algorithm result (keyless is fine)."""
        needs = batch_result.needs_by_user()
        if not needs:
            raise TransportError("batch produced an empty rekey message")
        assignment = UserOrientedKeyAssignment(packet_size=packet_size).assign(
            needs
        )
        plan_by_uid = {}
        for plan in assignment.plans:
            for user_id in plan.user_ids:
                plan_by_uid[user_id] = plan.index
        user_ids = sorted(needs)
        plan_of_user = [plan_by_uid[u] for u in user_ids]
        usr_bytes = [4 + 22 * len(needs[u]) for u in user_ids]
        return cls(
            n_enc_packets=assignment.n_packets,
            k=k,
            plan_of_user=plan_of_user,
            usr_packet_bytes=usr_bytes,
        )


def make_paper_workload(
    n_users=4096,
    degree=4,
    n_joins=0,
    n_leaves=None,
    k=10,
    packet_size=DEFAULT_ENC_PACKET_SIZE,
    seed=0,
):
    """The paper's default workload: N users, J joins, L = N/d leaves."""
    if n_leaves is None:
        n_leaves = n_users // degree
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(n_users)]
    tree = KeyTree.full_balanced(users, degree)
    leaves = [users[i] for i in rng.choice(n_users, n_leaves, replace=False)]
    joins = ["j%d" % i for i in range(n_joins)]
    batch = MarkingAlgorithm().apply(tree, joins=joins, leaves=leaves)
    return FleetWorkload.from_batch(batch, k, packet_size=packet_size)


@dataclass
class FleetConfig:
    """Protocol parameters for fleet runs (paper defaults)."""

    rho: float = 1.0
    num_nack: int = 20
    max_nack: int = 100
    adapt_rho: bool = True
    sending_interval_ms: float = 100.0
    round_gap_ms: float = 500.0
    multicast_only: bool = False
    max_multicast_rounds: int = 2
    deadline_rounds: int = 2
    adapt_num_nack: bool = False
    unicast_duplicate_interval_ms: float = 50.0
    max_unicast_attempts: int = 40
    max_rounds_safety: int = 64
    packet_size: int = DEFAULT_ENC_PACKET_SIZE
    #: False sends each block's packets back to back instead of
    #: round-robin across blocks — the ablation of §5.1's interleaving.
    interleave: bool = True


class FleetSimulator:
    """Runs rekey-message sequences over a topology, vectorised."""

    def __init__(self, topology, config=None, seed=None):
        self.topology = topology
        self.config = config or FleetConfig()
        self._random_source = (
            RandomSource(seed) if seed is not None else RandomSource()
        )
        self.rho_controller = ProactivityController(
            k=1,  # re-bound per message (k comes from the workload)
            rho=self.config.rho,
            num_nack=self.config.num_nack,
            rng=self._random_source.generator(),
        )
        self.nack_controller = NumNackController(
            num_nack=self.config.num_nack, max_nack=self.config.max_nack
        )

    # -- single message -----------------------------------------------------

    def run_message(self, workload, rho=None, message_index=0, rng=None):
        """Deliver one message; returns (MessageStats, first_round_A)."""
        config = self.config
        if rho is None:
            rho = self.rho_controller.rho
        if rng is None:
            rng = self._random_source.generator()
        n_users = workload.n_users
        if self.topology.n_users != n_users:
            raise TransportError(
                "topology has %d users; workload needs %d"
                % (self.topology.n_users, n_users)
            )
        rows = rng.permutation(n_users)
        interval = config.sending_interval_ms * 1e-3

        stats = MessageStats(
            message_index=message_index,
            n_enc_packets=workload.n_enc_packets,
            n_blocks=workload.n_blocks,
            k=workload.k,
            rho=float(rho),
            n_users=n_users,
        )
        k = workload.k
        n_blocks = workload.n_blocks
        counts = np.zeros((n_users, n_blocks), dtype=np.int32)
        got_own = np.zeros(n_users, dtype=bool)
        user_round = np.zeros(n_users, dtype=int)
        first_round_requests = []
        clock = 0.0
        amax = np.zeros(n_blocks, dtype=int)
        round_index = 0

        while True:
            round_index += 1
            if round_index > config.max_rounds_safety:
                raise TransportError(
                    "round cap exceeded: protocol is not converging"
                )
            if round_index == 1:
                parity = proactive_parity_count(rho, k)
                send_block, send_plan, n_enc_sent = self._round_one_order(
                    workload, parity, interleave=config.interleave
                )
            else:
                send_block, send_plan, n_enc_sent = self._parity_order(
                    amax, interleave=config.interleave
                )
                if send_block.size == 0:
                    raise TransportError(
                        "nothing to retransmit while users are pending"
                    )
            times = clock + np.arange(send_block.size) * interval
            received = self.topology.multicast_reception(times, rng=rng)[rows]
            # Update per-block codeword counts for everyone still active.
            indicator = np.zeros((send_block.size, n_blocks), dtype=np.int32)
            indicator[np.arange(send_block.size), send_block] = 1
            counts += received.astype(np.int32) @ indicator
            # Own-ENC reception (round 1 only carries ENC packets).
            if send_plan is not None:
                own_columns = (
                    send_plan[None, :] == workload.plan_of_user[:, None]
                )
                got_own |= (received & own_columns).any(axis=1)
            decoded = counts[np.arange(n_users), workload.block_of_user] >= k
            done = got_own | decoded
            newly_done = done & (user_round == 0)
            user_round[newly_done] = round_index

            pending = ~done
            shortfall = k - counts[np.arange(n_users), workload.block_of_user]
            nacks = int(pending.sum())
            if round_index == 1:
                first_round_requests = shortfall[pending].tolist()
            amax = np.zeros(n_blocks, dtype=int)
            if nacks:
                np.maximum.at(
                    amax,
                    workload.block_of_user[pending],
                    shortfall[pending],
                )
            stats.rounds.append(
                RoundStats(
                    round_index=round_index,
                    enc_packets_sent=n_enc_sent,
                    parity_packets_sent=int(send_block.size) - n_enc_sent,
                    nacks_received=nacks,
                    users_recovered_total=int(done.sum()),
                )
            )
            clock = float(times[-1]) + config.round_gap_ms * 1e-3
            if not nacks:
                break
            if (
                not config.multicast_only
                and round_index >= config.max_multicast_rounds
            ):
                self._run_unicast(
                    workload, np.flatnonzero(pending), rows, clock, rng,
                    stats.unicast,
                )
                break

        stats.user_rounds = user_round
        # Recovery-mode accounting (§5.2): direct reception of the
        # specific packet vs FEC decoding.  A user with both paths
        # available counts as direct (it never runs the decoder).
        finished = user_round > 0
        stats.n_recovered_direct = int((got_own & finished).sum())
        stats.n_recovered_decode = int((~got_own & finished).sum())
        return stats, first_round_requests

    @staticmethod
    def _round_one_order(workload, parity_per_block, interleave=True):
        """Round-1 send order: returns (block, plan, n_enc).

        Interleaved (the protocol's choice) spreads a block's packets
        ``n_blocks`` sending-intervals apart; sequential sends each
        block back to back (the ablation baseline, vulnerable to burst
        loss taking out a whole block).
        """
        k = workload.k
        n_blocks = workload.n_blocks
        per_block = k + parity_per_block
        blocks = []
        plans = []
        if interleave:
            positions = (
                (slot, block_id)
                for slot in range(per_block)
                for block_id in range(n_blocks)
            )
        else:
            positions = (
                (slot, block_id)
                for block_id in range(n_blocks)
                for slot in range(per_block)
            )
        for slot, block_id in positions:
            blocks.append(block_id)
            if slot < k:
                plans.append(workload.slot_plan[block_id * k + slot])
            else:
                plans.append(-1)
        send_plan = np.array(plans, dtype=int)
        return (
            np.array(blocks, dtype=int),
            send_plan,
            int((send_plan >= 0).sum()),
        )

    @staticmethod
    def _parity_order(amax, interleave=True):
        """Retransmission order for per-block parity counts."""
        blocks = []
        depth = int(amax.max()) if amax.size else 0
        if interleave:
            for slot in range(depth):
                for block_id, count in enumerate(amax):
                    if slot < count:
                        blocks.append(block_id)
        else:
            for block_id, count in enumerate(amax):
                blocks.extend([block_id] * int(count))
        return np.array(blocks, dtype=int), None, 0

    def _run_unicast(self, workload, pending_idx, rows, clock, rng, unicast):
        """Escalating duplicated USR packets (§7.2)."""
        config = self.config
        interval = config.unicast_duplicate_interval_ms * 1e-3
        duplicates = 2
        remaining = list(pending_idx)
        attempts = 0
        while remaining:
            attempts += 1
            if attempts > config.max_unicast_attempts:
                raise TransportError("unicast did not converge")
            still = []
            for user in remaining:
                times = clock + np.arange(duplicates) * interval
                got = self.topology.unicast_reception(
                    int(rows[user]), times, rng=rng
                )
                unicast.usr_packets_sent += duplicates
                unicast.usr_bytes_sent += duplicates * int(
                    workload.usr_packet_bytes[user]
                )
                if got.any():
                    unicast.users_served += 1
                else:
                    still.append(user)
            remaining = still
            clock += duplicates * interval + 0.2
            duplicates += 1
        unicast.attempts = attempts

    # -- adaptive sequences ----------------------------------------------------

    def run_sequence(self, workload_factory, n_messages):
        """Run ``n_messages`` under adaptive rho / numNACK control.

        ``workload_factory(message_index)`` returns the FleetWorkload for
        each message (it may return the same object every time).
        """
        check_positive("n_messages", n_messages, integral=True)
        sequence = SequenceStats()
        for index in range(n_messages):
            workload = workload_factory(index)
            self.rho_controller.k = workload.k
            rho_used = self.rho_controller.rho
            stats, requests = self.run_message(
                workload, rho=rho_used, message_index=index
            )
            misses = stats.users_missing_deadline(self.config.deadline_rounds)
            if self.config.adapt_rho:
                self.rho_controller.update(requests)
            if self.config.adapt_num_nack:
                self.nack_controller.update(misses)
                self.rho_controller.num_nack = self.nack_controller.num_nack
            sequence.append(
                stats,
                rho=rho_used,
                num_nack=self.rho_controller.num_nack,
                misses=misses,
            )
        return sequence
