"""Object-level simulation of one rekey message's delivery.

:class:`RekeySession` moves real byte packets from a
:class:`~repro.transport.server.ServerTransport` through a
:class:`~repro.sim.topology.MulticastTopology` into
:class:`~repro.transport.user.UserTransport` state machines, round by
round, then runs the unicast mop-up.  It is the reference
implementation: exact wire formats, real FEC decoding, real block-ID
estimation.  (For 4096-user parameter sweeps use the vectorised
:mod:`~repro.transport.fleet` — equivalence is tested.)

Loss chains are independent per round; rounds are separated by
``round_gap_ms`` (≥ several burst times), so this matches the bursty
model's behaviour at round boundaries while keeping the within-round
burst correlation that block interleaving is designed to beat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TransportError
from repro.obs.recorder import NULL
from repro.rekey.packets import PacketType
from repro.transport.metrics import MessageStats, RoundStats, UnicastStats
from repro.transport.server import ServerTransport, UnicastPolicy
from repro.transport.user import UserTransport
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive


@dataclass
class SessionConfig:
    """Parameters of one delivery session (paper defaults)."""

    rho: float = 1.0
    sending_interval_ms: float = 100.0
    round_gap_ms: float = 500.0
    multicast_only: bool = False
    max_multicast_rounds: int = 2
    compare_usr_bytes: bool = False
    unicast_duplicate_interval_ms: float = 50.0
    max_unicast_attempts: int = 30
    max_rounds_safety: int = 64

    def make_policy(self):
        return UnicastPolicy(
            max_multicast_rounds=self.max_multicast_rounds,
            compare_usr_bytes=self.compare_usr_bytes,
        )


class RekeySession:
    """Delivers one (wire-mode) rekey message to all users who need it.

    ``coder`` optionally overrides the RSE decoder shared by every
    user-side state machine (decoding is stateless, so one instance is
    safe to share); tests use it to run the same session under the
    matrix and reference coders.  By default users decode with the
    message's own coder kind.
    """

    def __init__(
        self, message, topology, config=None, rng=None, trace=None,
        coder=None, obs=None, chaos=None,
    ):
        if not message.materialized:
            raise TransportError(
                "RekeySession needs a wire-mode message (keyed tree)"
            )
        if message.is_empty:
            raise TransportError("nothing to deliver: empty rekey message")
        self.message = message
        self.topology = topology
        self.config = config or SessionConfig()
        #: optional repro.transport.trace.SessionTrace event sink
        self.trace = trace
        #: observability recorder: spans per round/unicast phase, plus
        #: the protocol events (mirroring the trace) onto the event bus
        self.obs = obs if obs is not None else NULL
        #: optional feedback-fault hook (``mangle_nacks(session, round,
        #: nacks)``): what it returns is what the server transport sees
        #: — the chaos layer's seam for duplicated, reordered, or
        #: fabricated first-round feedback
        self.chaos = chaos
        self._rng = rng if rng is not None else spawn_rng()
        self.user_ids = sorted(message.needs_by_user)
        if topology.n_users != len(self.user_ids):
            raise TransportError(
                "topology has %d users but the message serves %d"
                % (topology.n_users, len(self.user_ids))
            )
        # Random user -> receiver-link assignment, so loss class is not
        # correlated with packet/block position (users with nearby IDs
        # share ENC packets).
        self._rows = self._rng.permutation(len(self.user_ids))
        self.server = ServerTransport(
            message,
            rho=self.config.rho,
            sending_interval_ms=self.config.sending_interval_ms,
            unicast_policy=self.config.make_policy(),
        )
        if coder is None:
            from repro.fec.rse import make_coder

            coder = make_coder(
                getattr(message, "coder_kind", "matrix"), message.k
            )
        if self.obs.enabled:
            coder.obs = self.obs
        self.coder = coder
        self.users = self._make_users()

    def _make_users(self):
        """Per-user receiver state; the array engine overrides this."""
        return {
            user_id: UserTransport(
                user_id,
                k=self.message.k,
                degree=self._degree_hint(),
                n_blocks=self.message.n_blocks,
                message_id=self.message.message_id,
                coder=self.coder,
            )
            for user_id in self.user_ids
        }

    def _degree_hint(self):
        # The estimator only needs d for the maxKID bound; sessions are
        # built from trees of degree >= 2, carried via needs structure.
        return getattr(self.message, "degree", 4)

    # -- main entry --------------------------------------------------------

    def run(self):
        """Run to completion; returns :class:`MessageStats`."""
        stats = MessageStats(
            message_index=self.message.message_id,
            n_enc_packets=self.message.n_enc_packets,
            n_blocks=self.message.n_blocks,
            k=self.message.k,
            rho=self.config.rho,
            n_users=len(self.user_ids),
        )
        clock = 0.0
        self._emit(
            "session_start",
            clock,
            users=len(self.user_ids),
            enc_packets=self.message.n_enc_packets,
            blocks=self.message.n_blocks,
            rho=self.config.rho,
        )
        while True:
            with self.obs.span("session.round") as round_span:
                planned = self.server.plan_round()
                round_index = self.server.rounds_completed
                round_span.note(round=round_index, packets=len(planned))
                if round_index > self.config.max_rounds_safety:
                    raise TransportError(
                        "round cap exceeded: protocol is not converging"
                    )
                self._emit(
                    "round_planned",
                    clock,
                    round=round_index,
                    packets=len(planned),
                )
                clock = self._deliver_round(planned, clock)
                nacks = self._collect_nacks()
                if self.chaos is not None:
                    mangled = self.chaos.mangle_nacks(
                        self, round_index, nacks
                    )
                    if mangled is not None and mangled is not nacks:
                        if self.obs.enabled:
                            self.obs.emit(
                                "feedback_chaos",
                                round=round_index,
                                before=len(nacks),
                                after=len(mangled),
                            )
                        nacks = mangled
                self.server.finish_round(nacks)
                stats.rounds.append(
                    RoundStats(
                        round_index=round_index,
                        enc_packets_sent=sum(
                            1
                            for p in planned
                            if p.packet.packet_type is PacketType.ENC
                        ),
                        parity_packets_sent=sum(
                            1
                            for p in planned
                            if p.packet.packet_type is PacketType.PARITY
                        ),
                        nacks_received=len(nacks),
                        users_recovered_total=self._n_done(),
                    )
                )
                self._emit(
                    "round_complete",
                    clock,
                    round=round_index,
                    nacks=len(nacks),
                    recovered=self._n_done(),
                )
            pending = self._pending_users()
            if not pending:
                break
            if not self.config.multicast_only:
                if self.server.should_switch_to_unicast(pending):
                    self._emit(
                        "unicast_start", clock, pending=len(pending)
                    )
                    with self.obs.span(
                        "session.unicast", pending=len(pending)
                    ):
                        self._run_unicast(pending, clock, stats.unicast)
                    break
            clock += self.config.round_gap_ms * 1e-3
        stats.user_rounds = self._user_rounds()
        self._emit(
            "session_complete",
            clock,
            multicast_rounds=stats.n_multicast_rounds,
            unicast_served=stats.unicast.users_served,
        )
        return stats

    def _emit(self, kind, time, **detail):
        if self.trace is not None:
            self.trace.emit(kind, time, **detail)
        if self.obs.enabled:
            # Mirror the protocol event onto the structured bus (unless
            # the trace already forwards there — avoid double emission).
            if self.trace is None or self.trace.bus is None:
                self.obs.emit(kind, sim_time=float(time), **detail)

    # -- internals -------------------------------------------------------------

    def _collect_nacks(self):
        """Run every user's round timeout; return their NACKs in ID order."""
        nacks = []
        for user_id in self.user_ids:
            nack = self.users[user_id].end_of_round()
            if nack is not None:
                nacks.append(nack)
        return nacks

    def _user_rounds(self):
        """Per-user multicast recovery round (0 = unicast), in ID order."""
        return np.array(
            [
                self.users[user_id].recovery_round or 0
                for user_id in self.user_ids
            ],
            dtype=int,
        )

    def _n_done(self):
        return sum(1 for u in self.users.values() if u.done)

    def _pending_users(self):
        return [u for u in self.user_ids if not self.users[u].done]

    def _deliver_round(self, planned, clock):
        if not planned:
            return clock
        times = clock + np.array([p.offset for p in planned])
        received = self.topology.multicast_reception(
            times, rng=self._rng
        )
        # Classify each scheduled packet once per round, not once per
        # (user, packet) pair — with thousands of users this loop is the
        # session's hot path, so per-user work must touch only the
        # packets that user actually received.
        items = [
            (p.packet, p.payload, p.packet.packet_type is PacketType.ENC)
            for p in planned
        ]
        for position, user_id in enumerate(self.user_ids):
            user = self.users[user_id]
            if user.done:
                continue
            row = received[self._rows[position]]
            on_enc = user.on_enc
            on_parity = user.on_parity
            for index in np.flatnonzero(row).tolist():
                packet, payload, is_enc = items[index]
                if is_enc:
                    on_enc(packet, payload)
                    if user.done:
                        break
                else:
                    on_parity(packet)
        return float(times[-1]) if len(times) else clock

    def _run_unicast(self, pending, clock, unicast_stats):
        """§7.2: escalating duplicated USR packets until everyone is done."""
        interval = self.config.unicast_duplicate_interval_ms * 1e-3
        duplicates = 2
        remaining = list(pending)
        attempts = 0
        while remaining:
            attempts += 1
            if attempts > self.config.max_unicast_attempts:
                raise TransportError(
                    "unicast did not converge within attempt budget"
                )
            still = []
            for position, user_id in enumerate(self.user_ids):
                if user_id not in remaining:
                    continue
                usr = self.server.usr_packet_for(user_id)
                times = clock + np.arange(duplicates) * interval
                got = self.topology.unicast_reception(
                    int(self._rows[position]), times, rng=self._rng
                )
                unicast_stats.usr_packets_sent += duplicates
                unicast_stats.usr_bytes_sent += duplicates * len(usr.encode())
                if got.any():
                    self.users[user_id].on_usr(usr)
                    unicast_stats.users_served += 1
                else:
                    still.append(user_id)
            self._emit(
                "unicast_attempt",
                clock,
                attempt=attempts,
                duplicates=duplicates,
                remaining=len(still),
            )
            remaining = still
            clock += duplicates * interval + 0.2  # wait one unicast RTT
            duplicates += 1
        unicast_stats.attempts = attempts
