"""Server-side transport protocol (Fig. 2 / Fig. 26 of the companion text).

:class:`ServerTransport` drives one rekey message through multicast
rounds and the unicast switch-over.  It is deliberately free of any
network code: it *plans* packet emissions (returning packet objects with
relative send times) and *consumes* NACKs; the session layer moves the
packets through the simulated topology.
"""

from __future__ import annotations

import math

from repro.errors import TransportError
from repro.rekey.packets import FEC_PAYLOAD_OFFSET
from repro.transport.adaptive import proactive_parity_count
from repro.util.validation import check_non_negative, check_positive


class UnicastPolicy:
    """When to abandon multicast (§7.1).

    The protocol switches after at most ``max_multicast_rounds`` (two by
    default; one for small rekey intervals).  With
    ``compare_usr_bytes=True`` it may switch *earlier*: as soon as the
    USR packets for the remaining users would cost no more bytes than
    the PARITY packets of another multicast round.
    """

    def __init__(self, max_multicast_rounds=2, compare_usr_bytes=True):
        check_positive(
            "max_multicast_rounds", max_multicast_rounds, integral=True
        )
        self.max_multicast_rounds = int(max_multicast_rounds)
        self.compare_usr_bytes = bool(compare_usr_bytes)

    def should_switch(
        self, rounds_completed, usr_bytes_pending, parity_bytes_next_round
    ):
        """Decide after ``rounds_completed`` multicast rounds."""
        if rounds_completed >= self.max_multicast_rounds:
            return True
        if self.compare_usr_bytes and usr_bytes_pending is not None:
            return usr_bytes_pending <= parity_bytes_next_round
        return False


class ScheduledPacket:
    """A packet with its send-time offset within the round."""

    __slots__ = ("offset", "packet", "payload")

    def __init__(self, offset, packet, payload):
        self.offset = offset
        self.packet = packet
        #: FEC-covered bytes (for ENC packets), or None
        self.payload = payload


class ServerTransport:
    """Multicast scheduling and NACK aggregation for one rekey message."""

    def __init__(
        self,
        message,
        rho=1.0,
        sending_interval_ms=100.0,
        unicast_policy=None,
    ):
        if message.is_empty:
            raise TransportError("cannot run transport for an empty message")
        check_non_negative("rho", rho)
        check_positive("sending_interval_ms", sending_interval_ms)
        self.message = message
        self.rho = float(rho)
        self.sending_interval = sending_interval_ms * 1e-3
        self.unicast_policy = unicast_policy or UnicastPolicy()
        self.k = message.k
        self.n_blocks = message.n_blocks
        # Parity rows already generated per block (so retransmissions
        # are always fresh codeword rows).
        self._parity_rows_used = [0] * self.n_blocks
        self._round = 0
        self._first_round_requests = None
        self._amax = [0] * self.n_blocks
        self._nack_users = set()

    # -- multicast rounds -------------------------------------------------

    @property
    def rounds_completed(self):
        return self._round

    @property
    def first_round_requests(self):
        """The AdjustRho input ``A`` (available after round 1's NACKs)."""
        if self._first_round_requests is None:
            raise TransportError("round 1 has not completed yet")
        return list(self._first_round_requests)

    def _parity_for_block(self, block_id, count):
        packets = self.message.parity_packets(
            block_id,
            count,
            first_parity_index=self._parity_rows_used[block_id],
        )
        self._parity_rows_used[block_id] += count
        return packets

    def plan_round(self):
        """Plan the next multicast round's packets, block-interleaved.

        Round 1 sends ``k`` ENC + proactive parity per block; later
        rounds send ``amax[i]`` fresh parity per block.  Returns a list
        of :class:`ScheduledPacket` (empty when nothing to send).
        """
        self._round += 1
        per_block = []
        if self._round == 1:
            parity_count = proactive_parity_count(self.rho, self.k)
            enc_packets = self.message.enc_packets()
            wires = [p.encode(self.message.packet_size) for p in enc_packets]
            for block_id in range(self.n_blocks):
                first = block_id * self.k
                column = [
                    (enc_packets[first + seq], wires[first + seq])
                    for seq in range(self.k)
                ]
                column += [
                    (p, None) for p in self._parity_for_block(block_id, parity_count)
                ]
                per_block.append(column)
        else:
            for block_id in range(self.n_blocks):
                count = self._amax[block_id]
                per_block.append(
                    [(p, None) for p in self._parity_for_block(block_id, count)]
                )
            self._amax = [0] * self.n_blocks
        self._nack_users = set()

        planned = []
        index = 0
        depth = max((len(column) for column in per_block), default=0)
        for slot in range(depth):
            for column in per_block:
                if slot < len(column):
                    packet, wire = column[slot]
                    payload = (
                        wire[FEC_PAYLOAD_OFFSET:] if wire is not None else None
                    )
                    planned.append(
                        ScheduledPacket(
                            offset=index * self.sending_interval,
                            packet=packet,
                            payload=payload,
                        )
                    )
                    index += 1
        return planned

    def accept_nack(self, nack):
        """Register one user's NACK (Fig. 26 step 8).

        Requests are untrusted: a user missing ``m`` of a block's ``k``
        ENC packets needs exactly ``m`` parity packets, so any request
        above ``k`` is hostile or corrupt and is clamped to ``k`` —
        a NACK storm cannot schedule an unbounded parity round.
        """
        if nack.rekey_message_id != self.message.message_id:
            raise TransportError("NACK for a different rekey message")
        self._nack_users.add(nack.user_id)
        for request in nack.requests:
            if not 0 <= request.block_id < self.n_blocks:
                raise TransportError(
                    "NACK names unknown block %d" % request.block_id
                )
            self._amax[request.block_id] = max(
                self._amax[request.block_id],
                min(request.n_parity, self.k),
            )

    def finish_round(self, nacks):
        """Close the round with the NACKs that arrived; returns their count."""
        for nack in nacks:
            self.accept_nack(nack)
        if self._round == 1:
            self._first_round_requests = [
                nack.max_requested for nack in nacks
            ]
        return len(nacks)

    @property
    def pending_parity_next_round(self):
        """PARITY packets the next multicast round would send."""
        return sum(self._amax)

    def should_switch_to_unicast(self, pending_user_ids):
        """Apply the unicast policy given who is still unserved."""
        usr_bytes = None
        if self.unicast_policy.compare_usr_bytes:
            usr_bytes = 0
            for user_id in pending_user_ids:
                usr_bytes += len(
                    self.message.usr_packet(user_id).encode()
                ) + 8  # UDP header, per §7.1
        parity_bytes = self.pending_parity_next_round * self.message.packet_size
        return self.unicast_policy.should_switch(
            self._round, usr_bytes, parity_bytes
        )

    def usr_packet_for(self, user_id):
        """The unicast packet for one user."""
        return self.message.usr_packet(user_id)
