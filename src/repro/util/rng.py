"""Deterministic random-number management.

Every stochastic component in the library (loss processes, membership
churn, Monte-Carlo estimators) draws from a :class:`numpy.random.Generator`
passed in explicitly; nothing reads global random state.  ``RandomSource``
is a tiny factory that hands out independent child generators derived from
one seed, so a whole experiment is reproducible from a single integer
while its components remain statistically independent.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_non_negative

_DEFAULT_SEED = 20010827  # SIGCOMM 2001 week, for a memorable default.


def spawn_rng(seed=None):
    """Return a fresh ``numpy.random.Generator``.

    ``seed=None`` uses the library default (fixed, for reproducibility —
    explicitly pass entropy if you want varying runs).
    """
    if seed is None:
        seed = _DEFAULT_SEED
    check_non_negative("seed", seed, integral=True)
    return np.random.default_rng(seed)


class RandomSource:
    """A tree of reproducible, independent random generators.

    Child generators are derived with ``numpy``'s ``spawn`` mechanism
    (SeedSequence-based), so two children never share a stream, and the
    assignment of streams to components is stable across runs.
    """

    def __init__(self, seed=None):
        if seed is None:
            seed = _DEFAULT_SEED
        check_non_negative("seed", seed, integral=True)
        self._seed = int(seed)
        self._sequence = np.random.SeedSequence(self._seed)

    @property
    def seed(self):
        """The root seed this source was constructed from."""
        return self._seed

    def generator(self):
        """Return a new independent ``numpy.random.Generator``."""
        (child,) = self._sequence.spawn(1)
        return np.random.default_rng(child)

    def generators(self, count):
        """Return ``count`` new mutually independent generators."""
        check_non_negative("count", count, integral=True)
        return [np.random.default_rng(c) for c in self._sequence.spawn(count)]

    def child(self):
        """Return a new independent ``RandomSource`` (for sub-components)."""
        (child_sequence,) = self._sequence.spawn(1)
        source = RandomSource.__new__(RandomSource)
        source._seed = self._seed
        source._sequence = child_sequence
        return source

    def __repr__(self):
        return "RandomSource(seed=%d)" % self._seed
