"""Shared small utilities: argument validation and deterministic RNG."""

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.util.rng import RandomSource, spawn_rng

__all__ = [
    "RandomSource",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "spawn_rng",
]
