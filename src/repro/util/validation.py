"""Argument-validation helpers.

The library is driven by many numeric protocol parameters (tree degree,
block size, proactivity factor, loss rates ...).  These helpers give each
module one-line validation with uniform, descriptive error messages; all
failures raise :class:`repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from numbers import Real

from repro.errors import ConfigurationError


def check_type(name, value, expected_type):
    """Raise unless ``value`` is an instance of ``expected_type``.

    ``bool`` is rejected where an integer is expected, because ``True``
    silently behaving as ``1`` hides caller bugs in protocol parameters.
    """
    if expected_type is int and isinstance(value, bool):
        raise ConfigurationError(
            "%s must be an int, got bool %r" % (name, value)
        )
    if not isinstance(value, expected_type):
        type_name = getattr(expected_type, "__name__", str(expected_type))
        raise ConfigurationError(
            "%s must be %s, got %s %r"
            % (name, type_name, type(value).__name__, value)
        )
    return value


def check_positive(name, value, integral=False):
    """Raise unless ``value`` is a real number strictly greater than zero."""
    check_type(name, value, int if integral else Real)
    if value <= 0:
        raise ConfigurationError("%s must be > 0, got %r" % (name, value))
    return value


def check_non_negative(name, value, integral=False):
    """Raise unless ``value`` is a real number greater than or equal to 0."""
    check_type(name, value, int if integral else Real)
    if value < 0:
        raise ConfigurationError("%s must be >= 0, got %r" % (name, value))
    return value


def check_probability(name, value):
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    check_type(name, value, Real)
    if not 0.0 <= float(value) <= 1.0:
        raise ConfigurationError(
            "%s must be a probability in [0, 1], got %r" % (name, value)
        )
    return float(value)


def check_in_range(name, value, low, high, integral=False):
    """Raise unless ``low <= value <= high``."""
    check_type(name, value, int if integral else Real)
    if not low <= value <= high:
        raise ConfigurationError(
            "%s must be in [%r, %r], got %r" % (name, low, high, value)
        )
    return value
