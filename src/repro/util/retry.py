"""Bounded retry with exponential backoff for transient I/O errors.

The storage layer treats an ``OSError`` out of a write/fsync/replace as
*possibly transient* (EIO under memory pressure, a full-but-draining
disk, NFS hiccups): it retries a bounded number of times with
exponential backoff before letting the error escape.  Sleeps go through
the :class:`~repro.chaos.seams.Clock` seam, so chaos runs back off in
virtual time — deterministic and instant.

With ``jitter=True`` the policy uses *full jitter* (pick uniformly in
``[0, backoff]`` instead of the deterministic backoff), which
decorrelates a thundering herd of reconnecting followers; the
replication client uses this for its resubscribe loop.  Pass an ``rng``
(anything with ``uniform``) to keep jittered runs deterministic.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.chaos.seams import SYSTEM_CLOCK
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """``max_attempts`` tries; sleep ``base_delay * multiplier**n``
    (capped at ``max_delay``) between them.  ``jitter=True`` draws the
    sleep uniformly from ``[0, that backoff]`` (AWS-style full jitter)."""

    max_attempts: int = 4
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: bool = False

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ConfigurationError("invalid backoff parameters")

    def delay(self, attempt, rng=None):
        """Backoff before retry number ``attempt`` (0-based).

        Always within ``[0, base_delay * multiplier**attempt]`` (and
        never above ``max_delay``); without jitter it *is* that upper
        bound.
        """
        ceiling = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if not self.jitter:
            return ceiling
        return (rng or _random).uniform(0.0, ceiling)

    def run(
        self,
        fn,
        clock=None,
        retry_on=(OSError,),
        on_retry=None,
        on_giveup=None,
        rng=None,
    ):
        """Call ``fn`` until it succeeds or attempts are exhausted.

        ``on_retry(attempt, error)`` fires before each backoff;
        ``on_giveup(attempts, error)`` fires once when the final attempt
        fails, after which the error propagates unchanged.
        """
        clock = clock or SYSTEM_CLOCK
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as error:
                if attempt + 1 >= self.max_attempts:
                    if on_giveup is not None:
                        on_giveup(attempt + 1, error)
                    raise
                if on_retry is not None:
                    on_retry(attempt + 1, error)
                clock.sleep(self.delay(attempt, rng=rng))
