"""Top-level configuration with the paper's default parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.topology import LossParameters
from repro.util.validation import check_non_negative, check_positive


@dataclass
class GroupConfig:
    """Everything a :class:`~repro.core.group.SecureGroup` needs.

    Defaults follow the paper's evaluation: tree degree 4, 1027-byte ENC
    packets, FEC block size 10, proactivity factor 1, NACK target 20,
    100 ms sending interval, and the heterogeneous burst-loss topology.

    Three hot-path knobs select implementations, not behaviour — every
    combination produces bit-identical protocol output:

    - ``incremental_marking``: re-mark only paths touched by the batch
      (default) instead of scanning the whole tree each interval;
    - ``fec_coder``: ``"matrix"`` (translation-table RSE, default) or
      ``"reference"`` (the scalar oracle coder);
    - ``engine``: ``"python"`` (per-object oracle pipeline, default),
      ``"numpy"`` (array-plane marking, batched GF(256) parity, and the
      vectorised delivery session — :mod:`repro.fastpath`), or
      ``"numba"`` (reserved JIT tier; degrades to ``"numpy"`` when
      numba is not installed).
    """

    degree: int = 4
    packet_size: int = 1027
    block_size: int = 10
    rho: float = 1.0
    #: hard ceiling on the adaptive proactivity factor — hostile NACK
    #: feedback saturates ρ here instead of growing parity unbounded
    rho_max: float = 8.0
    num_nack: int = 20
    max_nack: int = 100
    sending_interval_ms: float = 100.0
    max_multicast_rounds: int = 2
    deadline_rounds: int = 2
    #: how long a server waits for NACKs after each multicast round —
    #: shared by the loopback UDP endpoints and the asyncio wire plane
    #: (where it caps the aggregation window; the window closes early
    #: once every member has reported)
    nack_window_seconds: float = 0.3
    loss: LossParameters = field(default_factory=LossParameters)
    crypto_seed: int = 0
    seed: int = 20010827
    incremental_marking: bool = True
    fec_coder: str = "matrix"
    engine: str = "python"

    def __post_init__(self):
        from repro.fec.rse import CODER_KINDS

        check_positive("degree", self.degree, integral=True)
        if self.degree < 2:
            raise ValueError("degree must be >= 2")
        check_positive("packet_size", self.packet_size, integral=True)
        check_positive("block_size", self.block_size, integral=True)
        check_non_negative("rho", self.rho)
        check_positive("rho_max", self.rho_max)
        if self.rho > self.rho_max:
            raise ConfigurationError(
                "rho %.3f exceeds rho_max %.3f" % (self.rho, self.rho_max)
            )
        check_non_negative("num_nack", self.num_nack, integral=True)
        check_non_negative("max_nack", self.max_nack, integral=True)
        check_positive("sending_interval_ms", self.sending_interval_ms)
        check_positive(
            "max_multicast_rounds", self.max_multicast_rounds, integral=True
        )
        check_positive("deadline_rounds", self.deadline_rounds, integral=True)
        check_positive("nack_window_seconds", self.nack_window_seconds)
        if self.fec_coder not in CODER_KINDS:
            raise ValueError(
                "fec_coder must be one of %s, got %r"
                % (", ".join(CODER_KINDS), self.fec_coder)
            )
        # Validates the name and degrades "numba" to "numpy" when the
        # JIT tier is unavailable (never a behaviour change).
        from repro.fastpath import resolve_engine

        self.engine = resolve_engine(self.engine)

    # -- serialization -------------------------------------------------
    #
    # The tenant registry persists one GroupConfig per tenant inside
    # ``registry.json``, so a standby can rebuild every group's exact
    # scheme knobs on bulk failover.  Round-tripping re-runs
    # ``__post_init__``: a damaged registry fails loudly at load time
    # with the same ConfigurationError a bad constructor call gets.

    def to_dict(self):
        """Plain-JSON form; ``from_dict`` restores an equal config."""
        out = {
            name: getattr(self, name)
            for name in (
                "degree", "packet_size", "block_size", "rho", "rho_max",
                "num_nack", "max_nack", "sending_interval_ms",
                "max_multicast_rounds", "deadline_rounds",
                "nack_window_seconds", "crypto_seed", "seed",
                "incremental_marking", "fec_coder", "engine",
            )
        }
        out["loss"] = {
            name: getattr(self.loss, name)
            for name in (
                "alpha", "p_high", "p_low", "p_source",
                "burst_scale_ms", "bursty",
            )
        }
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild (and re-validate) a config from :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                "GroupConfig.from_dict needs a dict, got %s"
                % type(data).__name__
            )
        kwargs = dict(data)
        loss = kwargs.pop("loss", None)
        if loss is not None:
            if not isinstance(loss, dict):
                raise ConfigurationError(
                    "GroupConfig loss must be a dict, got %s"
                    % type(loss).__name__
                )
            kwargs["loss"] = LossParameters(**loss)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                "bad GroupConfig field: %s" % (exc,)
            ) from exc
