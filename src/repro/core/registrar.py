"""The registration component (§1 of the papers).

A group key management system has three functional components:
*registration*, *key management*, and *rekey transport*.  This module
supplies the first: a trusted registrar that mutually authenticates
prospective members (the papers use SSL; we use a toy shared-credential
handshake with the same message flow) and issues registration grants,
plus the request-validation step the key server performs — "validates
the requests by checking whether they are encrypted by individual
keys".

Flow:

1. ``Registrar.register(name, credential)`` — authenticates the user
   and returns a :class:`RegistrationGrant` (a MAC-sealed admission
   token).  Registrars can be replicated; they share only the
   ``registrar_secret`` with the key server, which offloads the
   per-user authentication work from it.
2. ``make_join_request(grant)`` / ``make_leave_request(name,
   individual_key)`` — client-side construction of authenticated
   requests; a leave is authenticated under the member's *individual
   key* (only its holder can evict the member).
3. ``RequestValidator`` — server-side: verifies grants against the
   shared secret and leave MACs against the key tree's individual keys,
   and rejects replays by request nonce.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import CryptoError, ReproError
from repro.util.validation import check_non_negative

_MAC_SIZE = 16


class RegistrationError(ReproError):
    """Authentication or validation failure in the registration layer."""


def _mac(key_bytes, *parts):
    payload = b"\x00".join(
        part.encode() if isinstance(part, str) else bytes(part)
        for part in parts
    )
    return hashlib.blake2b(
        payload, key=key_bytes, digest_size=_MAC_SIZE
    ).digest()


@dataclass(frozen=True)
class RegistrationGrant:
    """A registrar-issued admission token for one user."""

    user: str
    nonce: int
    seal: bytes


@dataclass(frozen=True)
class JoinRequest:
    """An authenticated join: carries the registrar's grant."""

    grant: RegistrationGrant


@dataclass(frozen=True)
class LeaveRequest:
    """An authenticated leave: MAC'd under the member's individual key."""

    user: str
    nonce: int
    mac: bytes


class Registrar:
    """A trusted registrar sharing one secret with the key server."""

    def __init__(self, registrar_secret, credentials=None):
        check_non_negative("registrar_secret", registrar_secret,
                           integral=True)
        self._secret = hashlib.blake2b(
            b"registrar" + int(registrar_secret).to_bytes(8, "big"),
            digest_size=32,
        ).digest()
        #: user -> credential; None accepts anyone (open enrolment)
        self._credentials = dict(credentials) if credentials else None
        self._nonce = 0

    def register(self, user, credential=None):
        """Mutually authenticate ``user``; return a grant or raise."""
        if self._credentials is not None:
            expected = self._credentials.get(user)
            if expected is None or expected != credential:
                raise RegistrationError(
                    "authentication failed for %r" % (user,)
                )
        self._nonce += 1
        seal = _mac(self._secret, "grant", user, str(self._nonce))
        return RegistrationGrant(user=user, nonce=self._nonce, seal=seal)

    @property
    def shared_secret(self):
        """The secret the key server uses to verify grants."""
        return self._secret


def make_join_request(grant):
    """Client side: wrap a grant as a join request."""
    if not isinstance(grant, RegistrationGrant):
        raise RegistrationError("a join request needs a RegistrationGrant")
    return JoinRequest(grant=grant)


def make_leave_request(user, individual_key, nonce):
    """Client side: authenticate a leave under the individual key."""
    check_non_negative("nonce", nonce, integral=True)
    mac = _mac(individual_key.material, "leave", user, str(nonce))
    return LeaveRequest(user=user, nonce=nonce, mac=mac)


class RequestValidator:
    """Server-side validation of join/leave requests."""

    def __init__(self, registrar_secret_bytes, tree):
        self._secret = bytes(registrar_secret_bytes)
        self._tree = tree
        self._seen_grants = set()
        self._seen_leaves = set()

    def validate_join(self, request):
        """Check the grant's seal and freshness; return the user name."""
        if not isinstance(request, JoinRequest):
            raise RegistrationError("not a join request")
        grant = request.grant
        expected = _mac(
            self._secret, "grant", grant.user, str(grant.nonce)
        )
        if expected != grant.seal:
            raise RegistrationError(
                "forged or corrupted grant for %r" % (grant.user,)
            )
        key = (grant.user, grant.nonce)
        if key in self._seen_grants:
            raise RegistrationError(
                "replayed grant for %r" % (grant.user,)
            )
        self._seen_grants.add(key)
        return grant.user

    def validate_leave(self, request):
        """Check the MAC against the member's current individual key."""
        if not isinstance(request, LeaveRequest):
            raise RegistrationError("not a leave request")
        try:
            node_id = self._tree.user_node_id(request.user)
        except Exception as exc:
            raise RegistrationError(
                "leave for unknown member %r" % (request.user,)
            ) from exc
        individual = self._tree.key_of(node_id)
        if individual is None:
            raise RegistrationError(
                "server tree is keyless; cannot authenticate leaves"
            )
        expected = _mac(
            individual.material, "leave", request.user, str(request.nonce)
        )
        if expected != request.mac:
            raise RegistrationError(
                "leave for %r not signed by its individual key"
                % (request.user,)
            )
        key = (request.user, request.nonce)
        if key in self._seen_leaves:
            raise RegistrationError(
                "replayed leave for %r" % (request.user,)
            )
        self._seen_leaves.add(key)
        return request.user
