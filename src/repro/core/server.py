"""The key server: registration, key management, rekey-message emission.

:class:`GroupKeyServer` glues the substrates together: it owns the keyed
:class:`~repro.keytree.tree.KeyTree`, collects join/leave requests over
a rekey interval, runs the marking algorithm at interval end, and builds
the signed rekey message.  A :class:`~repro.crypto.cost.CostMeter`
records the crypto work for the processing-time analyses.
"""

from __future__ import annotations

from repro.crypto.cipher import XorStreamCipher
from repro.crypto.cost import CostMeter
from repro.crypto.keys import KeyFactory
from repro.crypto.signer import SignatureScheme
from repro.errors import (
    ConfigurationError,
    DuplicateUserError,
    UnknownUserError,
)
from repro.keytree.marking import make_marking
from repro.keytree.tree import KeyTree
from repro.rekey.message import RekeyMessageBuilder

_MESSAGE_ID_SPACE = 64  # the 6-bit rekey-message ID field


class GroupKeyServer:
    """A single key server managing one secure group."""

    def __init__(self, initial_users, config=None):
        from repro.core.config import GroupConfig

        self.config = config or GroupConfig()
        self.meter = CostMeter()
        self._factory = KeyFactory(
            seed=self.config.crypto_seed, meter=self.meter
        )
        self._cipher = XorStreamCipher(meter=self.meter)
        self.signer = SignatureScheme(
            secret_seed=self.config.crypto_seed, meter=self.meter
        )
        initial_users = list(initial_users)
        if not initial_users:
            raise ConfigurationError(
                "a group needs at least one initial member"
            )
        self.tree = KeyTree.full_balanced(
            initial_users, self.config.degree, key_factory=self._factory
        )
        self._marking = make_marking(
            self.config.incremental_marking, engine=self.config.engine
        )
        self._builder = RekeyMessageBuilder(
            packet_size=self.config.packet_size,
            block_size=self.config.block_size,
            cipher=self._cipher,
            signer=self.signer,
            coder_kind=self.config.fec_coder,
            engine=self.config.engine,
        )
        self._pending_joins = []
        self._pending_leaves = []
        self._next_message_id = 0
        self.intervals_processed = 0
        from repro.obs.recorder import NULL

        self.obs = NULL

    def set_observer(self, obs):
        """Attach an observability recorder to the whole pipeline.

        Propagates to the marking algorithm and the message builder
        (which hands it on to messages and their FEC coders), so one
        call instruments marking, encryption, signing, and encoding.
        """
        self.obs = obs
        self._marking.obs = obs
        self._builder.obs = obs
        return self

    # -- membership requests -------------------------------------------------

    @property
    def n_users(self):
        return self.tree.n_users

    @property
    def users(self):
        return self.tree.users

    @property
    def group_key(self):
        """The current group key (root of the key tree)."""
        return self.tree.group_key

    @property
    def pending_requests(self):
        """(joins, leaves) collected so far this interval."""
        return list(self._pending_joins), list(self._pending_leaves)

    def request_join(self, user):
        """Queue an (authenticated) join for the next rekey interval.

        A member with a leave already queued this interval may re-join:
        the marking algorithm renews its slot in place (Replace), so its
        old individual key still dies with the interval.
        """
        if user in self._pending_joins:
            raise DuplicateUserError("user %r already joined/queued" % (user,))
        if self.tree.has_user(user) and user not in self._pending_leaves:
            raise DuplicateUserError("user %r already joined/queued" % (user,))
        self._pending_joins.append(user)

    def request_leave(self, user):
        """Queue a leave for the next rekey interval."""
        if user in self._pending_joins:
            # Joined (or re-joined) and left within one interval: cancel
            # the join; a member's earlier queued leave, if any, stands.
            self._pending_joins.remove(user)
            return
        if user in self._pending_leaves:
            raise ConfigurationError("leave already queued for %r" % (user,))
        if not self.tree.has_user(user):
            raise UnknownUserError("unknown user %r" % (user,))
        self._pending_leaves.append(user)

    # -- interval processing ------------------------------------------------

    def rekey(self):
        """End the interval: run marking, build and sign the message.

        Returns ``(batch_result, rekey_message)``.  The message is empty
        when no membership changed.
        """
        joins, leaves = self._pending_joins, self._pending_leaves
        self._pending_joins, self._pending_leaves = [], []
        batch = self._marking.apply(self.tree, joins=joins, leaves=leaves)
        message_id = self._next_message_id
        self._next_message_id = (message_id + 1) % _MESSAGE_ID_SPACE
        message = self._builder.build(batch, message_id=message_id)
        self.intervals_processed += 1
        return batch, message

    # -- registration-time state for members ------------------------------

    def registration_state(self, user):
        """What the registrar hands a member: its ID and path keys.

        Returns ``(user_id, {node_id: key})``.  (In deployment this
        travels over the SSL registration channel.)
        """
        user_id = self.tree.user_node_id(user)
        path = self.tree.path_ids(user)
        return user_id, {node_id: self.tree.key_of(node_id) for node_id in path}

    def usr_packet_hint(self, message, user):
        """Current u-node ID for ``user`` (for unicast addressing)."""
        return self.tree.user_node_id(user)

    # -- persistence ---------------------------------------------------------

    def snapshot(self):
        """Capture restartable server state as a JSON-safe dict.

        Pending join/leave queues are *not* captured (a restarted server
        re-collects requests; periodic batching makes the loss benign —
        clients simply retry within the interval).
        """
        from repro.keytree.persistence import tree_to_dict

        return {
            "tree": tree_to_dict(self.tree),
            "next_message_id": self._next_message_id,
            "intervals_processed": self.intervals_processed,
            "crypto_seed": self.config.crypto_seed,
        }

    @classmethod
    def restore(cls, snapshot, config=None):
        """Rebuild a server from :meth:`snapshot` output.

        ``config`` must match the snapshot's structural parameters
        (degree, packet size); the crypto seed is taken from the
        snapshot so key derivation continues exactly.
        """
        from repro.core.config import GroupConfig
        from repro.keytree.persistence import tree_from_dict

        config = config or GroupConfig()
        if config.crypto_seed != snapshot["crypto_seed"]:
            config = GroupConfig(
                **{
                    **config.__dict__,
                    "crypto_seed": snapshot["crypto_seed"],
                }
            )
        server = cls.__new__(cls)
        server.config = config
        server.meter = CostMeter()
        server._factory = KeyFactory(
            seed=config.crypto_seed, meter=server.meter
        )
        server._cipher = XorStreamCipher(meter=server.meter)
        server.signer = SignatureScheme(
            secret_seed=config.crypto_seed, meter=server.meter
        )
        server.tree = tree_from_dict(
            snapshot["tree"], key_factory=server._factory
        )
        if server.tree.degree != config.degree:
            raise ConfigurationError(
                "snapshot degree %d != config degree %d"
                % (server.tree.degree, config.degree)
            )
        server._marking = make_marking(
            config.incremental_marking, engine=config.engine
        )
        server._builder = RekeyMessageBuilder(
            packet_size=config.packet_size,
            block_size=config.block_size,
            cipher=server._cipher,
            signer=server.signer,
            coder_kind=config.fec_coder,
            engine=config.engine,
        )
        server._pending_joins = []
        server._pending_leaves = []
        server._next_message_id = int(snapshot["next_message_id"])
        server.intervals_processed = int(snapshot["intervals_processed"])
        return server

    def __repr__(self):
        return "GroupKeyServer(users=%d, intervals=%d)" % (
            self.n_users,
            self.intervals_processed,
        )
