"""A group member's key state and rekey-message processing.

A member holds the keys on its leaf-to-root path.  On receiving a rekey
message it:

1. re-derives its own u-node ID from the packet's ``maxKID`` field
   (Theorem 4.2 — no per-user notification exists);
2. checks whether the ENC packet's ``<frmID, toID>`` interval covers it;
3. extracts the encryptions whose IDs lie on its (new) path and decrypts
   them bottom-up: each encryption ``{new parent key}_child`` opens with
   the member's individual key or with a key recovered just before.

Decryption uses the real toy cipher, so a wrong or stale key *fails*
(checksum mismatch) rather than silently corrupting state.
"""

from __future__ import annotations

from repro.crypto.cipher import XorStreamCipher
from repro.errors import CryptoError, TransportError
from repro.keytree import ids as idmath
from repro.util.validation import check_non_negative


class GroupMember:
    """Client-side key state for one user."""

    def __init__(self, name, user_id, path_keys, degree, signer=None):
        check_non_negative("user_id", user_id, integral=True)
        self.name = name
        self.user_id = int(user_id)
        self.degree = int(degree)
        #: node_id -> SymmetricKey for every node on the member's path
        self.path_keys = dict(path_keys)
        if self.user_id not in self.path_keys:
            raise TransportError(
                "registration state lacks the individual key"
            )
        self._cipher = XorStreamCipher()
        self._signer = signer

    @classmethod
    def register(cls, server, name):
        """Obtain registration state from a server (SSL channel stand-in)."""
        user_id, path_keys = server.registration_state(name)
        return cls(
            name,
            user_id,
            path_keys,
            server.config.degree,
            signer=server.signer,
        )

    # -- key state ----------------------------------------------------------

    @property
    def individual_key(self):
        return self.path_keys[self.user_id]

    @property
    def group_key(self):
        """The member's view of the group key (path root), if held."""
        return self.path_keys.get(idmath.ROOT_ID)

    @property
    def path_ids(self):
        return idmath.path_to_root(self.user_id, self.degree)

    def _relocate(self, max_kid):
        """Theorem 4.2: update ``user_id`` after tree restructuring."""
        new_id = idmath.derive_new_user_id(self.user_id, max_kid, self.degree)
        if new_id != self.user_id:
            individual = self.path_keys[self.user_id]
            self.path_keys.pop(self.user_id, None)
            self.user_id = new_id
            self.path_keys[new_id] = individual
        # Drop keys that fell off the (possibly longer) path; stale path
        # keys for still-valid ancestors are kept (they may not have
        # been rekeyed this interval).
        valid = set(self.path_ids)
        self.path_keys = {
            node_id: key
            for node_id, key in self.path_keys.items()
            if node_id in valid
        }

    # -- message processing -----------------------------------------------

    def process_enc_packet(self, packet):
        """Handle one ENC packet; returns True if it was ours."""
        self._relocate(packet.max_kid)
        if not packet.covers_user(self.user_id):
            return False
        self._absorb(packet.encryptions)
        return True

    def process_usr_packet(self, packet):
        """Handle a unicast USR packet addressed to this member."""
        if packet.user_id != self.user_id:
            # The server addresses USR packets by *new* ID; if we have
            # not yet relocated, the mismatch is fatal by design.
            raise TransportError(
                "USR packet for ID %d but member is %d"
                % (packet.user_id, self.user_id)
            )
        self._absorb(packet.encryptions)

    def absorb_encryptions(self, encryptions, max_kid=None):
        """Feed recovered encryptions directly (e.g. from a transport
        session's FEC-decoded output)."""
        if max_kid is not None:
            self._relocate(max_kid)
        self._absorb(encryptions)

    def _absorb(self, encryptions):
        on_path = set(self.path_ids)
        mine = [e for e in encryptions if e.encryption_id in on_path]
        # Deepest first: larger node ID = deeper in the tree, and each
        # decryption may unlock the next one up.
        mine.sort(key=lambda e: e.encryption_id, reverse=True)
        for encrypted in mine:
            child_id = encrypted.encryption_id
            child_key = self.path_keys.get(child_id)
            if child_key is None:
                raise TransportError(
                    "missing key for node %d; encryptions out of order"
                    % child_id
                )
            parent_id = (child_id - 1) // self.degree
            try:
                new_key = self._cipher.decrypt_key(
                    encrypted, child_key, node_id=parent_id
                )
            except CryptoError:
                # Not actually decryptable with our (possibly stale)
                # child key: e.g. a Replace-labelled sibling's slot.
                continue
            self.path_keys[parent_id] = new_key

    def verify_signature(self, payload, signature):
        """Verify the server's signature over a rekey message."""
        if self._signer is None:
            raise TransportError("member has no verification key")
        return self._signer.verify(payload, signature)

    def __repr__(self):
        return "GroupMember(%r, id=%d)" % (self.name, self.user_id)
