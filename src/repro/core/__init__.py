"""Public high-level API.

- :class:`GroupKeyServer` — owns the key tree, queues join/leave
  requests, runs periodic batch rekeying, and emits signed rekey
  messages.
- :class:`GroupMember` — a user's key state: holds its leaf-to-root path
  keys, re-derives its own ID after tree restructuring (Theorem 4.2),
  and decrypts the new keys out of ENC/USR packets.
- :class:`SecureGroup` — a facade wiring a server, its members, and
  (optionally) the lossy transport simulation together; the quickest way
  to run the whole system end to end.
"""

from repro.core.config import GroupConfig
from repro.core.server import GroupKeyServer
from repro.core.member import GroupMember
from repro.core.group import SecureGroup
from repro.core.policy import (
    HybridBatching,
    ImmediateRekeying,
    PeriodicBatching,
    ThresholdBatching,
    simulate_policy,
)
from repro.core.registrar import Registrar, RequestValidator

__all__ = [
    "GroupConfig",
    "GroupKeyServer",
    "GroupMember",
    "HybridBatching",
    "ImmediateRekeying",
    "PeriodicBatching",
    "Registrar",
    "RequestValidator",
    "SecureGroup",
    "ThresholdBatching",
    "simulate_policy",
]
