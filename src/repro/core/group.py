"""`SecureGroup`: the whole system, wired together.

The facade owns a :class:`~repro.core.server.GroupKeyServer` plus one
:class:`~repro.core.member.GroupMember` per current user, and delivers
each interval's rekey message either *directly* (loss-free, for
functional use) or *over the simulated lossy network* (a full
:class:`~repro.transport.session.RekeySession` with FEC, NACKs and the
unicast tail), feeding whatever each user recovered into its member
state.

Invariant after every delivered rekey: every current member's group key
equals the server's; departed members' keys no longer do.
"""

from __future__ import annotations

import numpy as np

from repro.core.member import GroupMember
from repro.core.server import GroupKeyServer
from repro.errors import TransportError
from repro.sim.topology import MulticastTopology
from repro.transport.session import RekeySession, SessionConfig
from repro.util.rng import RandomSource


class SecureGroup:
    """A key server, its members, and a delivery path."""

    def __init__(self, initial_users, config=None):
        self.server = GroupKeyServer(initial_users, config=config)
        self.config = self.server.config
        self._random_source = RandomSource(self.config.seed)
        self.members = {
            name: GroupMember.register(self.server, name)
            for name in initial_users
        }
        #: members who left; kept around to assert forward secrecy
        self.former_members = {}
        self.last_delivery_stats = None

    # -- membership -----------------------------------------------------

    @property
    def n_members(self):
        return len(self.members)

    def join(self, name):
        """Queue a join; the member object appears after the next rekey."""
        self.server.request_join(name)

    def leave(self, name):
        """Queue a leave."""
        self.server.request_leave(name)

    # -- rekeying ----------------------------------------------------------

    def rekey(self, lossy=False, session_config=None):
        """Process the interval and deliver the rekey message.

        With ``lossy=False`` every member processes its ENC packet
        directly (an idealised reliable channel).  With ``lossy=True``
        the message rides a full :class:`RekeySession` over the
        configured burst-loss topology and members absorb whatever the
        transport recovered (reliability guarantees it is everything).

        Returns the rekey message (possibly empty).
        """
        joins, leaves = self.server.pending_requests
        batch, message = self.server.rekey()
        for name in leaves:
            self.former_members[name] = self.members.pop(name)
        for name in joins:
            self.members[name] = GroupMember.register(self.server, name)
        if message.is_empty:
            self.last_delivery_stats = None
            return message
        if lossy:
            self._deliver_lossy(message, session_config)
        else:
            self._deliver_directly(message)
        self._check_group_key()
        return message

    def _deliver_directly(self, message):
        packets = [
            p for p in message.enc_packets() if not p.is_duplicate
        ]
        for member in self.members.values():
            for packet in packets:
                if member.process_enc_packet(packet):
                    break

    def _deliver_lossy(self, message, session_config):
        topology = MulticastTopology(
            len(message.needs_by_user),
            params=self.config.loss,
            random_source=self._random_source.child(),
        )
        session_config = session_config or SessionConfig(
            rho=self.config.rho,
            sending_interval_ms=self.config.sending_interval_ms,
            max_multicast_rounds=self.config.max_multicast_rounds,
        )
        session = RekeySession(
            message,
            topology,
            session_config,
            rng=self._random_source.generator(),
        )
        self.last_delivery_stats = session.run()
        # Members re-derive their (possibly moved) IDs from maxKID before
        # we map transport results back — exactly what they would do on
        # seeing any packet of this message.
        for member in self.members.values():
            member.absorb_encryptions([], max_kid=message.max_kid)
        by_id = {
            member.user_id: member for member in self.members.values()
        }
        for user_id, transport in session.users.items():
            member = by_id.get(user_id)
            if member is None:
                raise TransportError(
                    "transport served unknown user ID %d" % user_id
                )
            member.absorb_encryptions(
                transport.recovered_encryptions, max_kid=message.max_kid
            )

    def _check_group_key(self):
        expected = self.server.group_key
        for name, member in self.members.items():
            if member.group_key != expected:
                raise TransportError(
                    "member %r failed to obtain the new group key" % (name,)
                )

    # -- churn convenience ----------------------------------------------

    def churn(self, n_joins, n_leaves, rng=None, lossy=False):
        """One interval of random churn: helper for examples/benches."""
        if rng is None:
            rng = self._random_source.generator()
        members = sorted(self.members)
        n_leaves = min(n_leaves, len(members))
        for name in rng.choice(members, size=n_leaves, replace=False):
            self.leave(str(name))
        stamp = self.server.intervals_processed
        for index in range(n_joins):
            self.join("member-%d-%d" % (stamp, index))
        return self.rekey(lossy=lossy)

    def __repr__(self):
        return "SecureGroup(members=%d, intervals=%d)" % (
            self.n_members,
            self.server.intervals_processed,
        )
