"""Batching policies: when should the server end a rekey interval?

The paper batches on a fixed period.  Its cited alternative (Setia et
al.'s Kronos) and the obvious baseline span a design space:

- :class:`ImmediateRekeying` — rekey on every request (what batching
  replaces; maximal cost, minimal exposure);
- :class:`PeriodicBatching` — the paper's choice: rekey every ``T``
  seconds regardless of queue size;
- :class:`ThresholdBatching` — rekey when the queue reaches ``R``
  requests (bounds per-batch work, unbounded delay under low churn);
- :class:`HybridBatching` — whichever fires first (bounds both).

The security cost of batching is the **vulnerability window**: the time
between a leave request and the rekey that enforces it, during which the
departed user can still read traffic.  :func:`simulate_policy` replays a
request trace against a policy and reports rekey count, batch sizes and
the window distribution — the policy trade-off quantified in bench A05.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive


class BatchingPolicy:
    """Decides, after each request/tick, whether to rekey now."""

    def should_rekey(self, n_pending, seconds_since_last):
        raise NotImplementedError


class ImmediateRekeying(BatchingPolicy):
    """Rekey on every request (the pre-batching baseline)."""

    def should_rekey(self, n_pending, seconds_since_last):
        return n_pending >= 1


class PeriodicBatching(BatchingPolicy):
    """Rekey every ``interval_seconds`` (the paper's scheme)."""

    def __init__(self, interval_seconds):
        check_positive("interval_seconds", interval_seconds)
        self.interval_seconds = float(interval_seconds)

    def should_rekey(self, n_pending, seconds_since_last):
        return seconds_since_last >= self.interval_seconds


class ThresholdBatching(BatchingPolicy):
    """Rekey when ``max_requests`` have queued."""

    def __init__(self, max_requests):
        check_positive("max_requests", max_requests, integral=True)
        self.max_requests = int(max_requests)

    def should_rekey(self, n_pending, seconds_since_last):
        return n_pending >= self.max_requests


class HybridBatching(BatchingPolicy):
    """Rekey at the period or the request threshold, whichever first."""

    def __init__(self, interval_seconds, max_requests):
        self._periodic = PeriodicBatching(interval_seconds)
        self._threshold = ThresholdBatching(max_requests)

    def should_rekey(self, n_pending, seconds_since_last):
        return self._periodic.should_rekey(
            n_pending, seconds_since_last
        ) or self._threshold.should_rekey(n_pending, seconds_since_last)


@dataclass
class PolicyOutcome:
    """What a policy did to one request trace."""

    n_rekeys: int = 0
    batch_sizes: list = field(default_factory=list)
    #: seconds each *leave* waited between request and enforcement
    leave_windows: list = field(default_factory=list)

    @property
    def mean_batch(self):
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    @property
    def mean_vulnerability_window(self):
        if not self.leave_windows:
            return 0.0
        return float(np.mean(self.leave_windows))

    @property
    def worst_vulnerability_window(self):
        if not self.leave_windows:
            return 0.0
        return float(np.max(self.leave_windows))

    def signatures(self):
        """One signature per rekey."""
        return self.n_rekeys


def poisson_trace(rate_per_second, duration_seconds, leave_fraction=0.5,
                  rng=None):
    """A Poisson request trace: list of (time, is_leave) tuples."""
    check_positive("rate_per_second", rate_per_second)
    check_positive("duration_seconds", duration_seconds)
    if rng is None:
        from repro.util.rng import spawn_rng

        rng = spawn_rng()
    times = []
    clock = 0.0
    while True:
        clock += rng.exponential(1.0 / rate_per_second)
        if clock > duration_seconds:
            break
        times.append((clock, bool(rng.random() < leave_fraction)))
    return times


def simulate_policy(policy, trace, tick_seconds=1.0):
    """Replay ``trace`` (time-ordered (time, is_leave)) under ``policy``.

    The policy is consulted on every request arrival and on a periodic
    tick (so time-based policies fire during quiet spells).  Returns a
    :class:`PolicyOutcome`.
    """
    if not isinstance(policy, BatchingPolicy):
        raise ConfigurationError("policy must be a BatchingPolicy")
    check_positive("tick_seconds", tick_seconds)
    outcome = PolicyOutcome()
    pending = []  # (request time, is_leave)
    last_rekey = 0.0

    def rekey(now):
        nonlocal pending, last_rekey
        if not pending:
            last_rekey = now
            return
        outcome.n_rekeys += 1
        outcome.batch_sizes.append(len(pending))
        for when, is_leave in pending:
            if is_leave:
                outcome.leave_windows.append(now - when)
        pending = []
        last_rekey = now

    events = [(when, "request", is_leave) for when, is_leave in trace]
    if events:
        horizon = events[-1][0]
        tick = tick_seconds
        while tick <= horizon + tick_seconds:
            events.append((tick, "tick", None))
            tick += tick_seconds
    events.sort(key=lambda e: (e[0], e[1] == "tick"))

    for when, kind, is_leave in events:
        if kind == "request":
            pending.append((when, is_leave))
        if policy.should_rekey(len(pending), when - last_rekey):
            rekey(when)
    if pending:
        rekey(events[-1][0] + tick_seconds)
    return outcome
