"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.  The
subclasses mirror the subsystems: key-tree manipulation, rekey-message
construction, FEC coding, packet codecs, and the transport simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter value or inconsistent parameter combination."""


class KeyTreeError(ReproError):
    """Structural violation or invalid operation on a key tree."""


class UnknownUserError(KeyTreeError, KeyError):
    """An operation referenced a user ID that is not in the group."""


class DuplicateUserError(KeyTreeError, ValueError):
    """An attempt to add a user that is already a group member."""


class MarkingError(KeyTreeError):
    """The marking algorithm was driven with an inconsistent batch."""


class KeyAssignmentError(ReproError):
    """The key-assignment algorithm could not pack encryptions legally."""


class PacketError(ReproError):
    """Malformed packet bytes, or a field out of its encodable range."""


class PacketDecodeError(PacketError, ValueError):
    """Raised while parsing packet bytes that violate the wire format."""


class FECError(ReproError):
    """Reed-Solomon erasure coding failure."""


class NotEnoughPacketsError(FECError):
    """Fewer than ``k`` packets of a block survived; decoding impossible."""


class TransportError(ReproError):
    """Protocol-state violation inside the rekey transport simulation."""


class WireError(ReproError):
    """Invalid state or failed delivery on the asyncio UDP wire plane."""


class WireDecodeError(WireError, PacketDecodeError):
    """Raised while parsing a wire datagram that violates the framing."""


class WorkerCrashError(WireError):
    """A wire worker process died — its slice of the client fleet is
    gone, so the run must fail loudly instead of waiting on sockets
    that will never answer."""


class SimulationError(ReproError):
    """Invalid simulator state (event loop, loss process, topology)."""


class CryptoError(ReproError):
    """Failure inside the toy crypto provider (bad key, bad ciphertext)."""


class ServiceError(ReproError):
    """Invalid state or broken invariant in the long-running rekey daemon."""


class WalError(ServiceError):
    """The write-ahead log is corrupt beyond the tolerated torn tail."""


class RecoveryError(ServiceError):
    """Startup recovery failed even after the escalation ladder
    (quarantine, last good snapshot, previous snapshot generation)."""


class HaError(ServiceError):
    """Invalid high-availability state: lease contention, a promotion
    attempted from a diverged replica, or broken cluster wiring."""


class TenancyError(ServiceError):
    """Invalid multi-tenant state: a bad tenant spec or registry, an
    unknown tenant name, or a broken bulk-failover precondition."""


class StaleEpochError(WalError):
    """A deposed leader tried to write with a fencing token older than
    the cluster's current epoch; the write was refused before any byte
    reached the log."""


class ReplicationError(ServiceError):
    """Damaged replication frame or a gap in the streamed record
    sequence; the follower must resubscribe and catch up."""


class ChaosError(ReproError):
    """Invalid fault plan or chaos-harness configuration."""


class ObsError(ReproError):
    """Invalid observability state: bad event schema, malformed JSONL."""
