"""Toy-but-real cryptographic substrate and server cost accounting.

The paper's key server performs three classes of cryptographic work per
rekey interval: symmetric key generation, symmetric encryption of new keys
under old keys, and one digital signature over the rekey message.  Its
performance analysis treats these as per-operation costs; the absolute
numbers come from 2001-era measurements (DES/MD5-class symmetric speeds,
RSA-class signing).

This package provides:

- :class:`SymmetricKey` — an opaque 16-byte key with an identity.
- :class:`KeyFactory` — deterministic key generation from a seed.
- :class:`XorStreamCipher` — a *real* (round-tripping, key-dependent)
  toy cipher: a BLAKE2b-keyed stream XOR.  It is **not secure** and is
  clearly labelled as such; it exists so that the end-to-end system moves
  actual ciphertext bytes and a wrong key genuinely fails to decrypt.
- :class:`SignatureScheme` — a keyed-MAC stand-in for the RSA signature,
  with verify.
- :class:`CostModel` / :class:`CostMeter` — per-operation timing constants
  and an accumulator, used by the processing-time and scalability
  analyses (benches E16/E17).
"""

from repro.crypto.keys import KeyFactory, SymmetricKey
from repro.crypto.cipher import EncryptedKey, XorStreamCipher
from repro.crypto.signer import Signature, SignatureScheme
from repro.crypto.cost import CostMeter, CostModel, CryptoOp

__all__ = [
    "CostMeter",
    "CostModel",
    "CryptoOp",
    "EncryptedKey",
    "KeyFactory",
    "Signature",
    "SignatureScheme",
    "SymmetricKey",
    "XorStreamCipher",
]
