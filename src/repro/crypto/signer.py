"""Digital-signature stand-in for authenticating rekey messages.

The key server signs each rekey message once; users verify.  Signing was
the dominant per-message cost in 2001 (an RSA operation), which is why
batch rekeying — one signature per interval instead of one per membership
change — is the paper's headline processing saving.

We model the signature as a keyed MAC (BLAKE2b) between a signing seed
and a verification seed derived from it; the :class:`CostMeter` charges
RSA-scale time constants so the processing-time analysis keeps the
paper's cost structure.
"""

from __future__ import annotations

import hashlib

from repro.errors import CryptoError
from repro.util.validation import check_non_negative

_SIGNATURE_LENGTH = 64


class Signature:
    """An opaque signature over some bytes."""

    __slots__ = ("_value",)

    def __init__(self, value):
        if len(value) != _SIGNATURE_LENGTH:
            raise CryptoError(
                "signature must be %d bytes, got %d"
                % (_SIGNATURE_LENGTH, len(value))
            )
        self._value = bytes(value)

    @property
    def value(self):
        return self._value

    def __eq__(self, other):
        if not isinstance(other, Signature):
            return NotImplemented
        return self._value == other._value

    def __hash__(self):
        return hash(self._value)

    def __len__(self):
        return _SIGNATURE_LENGTH

    def __repr__(self):
        return "Signature(%s...)" % self._value[:6].hex()


class SignatureScheme:
    """Sign/verify pair for the key server.

    ``signing_key`` stays with the server; ``verification_key`` (here the
    same secret — a MAC, standing in for an RSA keypair) is distributed to
    users at registration time.
    """

    def __init__(self, secret_seed=0, meter=None):
        check_non_negative("secret_seed", secret_seed, integral=True)
        self._secret = hashlib.blake2b(
            b"repro-signing" + int(secret_seed).to_bytes(8, "big"),
            digest_size=32,
        ).digest()
        self._meter = meter

    def sign(self, message):
        """Sign ``message`` bytes, returning a :class:`Signature`."""
        digest = hashlib.blake2b(
            bytes(message), key=self._secret, digest_size=_SIGNATURE_LENGTH
        ).digest()
        if self._meter is not None:
            self._meter.record_sign()
        return Signature(digest)

    def verify(self, message, signature):
        """Return True iff ``signature`` is valid for ``message``."""
        if not isinstance(signature, Signature):
            raise CryptoError("signature must be a Signature instance")
        expected = hashlib.blake2b(
            bytes(message), key=self._secret, digest_size=_SIGNATURE_LENGTH
        ).digest()
        if self._meter is not None:
            self._meter.record_verify()
        return expected == signature.value
