"""A toy stream cipher used to encrypt new keys under old keys.

The rekey message carries *encryptions*: the new key of a k-node encrypted
under the key of one of its children.  For the reproduction we need a
cipher that (a) really round-trips, (b) really fails with the wrong key,
and (c) has deterministic output size, so packet-size accounting matches
the paper's 1027-byte ENC packets.  A BLAKE2b-keyed stream XOR with an
appended keyed checksum satisfies all three.

.. warning:: This construction is **not secure** (no nonce, malleable).
   It is a stand-in for the paper's DES-class cipher; only its byte
   counts and round-trip semantics matter to the performance analysis.
"""

from __future__ import annotations

import hashlib

from repro.crypto.keys import SymmetricKey
from repro.errors import CryptoError

_CHECKSUM_LENGTH = 4


class EncryptedKey:
    """One encryption ``{new_key}_old_key`` as carried in a rekey message.

    ``encryption_id`` is the node ID of the *encrypting* key (the child);
    per the paper's key-identification strategy this uniquely identifies
    the encryption, and the encrypted key's node ID is the child's parent
    ``(id - 1) // d``.
    """

    __slots__ = ("_encryption_id", "_ciphertext")

    def __init__(self, encryption_id, ciphertext):
        if encryption_id < 0:
            raise CryptoError("encryption_id must be >= 0")
        self._encryption_id = int(encryption_id)
        self._ciphertext = bytes(ciphertext)

    @property
    def encryption_id(self):
        """Node ID of the encrypting (child) key."""
        return self._encryption_id

    @property
    def ciphertext(self):
        """The opaque ciphertext bytes."""
        return self._ciphertext

    def __len__(self):
        return len(self._ciphertext)

    def __eq__(self, other):
        if not isinstance(other, EncryptedKey):
            return NotImplemented
        return (
            self._encryption_id == other._encryption_id
            and self._ciphertext == other._ciphertext
        )

    def __hash__(self):
        return hash((self._encryption_id, self._ciphertext))

    def __repr__(self):
        return "EncryptedKey(id=%d, %d bytes)" % (
            self._encryption_id,
            len(self._ciphertext),
        )


class XorStreamCipher:
    """Keyed-stream XOR cipher with an integrity checksum.

    ``encrypt`` output length is ``len(plaintext) + 4``: the 4 trailing
    bytes are a keyed checksum so that decryption under the wrong key is
    *detected* rather than yielding garbage silently — mirroring how a
    user discards encryptions that are not on its key path.
    """

    def __init__(self, meter=None):
        self._meter = meter

    @staticmethod
    def _keystream(key, length):
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            blocks.append(
                hashlib.blake2b(
                    counter.to_bytes(8, "big"),
                    key=key.material,
                    digest_size=32,
                ).digest()
            )
            counter += 1
        return b"".join(blocks)[:length]

    @staticmethod
    def _checksum(key, data):
        return hashlib.blake2b(
            data, key=key.material, digest_size=_CHECKSUM_LENGTH
        ).digest()

    def encrypt(self, plaintext, key):
        """Encrypt ``plaintext`` bytes under ``key``."""
        if not isinstance(key, SymmetricKey):
            raise CryptoError("key must be a SymmetricKey")
        plaintext = bytes(plaintext)
        length = len(plaintext)
        stream = self._keystream(key, length)
        # XOR as one big-int op: identical bytes to the per-byte zip,
        # without a genexpr frame per byte (this runs once per tree
        # edge per rekey, thousands of times an interval).
        body = (
            int.from_bytes(plaintext, "big")
            ^ int.from_bytes(stream, "big")
        ).to_bytes(length, "big")
        if self._meter is not None:
            self._meter.record_encrypt(len(plaintext))
        return body + self._checksum(key, plaintext)

    def decrypt(self, ciphertext, key):
        """Decrypt; raises :class:`CryptoError` on wrong key / corruption."""
        if not isinstance(key, SymmetricKey):
            raise CryptoError("key must be a SymmetricKey")
        ciphertext = bytes(ciphertext)
        if len(ciphertext) < _CHECKSUM_LENGTH:
            raise CryptoError("ciphertext too short")
        body, checksum = (
            ciphertext[:-_CHECKSUM_LENGTH],
            ciphertext[-_CHECKSUM_LENGTH:],
        )
        stream = self._keystream(key, len(body))
        plaintext = bytes(c ^ s for c, s in zip(body, stream))
        if self._checksum(key, plaintext) != checksum:
            raise CryptoError("decryption failed: wrong key or corrupt data")
        if self._meter is not None:
            self._meter.record_decrypt(len(body))
        return plaintext

    def encrypt_key(self, new_key, under_key, encryption_id=None):
        """Encrypt ``new_key`` under ``under_key``, yielding EncryptedKey.

        ``encryption_id`` defaults to the encrypting key's node ID, but
        callers must pass the *current* child node ID explicitly when the
        encrypting key may have moved (a split relocates a u-node while
        its individual key material — and recorded node ID — stays put).
        """
        if not isinstance(new_key, SymmetricKey):
            raise CryptoError("new_key must be a SymmetricKey")
        if encryption_id is None:
            encryption_id = under_key.node_id
        ciphertext = self.encrypt(new_key.material, under_key)
        return EncryptedKey(encryption_id, ciphertext)

    def decrypt_key(self, encrypted, under_key, node_id=0, version=0):
        """Recover the :class:`SymmetricKey` inside ``encrypted``."""
        material = self.decrypt(encrypted.ciphertext, under_key)
        return SymmetricKey(material, node_id=node_id, version=version)


#: Wire size of one <encryption, ID> pair in an ENC packet: a 2-byte
#: encryption ID plus a 16-byte key and the 4-byte checksum.  The paper's
#: 1027-byte ENC packet carries 46 encryptions; with a 15-byte header,
#: (1027 - 15) // 22 = 46 — our framing reproduces that capacity exactly.
ENCRYPTION_WIRE_SIZE = 2 + 16 + _CHECKSUM_LENGTH
