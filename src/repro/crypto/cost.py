"""Per-operation cost model for the key-server processing analysis.

The paper's processing-time and scalability results are *cost accounting*:
the time to process one batch is

    T = n_keygen * c_keygen + n_encrypt * c_encrypt + c_sign
        (+ marking-algorithm time, which is negligible in comparison)

with constants measured on 2001 hardware.  The defaults below are in that
regime — microseconds for symmetric operations, milliseconds for the RSA
signature — and are freely overridable, because only the *shape* of the
resulting curves is asserted by the reproduction (see EXPERIMENTS.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.validation import check_non_negative


class CryptoOp(enum.Enum):
    """The crypto operation classes the server/user cost model charges."""

    KEYGEN = "keygen"
    ENCRYPT = "encrypt"
    DECRYPT = "decrypt"
    SIGN = "sign"
    VERIFY = "verify"


@dataclass(frozen=True)
class CostModel:
    """Time constants, in seconds per operation.

    Defaults reflect 2001-era measurements used in the paper's analysis:

    - symmetric key generation:   ~4 µs
    - symmetric key encryption:   ~7 µs  (one 16-byte key under DES-class)
    - symmetric key decryption:   ~7 µs
    - RSA signature:              ~30 ms (1024-bit private-key op)
    - RSA verification:           ~1 ms  (public-key op)
    """

    keygen_seconds: float = 4e-6
    encrypt_seconds: float = 7e-6
    decrypt_seconds: float = 7e-6
    sign_seconds: float = 30e-3
    verify_seconds: float = 1e-3

    def __post_init__(self):
        check_non_negative("keygen_seconds", self.keygen_seconds)
        check_non_negative("encrypt_seconds", self.encrypt_seconds)
        check_non_negative("decrypt_seconds", self.decrypt_seconds)
        check_non_negative("sign_seconds", self.sign_seconds)
        check_non_negative("verify_seconds", self.verify_seconds)
        # The meter charges per primitive call, so the lookup table is
        # built once (the dataclass is frozen — fields cannot drift).
        object.__setattr__(
            self,
            "_table",
            {
                CryptoOp.KEYGEN: self.keygen_seconds,
                CryptoOp.ENCRYPT: self.encrypt_seconds,
                CryptoOp.DECRYPT: self.decrypt_seconds,
                CryptoOp.SIGN: self.sign_seconds,
                CryptoOp.VERIFY: self.verify_seconds,
            },
        )

    def seconds_for(self, op):
        """Cost in seconds of one operation of class ``op``."""
        return self._table[CryptoOp(op)]

    def batch_seconds(self, keygens, encryptions, signatures=1):
        """Modelled server time for one rekey batch."""
        check_non_negative("keygens", keygens, integral=True)
        check_non_negative("encryptions", encryptions, integral=True)
        check_non_negative("signatures", signatures, integral=True)
        return (
            keygens * self.keygen_seconds
            + encryptions * self.encrypt_seconds
            + signatures * self.sign_seconds
        )


@dataclass
class CostMeter:
    """Accumulates operation counts and modelled seconds.

    The crypto primitives accept an optional meter and charge it on every
    call; analyses that never touch real bytes can charge the meter
    directly via :meth:`charge`.
    """

    model: CostModel = field(default_factory=CostModel)
    counts: dict = field(default_factory=dict)
    seconds: float = 0.0

    def _bump(self, op, n=1):
        if op.__class__ is not CryptoOp:
            op = CryptoOp(op)
        self.counts[op] = self.counts.get(op, 0) + n
        self.seconds += n * self.model._table[op]

    def record_keygen(self):
        self._bump(CryptoOp.KEYGEN)

    def record_encrypt(self, nbytes=16):
        # Per-key encryption cost; nbytes kept for interface symmetry.
        self._bump(CryptoOp.ENCRYPT)

    def record_decrypt(self, nbytes=16):
        self._bump(CryptoOp.DECRYPT)

    def record_sign(self):
        self._bump(CryptoOp.SIGN)

    def record_verify(self):
        self._bump(CryptoOp.VERIFY)

    def charge(self, op, count=1):
        """Charge ``count`` operations of class ``op`` without doing them."""
        check_non_negative("count", count, integral=True)
        self._bump(op, count)

    def count(self, op):
        """Number of operations of class ``op`` recorded so far."""
        return self.counts.get(CryptoOp(op), 0)

    def reset(self):
        """Zero all counters."""
        self.counts.clear()
        self.seconds = 0.0

    def snapshot(self):
        """Return ``(counts-by-name, seconds)`` for reporting."""
        return (
            {op.value: n for op, n in sorted(self.counts.items(), key=lambda kv: kv[0].value)},
            self.seconds,
        )
