"""Symmetric keys and deterministic key generation.

Keys in a key tree are versioned: rekeying replaces the *key material* of
a logical node while the node identity persists.  ``SymmetricKey`` couples
16 bytes of material with a ``(node_id, version)`` identity so tests and
the transport layer can talk about "the key of node 7 at version 3".
"""

from __future__ import annotations

import hashlib

from repro.errors import CryptoError
from repro.util.validation import check_non_negative

KEY_LENGTH = 16  # bytes of key material, AES-128-sized


class SymmetricKey:
    """An immutable 16-byte symmetric key with a logical identity.

    Two keys compare equal iff their material is equal; the
    ``(node_id, version)`` identity is carried for bookkeeping and does
    not participate in equality (a re-keyed node is a *different* key).
    """

    __slots__ = ("_material", "_node_id", "_version")

    def __init__(self, material, node_id=0, version=0):
        if not isinstance(material, (bytes, bytearray)):
            raise CryptoError(
                "key material must be bytes, got %s" % type(material).__name__
            )
        if len(material) != KEY_LENGTH:
            raise CryptoError(
                "key material must be %d bytes, got %d"
                % (KEY_LENGTH, len(material))
            )
        check_non_negative("node_id", node_id, integral=True)
        check_non_negative("version", version, integral=True)
        self._material = bytes(material)
        self._node_id = int(node_id)
        self._version = int(version)

    @property
    def material(self):
        """The raw 16 bytes of key material."""
        return self._material

    @property
    def node_id(self):
        """The key-tree node ID this key was generated for."""
        return self._node_id

    @property
    def version(self):
        """Monotone version counter of the node's key material."""
        return self._version

    def fingerprint(self):
        """Short hex digest identifying the key material (for logs)."""
        return hashlib.blake2b(self._material, digest_size=6).hexdigest()

    def __eq__(self, other):
        if not isinstance(other, SymmetricKey):
            return NotImplemented
        return self._material == other._material

    def __hash__(self):
        return hash(self._material)

    def __repr__(self):
        return "SymmetricKey(node_id=%d, version=%d, fp=%s)" % (
            self._node_id,
            self._version,
            self.fingerprint(),
        )


class KeyFactory:
    """Deterministic generator of fresh symmetric keys.

    Key material is derived as ``BLAKE2b(seed || node_id || version)``;
    distinct ``(node_id, version)`` pairs therefore always yield distinct
    material, and an entire simulated system is reproducible from the
    factory seed.  A real deployment would use a CSPRNG; determinism is a
    deliberate substitution for testability (see DESIGN.md).
    """

    def __init__(self, seed=0, meter=None):
        check_non_negative("seed", seed, integral=True)
        self._seed = int(seed).to_bytes(8, "big")
        self._meter = meter
        self._generated = 0

    @property
    def generated_count(self):
        """Total number of keys this factory has produced."""
        return self._generated

    def new_key(self, node_id, version):
        """Derive the key for ``node_id`` at ``version``."""
        check_non_negative("node_id", node_id, integral=True)
        check_non_negative("version", version, integral=True)
        digest = hashlib.blake2b(
            self._seed
            + int(node_id).to_bytes(8, "big")
            + int(version).to_bytes(8, "big"),
            digest_size=KEY_LENGTH,
        ).digest()
        self._generated += 1
        if self._meter is not None:
            self._meter.record_keygen()
        return SymmetricKey(digest, node_id=node_id, version=version)
