"""Integer node-ID arithmetic over the expanded d-ary key tree.

The key server expands the key tree to a full, balanced d-ary tree by
padding with null nodes (*n-nodes*) and assigns IDs breadth-first:
the root is 0, the children of node ``m`` are ``d*m+1 .. d*m+d``, and the
parent of node ``m`` is ``(m-1)//d``.  All structural relations are thus
pure arithmetic — no pointers travel on the wire.

The functions here are used by both the server (tree maintenance, key
assignment) and users (deciding which received encryptions lie on their
leaf-to-root path, and re-deriving their own ID after the tree was
restructured — Theorem 4.2).
"""

from __future__ import annotations

from repro.errors import KeyTreeError
from repro.util.validation import check_non_negative, check_positive

ROOT_ID = 0


def _check_degree(d):
    check_positive("tree degree d", d, integral=True)
    if d < 2:
        raise KeyTreeError("tree degree d must be >= 2, got %d" % d)
    return d


def parent_id(node_id, d):
    """ID of the parent of ``node_id``; the root has no parent."""
    _check_degree(d)
    check_non_negative("node_id", node_id, integral=True)
    if node_id == ROOT_ID:
        raise KeyTreeError("the root (ID 0) has no parent")
    return (node_id - 1) // d


def children_ids(node_id, d):
    """IDs of the ``d`` children of ``node_id``, leftmost first."""
    _check_degree(d)
    check_non_negative("node_id", node_id, integral=True)
    first = d * node_id + 1
    return list(range(first, first + d))


def child_index(node_id, d):
    """Position (0-based) of ``node_id`` among its parent's children."""
    _check_degree(d)
    if node_id == ROOT_ID:
        raise KeyTreeError("the root (ID 0) has no sibling position")
    return (node_id - 1) % d


def level_of(node_id, d):
    """Depth of ``node_id`` (root is level 0).

    Level ``l`` spans IDs ``[(d^l - 1)/(d-1), (d^(l+1) - 1)/(d-1) - 1]``.
    """
    _check_degree(d)
    check_non_negative("node_id", node_id, integral=True)
    level = 0
    first_of_level = 0
    width = 1
    while node_id > first_of_level + width - 1:
        first_of_level += width
        width *= d
        level += 1
    return level


def first_id_of_level(level, d):
    """Smallest node ID on ``level`` (root is level 0)."""
    _check_degree(d)
    check_non_negative("level", level, integral=True)
    return (d**level - 1) // (d - 1)


def ids_of_level(level, d):
    """``range`` of all node IDs on ``level``."""
    first = first_id_of_level(level, d)
    return range(first, first + d**level)


def path_to_root(node_id, d):
    """IDs from ``node_id`` up to and including the root, bottom-up."""
    _check_degree(d)
    check_non_negative("node_id", node_id, integral=True)
    path = [node_id]
    while path[-1] != ROOT_ID:
        path.append((path[-1] - 1) // d)
    return path


def is_ancestor(ancestor_id, node_id, d):
    """True iff ``ancestor_id`` lies on ``node_id``'s path to the root.

    A node counts as its own ancestor (matching the paper's "path from
    the u-node to the tree root" which includes both endpoints).
    """
    _check_degree(d)
    check_non_negative("ancestor_id", ancestor_id, integral=True)
    check_non_negative("node_id", node_id, integral=True)
    current = node_id
    while current > ancestor_id:
        current = (current - 1) // d
    return current == ancestor_id


def leftmost_descendant(node_id, generations, d):
    """The paper's ``f(x)``: leftmost descendant ``generations`` down.

    ``f(x) = d^x * m + (1 - d^x) / (1 - d) = d^x * m + (d^x - 1)/(d - 1)``.
    ``f(0)`` is the node itself; ``f(1)`` its leftmost child; splitting a
    u-node ``x`` times in place moves its user to ``f(x)``.
    """
    _check_degree(d)
    check_non_negative("node_id", node_id, integral=True)
    check_non_negative("generations", generations, integral=True)
    power = d**generations
    return power * node_id + (power - 1) // (d - 1)


def derive_new_user_id(old_id, max_knode_id, d):
    """Theorem 4.2: a user's current ID from its old ID and ``maxKID``.

    After the marking algorithm runs, a u-node may have been pushed down
    by node splits; its new ID is the unique ``f(x)``, ``x >= 0``, with
    ``max_knode_id < f(x) <= d * max_knode_id + d``.  Users compute this
    locally from the ``maxKID`` field of any received ENC packet — no
    per-user notification is ever sent.

    Raises :class:`KeyTreeError` if no ``x`` satisfies the bound (which
    Theorem 4.2 proves cannot happen for IDs produced by the marking
    algorithm, so hitting it means the inputs are inconsistent).
    """
    _check_degree(d)
    check_non_negative("old_id", old_id, integral=True)
    check_non_negative("max_knode_id", max_knode_id, integral=True)
    upper = d * max_knode_id + d
    x = 0
    while True:
        candidate = leftmost_descendant(old_id, x, d)
        if candidate > upper:
            raise KeyTreeError(
                "no f(x) in (%d, %d] for old_id=%d, d=%d: inconsistent "
                "maxKID" % (max_knode_id, upper, old_id, d)
            )
        if candidate > max_knode_id:
            return candidate
        x += 1


def subtree_capacity(height, d):
    """Number of leaves of a full d-ary tree of the given ``height``."""
    _check_degree(d)
    check_non_negative("height", height, integral=True)
    return d**height


def min_height_for(n_users, d):
    """Smallest height whose full d-ary tree holds ``n_users`` leaves."""
    _check_degree(d)
    check_positive("n_users", n_users, integral=True)
    height = 0
    while d**height < n_users:
        height += 1
    return height
