"""The marking algorithm: periodic batch rekeying (Appendix B).

At the end of each rekey interval the key server has collected ``J`` join
and ``L`` leave requests.  :class:`MarkingAlgorithm.apply` performs, in
order:

1. **Tree update.**  Departed u-nodes are replaced by joined users
   (``J = L``), partially replaced with the surplus vacated to n-nodes
   and empty k-subtrees pruned (``J < L``), or — for surplus joins
   (``J > L``) — n-node slots in ``(nk, d*nk + d]`` are filled in ID
   order and then the node ``nk + 1`` is split repeatedly, pushing its
   user to its leftmost child (which is how Theorem 4.2's ``f(x)`` IDs
   arise).

2. **Labelling.**  Every node relevant to the batch gets one of the four
   labels Unchanged / Join / Leave / Replace; a k-node's key must change
   iff its label is Join or Replace.

3. **Rekeying.**  Every updated k-node (and every replaced/joined u-node)
   receives fresh key material.

4. **Rekey-subtree construction.**  For each updated k-node, one
   *encryption edge* per present child: the parent's new key encrypted
   under the child's current key.  The edge list, in bottom-up message
   order, is the workload handed to the key-assignment algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DuplicateUserError, MarkingError, UnknownUserError
from repro.keytree import ids as idmath
from repro.keytree.nodes import NodeKind, NodeLabel
from repro.keytree.tree import KeyTree
from repro.obs.recorder import NULL


@dataclass(frozen=True)
class EncryptionEdge:
    """One encryption of a rekey message: ``{new key of parent}_child``.

    The encryption's wire ID is ``child_id`` (the encrypting key's node
    ID); the encrypted key's node is always ``(child_id - 1) // d``.
    """

    parent_id: int
    child_id: int

    def __post_init__(self):
        if self.parent_id < 0 or self.child_id < 0:
            raise MarkingError("edge IDs must be non-negative")

    @property
    def encryption_id(self):
        """Wire identifier of this encryption (the child node ID)."""
        return self.child_id


@dataclass
class RekeySubtree:
    """The output of one marking run: what changed and what to send.

    ``edges`` are in message order (deepest updated k-node first,
    children left to right), matching the paper's bottom-up traversal.
    """

    degree: int
    labels: dict = field(default_factory=dict)
    updated_knode_ids: list = field(default_factory=list)
    edges: list = field(default_factory=list)

    @property
    def n_encryptions(self):
        """Total encryptions in the rekey message (with no packing yet)."""
        return len(self.edges)

    @property
    def n_updated_keys(self):
        """Number of k-node keys that changed this interval."""
        return len(self.updated_knode_ids)

    def label_of(self, node_id):
        """Label of ``node_id`` (Unchanged when not recorded)."""
        return self.labels.get(node_id, NodeLabel.UNCHANGED)

    def is_updated(self, node_id):
        """True iff the k-node at ``node_id`` received a new key."""
        return node_id in self._updated_set

    @property
    def _updated_set(self):
        cached = getattr(self, "_updated_cache", None)
        if cached is None:
            cached = set(self.updated_knode_ids)
            object.__setattr__(self, "_updated_cache", cached)
        return cached


class BatchResult:
    """Everything produced by applying one batch of joins and leaves."""

    def __init__(self, tree, subtree, joined_ids, departed_ids, moved):
        self.tree = tree
        self.subtree = subtree
        #: user name -> u-node ID for users joined in this batch
        self.joined_ids = dict(joined_ids)
        #: u-node IDs vacated by departures (before any reuse)
        self.departed_ids = list(departed_ids)
        #: old ID -> new ID for users relocated by splits
        self.moved = dict(moved)
        self.max_knode_id = tree.max_knode_id
        self._needs_cache = None

    @property
    def n_encryptions(self):
        """Number of encryptions in this batch's rekey message."""
        return self.subtree.n_encryptions

    def needs_by_user(self):
        """Map u-node ID -> ordered encryption IDs that user must get.

        Order is deepest-first along the user's path, which is also valid
        decryption order (each new key is decrypted either with the
        user's individual key or with a new key recovered earlier in the
        list).  Users needing nothing are omitted.
        """
        if self._needs_cache is not None:
            return self._needs_cache
        updated = self.subtree._updated_set
        needs = {}
        d = self.tree.degree
        for u_id in self.tree.u_node_ids():
            path = idmath.path_to_root(u_id, d)
            wanted = [
                child
                for child, parent in zip(path, path[1:])
                if parent in updated
            ]
            if wanted:
                needs[u_id] = wanted
        self._needs_cache = needs
        return needs

    def needs_for_user(self, u_node_id):
        """Ordered encryption IDs needed by the user at ``u_node_id``."""
        return self.needs_by_user().get(u_node_id, [])


class MarkingAlgorithm:
    """Applies batches of joins/leaves to a :class:`KeyTree`."""

    #: BatchResult (sub)class to instantiate; the array engine swaps in
    #: a variant with vectorized needs enumeration.
    result_class = BatchResult

    def __init__(self, renew_keys=True):
        #: When False, updated k-nodes are identified but key material is
        #: not regenerated — slightly faster for workload-only studies.
        self.renew_keys = renew_keys
        #: observability recorder (repro.obs); NULL is a strict no-op
        self.obs = NULL

    # -- public entry ---------------------------------------------------

    def apply(self, tree, joins=(), leaves=()):
        """Apply ``joins`` and ``leaves`` to ``tree``; return BatchResult.

        ``joins`` is an iterable of new user names, ``leaves`` of current
        member names.  The tree is mutated in place.
        """
        joins = list(joins)
        leaves = list(leaves)
        with self.obs.span(
            "marking.apply", joins=len(joins), leaves=len(leaves)
        ):
            return self._apply_batch(tree, joins, leaves)

    def _apply_batch(self, tree, joins, leaves):
        if not isinstance(tree, KeyTree):
            raise MarkingError("tree must be a KeyTree")
        joins = list(joins)
        leaves = list(leaves)
        self._check_batch(tree, joins, leaves)

        if tree.n_users == 0:
            return self._bootstrap(tree, joins)

        pre_positions = {
            user: tree.user_node_id(user)
            for user in tree.users
            if user not in leaves
        }

        departed_ids = sorted(tree.user_node_id(user) for user in leaves)
        replaced_ids, joined_ids, vacated = self._update_tree(
            tree, joins, leaves, departed_ids
        )
        moved = {
            old_id: tree.user_node_id(user)
            for user, old_id in pre_positions.items()
            if tree.user_node_id(user) != old_id
        }
        labels = self._label(tree, replaced_ids, joined_ids, vacated)
        subtree = self._build_subtree(tree, labels)
        return self.result_class(
            tree,
            subtree,
            joined_ids={
                user: tree.user_node_id(user) for user in joins
            },
            departed_ids=departed_ids,
            moved=moved,
        )

    # -- validation -----------------------------------------------------

    @staticmethod
    def _check_batch(tree, joins, leaves):
        if len(set(joins)) != len(joins):
            raise DuplicateUserError("duplicate names in join batch")
        if len(set(leaves)) != len(leaves):
            raise MarkingError("duplicate names in leave batch")
        current = tree.users
        leave_set = set(leaves)
        for user in joins:
            # A member appearing in *both* lists left and re-joined
            # within this interval: legal, handled as an in-place
            # Replace at its old slot (its old key must die either way).
            if user in current and user not in leave_set:
                raise DuplicateUserError(
                    "join request for existing member %r" % (user,)
                )
        for user in leaves:
            if user not in current:
                raise UnknownUserError(
                    "leave request for non-member %r" % (user,)
                )

    # -- bootstrap (empty tree) ------------------------------------------

    def _bootstrap(self, tree, joins):
        """Populate an empty tree: everything is a Join."""
        if not joins:
            empty = RekeySubtree(degree=tree.degree)
            return self.result_class(tree, empty, {}, [], {})
        height = idmath.min_height_for(len(joins), tree.degree) or 1
        first_leaf = idmath.first_id_of_level(height, tree.degree)
        for offset, user in enumerate(joins):
            tree.create_u_node(first_leaf + offset, user)
        tree.ensure_ancestors(
            range(first_leaf, first_leaf + len(joins))
        )
        joined_ids = [tree.user_node_id(user) for user in joins]
        labels = {u_id: NodeLabel.JOIN for u_id in joined_ids}
        labels.update(self._label_k_nodes(tree, labels, vacated=set()))
        subtree = self._build_subtree(tree, labels)
        return self.result_class(
            tree,
            subtree,
            joined_ids={user: tree.user_node_id(user) for user in joins},
            departed_ids=[],
            moved={},
        )

    # -- step 1: tree update ---------------------------------------------

    def _update_tree(self, tree, joins, leaves, departed_ids):
        """Mutate the tree structure; return bookkeeping for labelling."""
        leave_set = set(leaves)
        rejoins = [user for user in joins if user in leave_set]
        rejoined_ids = []
        for user in rejoins:
            # Left and re-joined within the interval: the member keeps
            # its slot but its individual key is renewed in place — a
            # Replace whose departing and arriving user happen to match.
            node_id = tree.user_node_id(user)
            tree.replace_user(node_id, user)
            rejoined_ids.append(node_id)
        if rejoins:
            rejoined_set = set(rejoined_ids)
            joins = [user for user in joins if user not in leave_set]
            departed_ids = [
                node_id
                for node_id in departed_ids
                if node_id not in rejoined_set
            ]

        n_replace = min(len(joins), len(departed_ids))
        replaced_ids = departed_ids[:n_replace]
        for node_id, user in zip(replaced_ids, joins):
            tree.replace_user(node_id, user)

        vacated = set()
        if len(departed_ids) > n_replace:
            for node_id in departed_ids[n_replace:]:
                tree.remove_node(node_id)
                vacated.add(node_id)
            vacated |= self._prune_empty_knodes(tree, vacated)

        replaced_ids = rejoined_ids + replaced_ids
        joined_ids = list(replaced_ids)
        extra_joins = joins[n_replace:]
        if extra_joins:
            joined_ids += self._place_extra_joins(tree, extra_joins)
        return replaced_ids, joined_ids, vacated

    def _prune_empty_knodes(self, tree, vacated):
        """Remove k-nodes left with no present children; return their IDs.

        ``vacated`` (the u-node IDs removed this batch) is unused here —
        the from-scratch algorithm scans every k-node — but lets
        :class:`IncrementalMarkingAlgorithm` restrict the scan to the
        ancestors of the departures.
        """
        pruned = set()
        for k_id in sorted(tree.k_node_ids(), reverse=True):
            if not tree.children_of(k_id):
                tree.remove_node(k_id)
                pruned.add(k_id)
        return pruned

    def _note_move(self, user, old_id):
        """Hook: a split relocated ``user`` from ``old_id``.

        The from-scratch algorithm reconstructs moves by diffing full
        position maps, so it ignores this; the incremental algorithm
        records moves here to avoid the O(N) diff.
        """

    def _place_extra_joins(self, tree, extra_joins):
        """Fill n-node slots in ``(nk, d*nk + d]``; split ``nk+1`` as needed."""
        d = tree.degree
        placed_ids = []
        cursor = 0
        nk = tree.max_knode_id
        if nk < 0:
            raise MarkingError("cannot place joins: tree has no k-nodes")

        def place(slot):
            nonlocal cursor
            tree.create_u_node(slot, extra_joins[cursor])
            tree.ensure_ancestors([slot])
            placed_ids.append(slot)
            cursor += 1

        # First pass: fill existing n-node holes in (nk, d*nk + d].
        # Ancestor creation never raises nk: a slot's ancestors all have
        # IDs <= nk, so the range stays valid throughout the scan.
        for slot in range(nk + 1, d * nk + d + 1):
            if cursor >= len(extra_joins):
                break
            if not tree.has_node(slot):
                place(slot)

        # Remaining joins: split nk+1 repeatedly.  After a split at m the
        # only fresh slots in the new range (m, d*m + d] are the split
        # node's children d*m+2 .. d*m+d (d*m+1 holds the moved user), so
        # each split is O(d).
        while cursor < len(extra_joins):
            split_id = nk + 1
            node = tree.node(split_id)
            if not node.is_u_node:
                raise MarkingError(
                    "split target %d is not a u-node" % split_id
                )
            self._note_move(node.user, split_id)
            tree.move_u_node(split_id, d * split_id + 1)
            tree.create_k_node(split_id)
            nk = split_id
            for slot in range(d * split_id + 2, d * split_id + d + 1):
                if cursor >= len(extra_joins):
                    break
                place(slot)
        return placed_ids

    # -- step 2: labelling -------------------------------------------------

    def _label(self, tree, replaced_ids, joined_ids, vacated):
        labels = {}
        for node_id in vacated:
            labels[node_id] = NodeLabel.LEAVE
        for node_id in joined_ids:
            labels[node_id] = NodeLabel.JOIN
        for node_id in replaced_ids:
            # Departed-then-joined at the same slot: Replace.
            labels[node_id] = NodeLabel.REPLACE
        labels.update(self._label_k_nodes(tree, labels, vacated))
        return labels

    @staticmethod
    def _label_k_nodes(tree, leaf_labels, vacated):
        """Bottom-up labelling of k-nodes from their children's labels.

        Absent children are counted as Leave only when they were vacated
        *this batch*; a permanently absent slot (sparse tree) carries no
        information and is ignored.
        """
        labels = dict(leaf_labels)
        k_labels = {}
        for k_id in sorted(tree.k_node_ids(), reverse=True):
            child_labels = []
            for child in tree.children_of(k_id, present_only=False):
                if tree.has_node(child):
                    child_labels.append(
                        labels.get(child, NodeLabel.UNCHANGED)
                    )
                elif child in vacated:
                    child_labels.append(NodeLabel.LEAVE)
            if not child_labels:
                raise MarkingError(
                    "k-node %d has no children to label from" % k_id
                )
            if all(c is NodeLabel.UNCHANGED for c in child_labels):
                label = NodeLabel.UNCHANGED
            elif all(
                c in (NodeLabel.UNCHANGED, NodeLabel.JOIN)
                for c in child_labels
            ):
                label = NodeLabel.JOIN
            else:
                label = NodeLabel.REPLACE
            labels[k_id] = label
            k_labels[k_id] = label
        return k_labels

    # -- steps 3 & 4: rekeying and subtree construction --------------------

    def _build_subtree(self, tree, labels):
        updated = sorted(
            node_id
            for node_id, label in labels.items()
            if label.key_changed
            and tree.kind_of(node_id) is NodeKind.K_NODE
        )
        if self.renew_keys:
            for node_id in updated:
                tree.renew_key(node_id)
        d = tree.degree
        # Message order: deepest level first, then by ID.
        by_depth = sorted(
            updated, key=lambda n: (-idmath.level_of(n, d), n)
        )
        edges = [
            EncryptionEdge(parent_id=k_id, child_id=child)
            for k_id in by_depth
            for child in tree.children_of(k_id)
        ]
        return RekeySubtree(
            degree=d,
            labels=labels,
            updated_knode_ids=updated,
            edges=edges,
        )


def _touched_ancestors(touched_ids, degree):
    """All proper ancestors (root included) of ``touched_ids``.

    Walks each leaf's path upward, stopping as soon as it meets an
    ancestor already collected, so the total work is bounded by the size
    of the union of the paths, not leaves x height.
    """
    ancestors = set()
    for node_id in touched_ids:
        parent = node_id
        while parent > 0:
            parent = (parent - 1) // degree
            if parent in ancestors:
                break
            ancestors.add(parent)
    return ancestors


class IncrementalMarkingAlgorithm(MarkingAlgorithm):
    """Marking that re-marks only the paths touched by this batch.

    The from-scratch :class:`MarkingAlgorithm` walks every k-node of the
    tree each interval (pruning, labelling) and diffs full user-position
    maps to detect split moves — all O(N) work even when the batch is
    tiny.  This variant visits only the ancestors of the u-nodes the
    batch touches (joined, replaced, or vacated slots), records split
    moves as they happen, and leaves every other node untouched.

    Every node *not* visited is implicitly ``Unchanged``, which is
    exactly the contract of :meth:`RekeySubtree.label_of`; the resulting
    tree, labels, updated-key set, edge order, and key material are
    byte-identical to the from-scratch algorithm's (enforced by the
    differential property tests in ``tests/keytree``).
    """

    def __init__(self, renew_keys=True):
        super().__init__(renew_keys=renew_keys)
        self._moved_from = {}

    def _apply_batch(self, tree, joins, leaves):
        if not isinstance(tree, KeyTree):
            raise MarkingError("tree must be a KeyTree")
        joins = list(joins)
        leaves = list(leaves)
        self._check_batch(tree, joins, leaves)

        if tree.n_users == 0:
            return self._bootstrap(tree, joins)

        self._moved_from = {}
        departed_ids = sorted(tree.user_node_id(user) for user in leaves)
        replaced_ids, joined_ids, vacated = self._update_tree(
            tree, joins, leaves, departed_ids
        )
        new_users = set(joins)
        moved = {}
        for user, old_id in self._moved_from.items():
            # Users who joined this very batch are fresh placements, not
            # relocations — the from-scratch diff never reports them.
            if user in new_users:
                continue
            new_id = tree.user_node_id(user)
            if new_id != old_id:
                moved[old_id] = new_id
        self._moved_from = {}
        labels = self._label(tree, replaced_ids, joined_ids, vacated)
        subtree = self._build_subtree(tree, labels)
        return self.result_class(
            tree,
            subtree,
            joined_ids={
                user: tree.user_node_id(user) for user in joins
            },
            departed_ids=departed_ids,
            moved=moved,
        )

    def _note_move(self, user, old_id):
        # Only the *first* position matters: a user split-moved twice in
        # one batch is reported as original -> final, matching the
        # position-map diff of the from-scratch algorithm.
        self._moved_from.setdefault(user, old_id)

    def _prune_empty_knodes(self, tree, vacated):
        """Prune only among ancestors of this batch's vacated slots.

        Any k-node left childless by the batch must be an ancestor of a
        removed u-node (every k-node had a u-node descendant before the
        batch), so restricting the scan loses nothing.  Descending ID
        order makes cascaded pruning safe: a pruned node's parent — also
        an ancestor of the same vacated leaf — is visited afterwards.
        """
        pruned = set()
        candidates = _touched_ancestors(vacated, tree.degree)
        for k_id in sorted(candidates, reverse=True):
            if (
                tree.kind_of(k_id) is NodeKind.K_NODE
                and not tree.children_of(k_id)
            ):
                tree.remove_node(k_id)
                pruned.add(k_id)
        return pruned

    @staticmethod
    def _label_k_nodes(tree, leaf_labels, vacated):
        """Label only k-nodes with a labelled or vacated descendant.

        A k-node with no touched descendant has all-Unchanged children
        and would be labelled Unchanged by the full scan; leaving it out
        is equivalent because ``RekeySubtree.label_of`` defaults to
        Unchanged and only Join/Replace labels trigger rekeying.
        """
        touched = set(leaf_labels) | set(vacated)
        candidates = _touched_ancestors(touched, tree.degree)
        labels = dict(leaf_labels)
        k_labels = {}
        for k_id in sorted(candidates, reverse=True):
            if tree.kind_of(k_id) is not NodeKind.K_NODE:
                # Ancestors of vacated slots may themselves have been
                # pruned this batch; they carry a Leave label already.
                continue
            child_labels = []
            for child in tree.children_of(k_id, present_only=False):
                if tree.has_node(child):
                    child_labels.append(
                        labels.get(child, NodeLabel.UNCHANGED)
                    )
                elif child in vacated:
                    child_labels.append(NodeLabel.LEAVE)
            if not child_labels:
                raise MarkingError(
                    "k-node %d has no children to label from" % k_id
                )
            if all(c is NodeLabel.UNCHANGED for c in child_labels):
                label = NodeLabel.UNCHANGED
            elif all(
                c in (NodeLabel.UNCHANGED, NodeLabel.JOIN)
                for c in child_labels
            ):
                label = NodeLabel.JOIN
            else:
                label = NodeLabel.REPLACE
            labels[k_id] = label
            k_labels[k_id] = label
        return k_labels


def make_marking(incremental=True, renew_keys=True, obs=None, engine="python"):
    """Instantiate a marking algorithm; incremental is the default.

    ``engine`` other than ``"python"`` selects the array-plane marking
    (:class:`repro.fastpath.marking.ArrayMarkingAlgorithm`), which
    subsumes the ``incremental`` knob: its tree mutation is the
    incremental path and its propagation is vectorized, with output
    guaranteed identical to both object-level algorithms.
    """
    if engine != "python":
        from repro.fastpath.marking import ArrayMarkingAlgorithm

        algorithm = ArrayMarkingAlgorithm(renew_keys=renew_keys)
    elif incremental:
        algorithm = IncrementalMarkingAlgorithm(renew_keys=renew_keys)
    else:
        algorithm = MarkingAlgorithm(renew_keys=renew_keys)
    if obs is not None:
        algorithm.obs = obs
    return algorithm
