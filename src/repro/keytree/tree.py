"""The :class:`KeyTree`: structure, membership, and key material.

The tree is stored *sparsely*: a dict maps node IDs to k-nodes and
u-nodes, and any absent ID is implicitly an n-node (null padding of the
expanded tree).  This matches the paper's expanded-tree view while
keeping memory linear in membership.

Key material is optional.  With a :class:`~repro.crypto.keys.KeyFactory`
the tree carries real (toy-cipher) keys and can drive the end-to-end
protocol; without one ("keyless mode") only versions are tracked, which
is all the workload analyses need and is much faster for large sweeps.

Structural invariants maintained (checked by :meth:`KeyTree.validate`):

- the root (ID 0) is a k-node whenever the group is non-empty
  (a singleton group keeps a k-node root above one u-node);
- Lemma 4.1: every k-node ID is smaller than every u-node ID;
- every ancestor of a u-node is a k-node;
- every k-node has at least one u-node descendant;
- u-nodes have no descendants.
"""

from __future__ import annotations

import heapq

from repro.crypto.keys import KeyFactory
from repro.errors import (
    DuplicateUserError,
    KeyTreeError,
    UnknownUserError,
)
from repro.keytree import ids as idmath
from repro.keytree.nodes import NodeKind, TreeNode
from repro.util.validation import check_positive


class KeyTree:
    """A d-ary logical key hierarchy with sparse n-node padding."""

    def __init__(self, degree, key_factory=None):
        check_positive("degree", degree, integral=True)
        if degree < 2:
            raise KeyTreeError("degree must be >= 2, got %d" % degree)
        self._d = int(degree)
        self._factory = key_factory
        self._nodes = {}
        self._users = {}
        self._versions = {}
        # Lazy max-heap over k-node IDs (stored negated) backing the
        # O(1)-amortised ``max_knode_id``; stale entries (removed or
        # re-kinded IDs) are discarded on read.
        self._knode_heap = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def full_balanced(cls, users, degree, key_factory=None):
        """Build a tree with all users left-packed at the minimal level.

        With ``len(users)`` a power of ``degree`` this is the paper's
        "full and balanced" starting tree; otherwise users occupy a
        left-packed prefix of the minimal level and only their ancestors
        exist as k-nodes.
        """
        users = list(users)
        if not users:
            raise KeyTreeError("cannot build a tree with no users")
        if len(set(users)) != len(users):
            raise DuplicateUserError("duplicate user names in initial set")
        tree = cls(degree, key_factory=key_factory)
        height = idmath.min_height_for(len(users), degree)
        if height == 0:
            # A single user still gets a k-node root so a group key exists.
            height = 1
        first_leaf = idmath.first_id_of_level(height, degree)
        for offset, user in enumerate(users):
            tree.create_u_node(first_leaf + offset, user)
        tree.ensure_ancestors(
            range(first_leaf, first_leaf + len(users))
        )
        return tree

    @classmethod
    def from_records(cls, degree, records, versions=None, key_factory=None):
        """Rebuild a tree from explicit node records (the restore path).

        ``records`` is an iterable of dicts with keys ``id``, ``kind``
        (a :class:`NodeKind` or its value), ``version``, and optionally
        ``user`` (u-nodes) and ``key`` (a :class:`SymmetricKey` or
        ``None`` for keyless trees).  ``versions`` maps node IDs to the
        renewal counters so future rekeys continue the version sequence.
        When given it is authoritative and restored verbatim: a moved
        u-node keeps its old position's version without an entry in the
        counter map, so seeding counters from the node records would
        make restore-then-serialise disagree with the original — and
        HA replicas bootstrapped from a snapshot would renew different
        key versions than the leader they shadow.  Without ``versions``
        each record's own version seeds its counter.  The rebuilt tree
        is :meth:`validate`-checked before it is returned.

        This is the supported way to restore persisted state —
        :mod:`repro.keytree.persistence` goes through it — so external
        snapshot formats never need to reach into tree internals.
        """
        tree = cls(degree, key_factory=key_factory)
        for record in records:
            node_id = int(record["id"])
            if node_id in tree._nodes:
                raise KeyTreeError("duplicate record for node %d" % node_id)
            kind = NodeKind(record["kind"])
            if kind is NodeKind.N_NODE:
                raise KeyTreeError(
                    "node %d: n-nodes are implicit and cannot be restored"
                    % node_id
                )
            node = TreeNode(
                node_id,
                kind,
                key=record.get("key"),
                user=record.get("user"),
                version=int(record.get("version", 0)),
            )
            if node.is_u_node:
                if node.user is None:
                    raise KeyTreeError("u-node %d has no user" % node_id)
                if node.user in tree._users:
                    raise DuplicateUserError(
                        "user %r appears twice in records" % (node.user,)
                    )
                tree._users[node.user] = node_id
            tree._nodes[node_id] = node
            if versions is None:
                tree._versions[node_id] = node.version
            if node.kind is NodeKind.K_NODE:
                heapq.heappush(tree._knode_heap, -node_id)
        if versions is not None:
            for node_id, version in versions.items():
                tree._versions[int(node_id)] = int(version)
        tree.validate()
        return tree

    def ensure_ancestors(self, leaf_ids):
        """Create k-nodes for every missing ancestor of ``leaf_ids``."""
        pending = set()
        for leaf_id in leaf_ids:
            node_id = leaf_id
            while node_id != idmath.ROOT_ID:
                node_id = (node_id - 1) // self._d
                pending.add(node_id)
        for node_id in sorted(pending):
            if node_id not in self._nodes:
                self.create_k_node(node_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def degree(self):
        """Tree degree ``d``."""
        return self._d

    @property
    def keyless(self):
        """True when the tree tracks versions but not key material."""
        return self._factory is None

    @property
    def n_users(self):
        """Current number of group members."""
        return len(self._users)

    @property
    def users(self):
        """Set of current user names."""
        return set(self._users)

    def has_user(self, user):
        """True iff ``user`` is a current member (O(1), no set copy)."""
        return user in self._users

    @property
    def version_counters(self):
        """Snapshot of the renewal counters, absent nodes included.

        A counter may outlive its node (a pruned k-node's counter keeps
        ticking if the slot is re-created), so this map — not the
        per-node versions — is what lossless snapshots must carry.
        """
        return dict(self._versions)

    def node_ids(self, kind=None):
        """Sorted IDs of present nodes, optionally filtered by kind."""
        if kind is None:
            return sorted(self._nodes)
        kind = NodeKind(kind)
        return sorted(
            node_id
            for node_id, node in self._nodes.items()
            if node.kind is kind
        )

    def k_node_ids(self):
        """Sorted IDs of all k-nodes."""
        return self.node_ids(NodeKind.K_NODE)

    def u_node_ids(self):
        """Sorted IDs of all u-nodes."""
        return self.node_ids(NodeKind.U_NODE)

    @property
    def max_knode_id(self):
        """``nk``: the largest k-node ID (−1 for an empty tree).

        Amortised O(1): reads the top of a lazy heap instead of sorting
        every node, which matters because the marking algorithm consults
        ``nk`` on every batch.
        """
        heap = self._knode_heap
        while heap:
            candidate = -heap[0]
            node = self._nodes.get(candidate)
            if node is not None and node.kind is NodeKind.K_NODE:
                return candidate
            heapq.heappop(heap)
        return -1

    @property
    def height(self):
        """Level of the deepest u-node (root is level 0)."""
        u_ids = self.u_node_ids()
        if not u_ids:
            return 0
        return idmath.level_of(u_ids[-1], self._d)

    def has_node(self, node_id):
        """True iff ``node_id`` is a present (k- or u-) node."""
        return node_id in self._nodes

    def node(self, node_id):
        """The :class:`TreeNode` at ``node_id`` (must be present)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyTreeError("node %d is an n-node (absent)" % node_id)

    def kind_of(self, node_id):
        """Kind at ``node_id``; absent IDs read as ``NodeKind.N_NODE``."""
        node = self._nodes.get(node_id)
        return node.kind if node is not None else NodeKind.N_NODE

    def user_node_id(self, user):
        """The u-node ID currently holding ``user``."""
        try:
            return self._users[user]
        except KeyError:
            raise UnknownUserError("unknown user %r" % (user,))

    def user_at(self, node_id):
        """The user attached to u-node ``node_id``."""
        node = self.node(node_id)
        if not node.is_u_node:
            raise KeyTreeError("node %d is not a u-node" % node_id)
        return node.user

    def key_of(self, node_id):
        """Current key at ``node_id`` (``None`` in keyless mode)."""
        return self.node(node_id).key

    def version_of(self, node_id):
        """Current key version at ``node_id``."""
        return self.node(node_id).version

    @property
    def group_key(self):
        """The root key (``None`` in keyless mode or if tree is empty)."""
        root = self._nodes.get(idmath.ROOT_ID)
        return root.key if root is not None else None

    def path_ids(self, user):
        """Node IDs on ``user``'s path, u-node first, root last."""
        return idmath.path_to_root(self.user_node_id(user), self._d)

    def path_keys(self, user):
        """Keys ``user`` holds: individual key up to the group key."""
        return [self.node(node_id).key for node_id in self.path_ids(user)]

    def children_of(self, node_id, present_only=True):
        """Child IDs of ``node_id`` (optionally only present nodes)."""
        child_ids = idmath.children_ids(node_id, self._d)
        if not present_only:
            return child_ids
        return [c for c in child_ids if c in self._nodes]

    # ------------------------------------------------------------------
    # Mutation (used by the marking algorithm and the core API)
    # ------------------------------------------------------------------

    def _next_version(self, node_id):
        version = self._versions.get(node_id, -1) + 1
        self._versions[node_id] = version
        return version

    def _make_key(self, node_id, version):
        if self._factory is None:
            return None
        return self._factory.new_key(node_id, version)

    def create_k_node(self, node_id):
        """Create a k-node with fresh key material at an absent ID."""
        if node_id in self._nodes:
            raise KeyTreeError("node %d already exists" % node_id)
        version = self._next_version(node_id)
        self._nodes[node_id] = TreeNode(
            node_id,
            NodeKind.K_NODE,
            key=self._make_key(node_id, version),
            version=version,
        )
        heapq.heappush(self._knode_heap, -node_id)
        return self._nodes[node_id]

    def create_u_node(self, node_id, user):
        """Attach ``user`` with a fresh individual key at an absent ID."""
        if node_id in self._nodes:
            raise KeyTreeError("node %d already exists" % node_id)
        if user in self._users:
            raise DuplicateUserError("user %r already in group" % (user,))
        version = self._next_version(node_id)
        self._nodes[node_id] = TreeNode(
            node_id,
            NodeKind.U_NODE,
            key=self._make_key(node_id, version),
            user=user,
            version=version,
        )
        self._users[user] = node_id
        return self._nodes[node_id]

    def remove_node(self, node_id):
        """Turn a present node back into an (implicit) n-node."""
        node = self.node(node_id)
        if node.is_u_node:
            del self._users[node.user]
        del self._nodes[node_id]

    def replace_user(self, node_id, new_user):
        """Swap the occupant of a u-node; the individual key is renewed.

        ``new_user`` may equal the current occupant: a member that left
        and re-joined within one rekey interval keeps its slot but gets
        a fresh individual key (its old one must stop working).
        """
        node = self.node(node_id)
        if not node.is_u_node:
            raise KeyTreeError("node %d is not a u-node" % node_id)
        if new_user != node.user and new_user in self._users:
            raise DuplicateUserError("user %r already in group" % (new_user,))
        del self._users[node.user]
        node.user = new_user
        node.version = self._next_version(node_id)
        node.key = self._make_key(node_id, node.version)
        self._users[new_user] = node_id

    def move_u_node(self, old_id, new_id):
        """Relocate a u-node (same user, same key material) to ``new_id``.

        Used when a split pushes a user down to its leftmost descendant:
        the user's individual key is unchanged, only its position (and
        therefore ID) moves — exactly what Theorem 4.2 lets the user
        recompute on its own.
        """
        node = self.node(old_id)
        if not node.is_u_node:
            raise KeyTreeError("node %d is not a u-node" % old_id)
        if new_id in self._nodes:
            raise KeyTreeError("destination node %d already exists" % new_id)
        del self._nodes[old_id]
        moved = TreeNode(
            new_id,
            NodeKind.U_NODE,
            key=node.key,
            user=node.user,
            version=node.version,
        )
        self._nodes[new_id] = moved
        self._users[node.user] = new_id
        return moved

    def convert_u_to_k(self, node_id):
        """Turn a (vacated) u-node position into a fresh k-node."""
        node = self.node(node_id)
        if not node.is_u_node:
            raise KeyTreeError("node %d is not a u-node" % node_id)
        del self._users[node.user]
        del self._nodes[node_id]
        return self.create_k_node(node_id)

    def renew_key(self, node_id):
        """Replace the key material at ``node_id`` (rekeying)."""
        node = self.node(node_id)
        node.version = self._next_version(node_id)
        node.key = self._make_key(node_id, node.version)
        return node.key

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self):
        """Check all structural invariants; raise KeyTreeError on failure."""
        if not self._nodes:
            return
        k_ids = self.k_node_ids()
        u_ids = self.u_node_ids()
        if not u_ids:
            raise KeyTreeError("tree has k-nodes but no users")
        if self.kind_of(idmath.ROOT_ID) is not NodeKind.K_NODE:
            raise KeyTreeError("non-empty tree must have a k-node root")
        if k_ids and k_ids[-1] >= u_ids[0]:
            raise KeyTreeError(
                "Lemma 4.1 violated: max k-node ID %d >= min u-node ID %d"
                % (k_ids[-1], u_ids[0])
            )
        has_present_child = set()
        for node_id in self._nodes:
            if node_id == idmath.ROOT_ID:
                continue
            parent = (node_id - 1) // self._d
            has_present_child.add(parent)
            if self.kind_of(parent) is not NodeKind.K_NODE:
                raise KeyTreeError(
                    "node %d has non-k-node parent %d" % (node_id, parent)
                )
        for k_id in k_ids:
            if k_id not in has_present_child:
                raise KeyTreeError(
                    "k-node %d has no present descendants" % k_id
                )
        for user, node_id in self._users.items():
            node = self._nodes.get(node_id)
            if node is None or not node.is_u_node or node.user != user:
                raise KeyTreeError(
                    "membership index out of sync for user %r" % (user,)
                )
        if len(self._users) != len(u_ids):
            raise KeyTreeError("u-node count does not match user count")

    def __repr__(self):
        return "KeyTree(d=%d, users=%d, k_nodes=%d, height=%d)" % (
            self._d,
            self.n_users,
            len(self.k_node_ids()),
            self.height,
        )
