"""Key-tree substrate: logical key hierarchy with periodic batch rekeying.

This package implements the paper's key-management component:

- :mod:`repro.keytree.ids` — the integer node-ID strategy over the
  expanded (null-padded) d-ary tree, including the Theorem 4.2 rule that
  lets a user re-derive its own ID after tree restructuring.
- :mod:`repro.keytree.nodes` — node kinds (u-node / k-node / n-node) and
  per-node key state.
- :mod:`repro.keytree.tree` — the :class:`KeyTree` container: structure,
  key material, user membership, path queries.
- :mod:`repro.keytree.marking` — the marking algorithm of Appendix B:
  apply a batch of J joins and L leaves, update the tree, and produce the
  rekey subtree (the set of changed keys and the encryption edges of one
  rekey message).
"""

from repro.keytree.ids import (
    children_ids,
    derive_new_user_id,
    leftmost_descendant,
    level_of,
    parent_id,
    path_to_root,
    subtree_capacity,
)
from repro.keytree.nodes import NodeKind, NodeLabel, TreeNode
from repro.keytree.tree import KeyTree
from repro.keytree.marking import (
    BatchResult,
    EncryptionEdge,
    IncrementalMarkingAlgorithm,
    MarkingAlgorithm,
    RekeySubtree,
    make_marking,
)
from repro.keytree.persistence import (
    load_server,
    load_tree,
    save_server,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.keytree.visualize import render_rekey, render_tree
from repro.keytree.strategies import (
    StrategyCost,
    compare_strategies,
    group_oriented_cost,
    key_oriented_cost,
    user_oriented_cost,
)

__all__ = [
    "BatchResult",
    "EncryptionEdge",
    "IncrementalMarkingAlgorithm",
    "KeyTree",
    "MarkingAlgorithm",
    "NodeKind",
    "NodeLabel",
    "RekeySubtree",
    "StrategyCost",
    "TreeNode",
    "children_ids",
    "compare_strategies",
    "derive_new_user_id",
    "group_oriented_cost",
    "key_oriented_cost",
    "leftmost_descendant",
    "level_of",
    "load_server",
    "load_tree",
    "make_marking",
    "parent_id",
    "path_to_root",
    "render_rekey",
    "render_tree",
    "save_server",
    "save_tree",
    "subtree_capacity",
    "tree_from_dict",
    "tree_to_dict",
    "user_oriented_cost",
]
