"""Key-tree snapshots: serialise server state across restarts.

A key server that crashes mid-deployment must come back with the exact
tree — same structure, same key material, same version counters — or
every user's path keys stop matching.  ``tree_to_dict`` captures all of
that in a JSON-safe dict; ``tree_from_dict`` restores it (optionally
re-attaching a :class:`~repro.crypto.keys.KeyFactory` for *future*
rekeying).

Only the key tree is snapshotted; pending join/leave queues are
intentionally excluded (a restarting server re-collects requests — the
protocol's periodic batching makes that loss-free for members).
"""

from __future__ import annotations

import json

from repro.crypto.keys import SymmetricKey
from repro.errors import KeyTreeError
from repro.keytree.nodes import NodeKind, TreeNode
from repro.keytree.tree import KeyTree

_FORMAT_VERSION = 1


def tree_to_dict(tree):
    """Serialise a :class:`KeyTree` to a JSON-safe dict."""
    nodes = []
    for node_id in tree.node_ids():
        node = tree.node(node_id)
        nodes.append(
            {
                "id": node_id,
                "kind": node.kind.value,
                "user": node.user,
                "version": node.version,
                "key": node.key.material.hex() if node.key else None,
            }
        )
    return {
        "format": _FORMAT_VERSION,
        "degree": tree.degree,
        "nodes": nodes,
        "versions": {str(k): v for k, v in tree._versions.items()},
    }


def tree_from_dict(data, key_factory=None):
    """Rebuild a :class:`KeyTree` from :func:`tree_to_dict` output.

    ``key_factory`` becomes the tree's generator for *future* key
    renewals; existing material is restored verbatim from the snapshot.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise KeyTreeError(
            "unsupported snapshot format %r" % data.get("format")
        )
    tree = KeyTree(data["degree"], key_factory=key_factory)
    for record in data["nodes"]:
        kind = NodeKind(record["kind"])
        key = None
        if record["key"] is not None:
            key = SymmetricKey(
                bytes.fromhex(record["key"]),
                node_id=record["id"],
                version=record["version"],
            )
        node = TreeNode(
            record["id"],
            kind,
            key=key,
            user=record["user"],
            version=record["version"],
        )
        tree._nodes[record["id"]] = node
        if node.is_u_node:
            tree._users[node.user] = record["id"]
    tree._versions = {int(k): v for k, v in data["versions"].items()}
    tree.validate()
    return tree


def save_tree(tree, path):
    """Write a snapshot to ``path`` (JSON)."""
    with open(path, "w") as handle:
        json.dump(tree_to_dict(tree), handle)


def load_tree(path, key_factory=None):
    """Read a snapshot written by :func:`save_tree`."""
    with open(path) as handle:
        return tree_from_dict(json.load(handle), key_factory=key_factory)
