"""Key-tree and key-server snapshots: serialise state across restarts.

A key server that crashes mid-deployment must come back with the exact
tree — same structure, same key material, same version counters — or
every user's path keys stop matching.  ``tree_to_dict`` captures all of
that in a JSON-safe dict; ``tree_from_dict`` restores it (optionally
re-attaching a :class:`~repro.crypto.keys.KeyFactory` for *future*
rekeying).

Trees are not the whole restart story, though: the server also carries
the 6-bit rekey-message ID counter, the interval number, and its crypto
seed.  ``save_server``/``load_server`` persist the full
:meth:`~repro.core.server.GroupKeyServer.snapshot` so a restore
continues the message-ID sequence instead of silently resetting it
(members use the ID to detect gaps).

All file writes are **crash-safe**: the snapshot is written to a
temporary file in the same directory, fsynced, and atomically
``os.replace``-d into place, so a crash at any instant leaves either
the old snapshot or the new one — never a torn file.

Only durable protocol state is snapshotted; pending join/leave queues
are intentionally excluded (the service layer's write-ahead log —
:mod:`repro.service.wal` — covers those, and a bare server restart
simply re-collects requests).
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.crypto.keys import SymmetricKey
from repro.errors import KeyTreeError
from repro.keytree.nodes import NodeKind
from repro.keytree.tree import KeyTree

_FORMAT_VERSION = 1
_SERVER_FORMAT_VERSION = 1


def tree_to_dict(tree):
    """Serialise a :class:`KeyTree` to a JSON-safe dict."""
    nodes = []
    for node_id in tree.node_ids():
        node = tree.node(node_id)
        nodes.append(
            {
                "id": node_id,
                "kind": node.kind.value,
                "user": node.user,
                "version": node.version,
                "key": node.key.material.hex() if node.key else None,
            }
        )
    return {
        "format": _FORMAT_VERSION,
        "degree": tree.degree,
        "nodes": nodes,
        "versions": {str(k): v for k, v in tree._versions.items()},
    }


def tree_from_dict(data, key_factory=None):
    """Rebuild a :class:`KeyTree` from :func:`tree_to_dict` output.

    ``key_factory`` becomes the tree's generator for *future* key
    renewals; existing material is restored verbatim from the snapshot.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise KeyTreeError(
            "unsupported snapshot format %r" % data.get("format")
        )
    records = []
    for record in data["nodes"]:
        key = None
        if record["key"] is not None:
            key = SymmetricKey(
                bytes.fromhex(record["key"]),
                node_id=record["id"],
                version=record["version"],
            )
        records.append(
            {
                "id": record["id"],
                "kind": NodeKind(record["kind"]),
                "user": record["user"],
                "version": record["version"],
                "key": key,
            }
        )
    versions = {int(k): v for k, v in data["versions"].items()}
    return KeyTree.from_records(
        data["degree"], records, versions=versions, key_factory=key_factory
    )


def _atomic_write_json(path, payload):
    """Write ``payload`` as JSON to ``path`` without torn intermediates.

    temp file in the target directory → flush → fsync → ``os.replace``;
    the directory entry is fsynced afterwards where the platform allows,
    so the rename itself is durable, not just the bytes.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(dir_fd)


def save_tree(tree, path):
    """Write a snapshot to ``path`` (JSON, atomically replaced)."""
    _atomic_write_json(path, tree_to_dict(tree))


def load_tree(path, key_factory=None):
    """Read a snapshot written by :func:`save_tree`."""
    with open(path) as handle:
        return tree_from_dict(json.load(handle), key_factory=key_factory)


def save_server(server, path):
    """Persist full :class:`GroupKeyServer` state to ``path``, atomically.

    Unlike :func:`save_tree` this captures the server-level counters —
    the 6-bit rekey-message ID, ``intervals_processed``, and the crypto
    seed — alongside the tree, so :func:`load_server` resumes the exact
    protocol sequence.
    """
    _atomic_write_json(
        path,
        {
            "format": _SERVER_FORMAT_VERSION,
            "kind": "server",
            "server": server.snapshot(),
        },
    )


def load_server(path, config=None):
    """Restore a :class:`GroupKeyServer` written by :func:`save_server`."""
    from repro.core.server import GroupKeyServer

    with open(path) as handle:
        data = json.load(handle)
    if data.get("kind") != "server" or (
        data.get("format") != _SERVER_FORMAT_VERSION
    ):
        raise KeyTreeError(
            "not a server snapshot (kind=%r, format=%r)"
            % (data.get("kind"), data.get("format"))
        )
    return GroupKeyServer.restore(data["server"], config=config)
