"""Key-tree and key-server snapshots: serialise state across restarts.

A key server that crashes mid-deployment must come back with the exact
tree — same structure, same key material, same version counters — or
every user's path keys stop matching.  ``tree_to_dict`` captures all of
that in a JSON-safe dict; ``tree_from_dict`` restores it (optionally
re-attaching a :class:`~repro.crypto.keys.KeyFactory` for *future*
rekeying).

Trees are not the whole restart story, though: the server also carries
the 6-bit rekey-message ID counter, the interval number, and its crypto
seed.  ``save_server``/``load_server`` persist the full
:meth:`~repro.core.server.GroupKeyServer.snapshot` so a restore
continues the message-ID sequence instead of silently resetting it
(members use the ID to detect gaps).

All file writes are **crash-safe**: the snapshot is written to a
temporary file in the same directory, fsynced, atomically
``os.replace``-d into place, and the directory entry is fsynced — so a
crash at any instant leaves either the old snapshot or the new one,
never a torn file or a lost rename.  All of it goes through the
:class:`~repro.chaos.seams.Filesystem` seam, so the chaos layer can
fail any of those steps.

Server snapshots are **integrity-checked** (format v2): the envelope
carries a CRC32 of the canonical server payload, so a bit flipped at
rest — even one that still parses as JSON, e.g. inside hex key
material — is detected at load instead of silently desyncing every
member.  v1 snapshots (no CRC) still load.  ``save_server`` can also
``rotate`` the previous snapshot to ``<path>.prev``, giving recovery a
second generation to fall back to (see ``docs/robustness.md``).

Only durable protocol state is snapshotted; pending join/leave queues
are intentionally excluded (the service layer's write-ahead log —
:mod:`repro.service.wal` — covers those, and a bare server restart
simply re-collects requests).
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib

from repro.chaos.seams import REAL_FILESYSTEM
from repro.crypto.keys import SymmetricKey
from repro.errors import KeyTreeError
from repro.keytree.nodes import NodeKind
from repro.keytree.tree import KeyTree

_FORMAT_VERSION = 1
_SERVER_FORMAT_VERSION = 2
#: server formats load_server accepts (1 = pre-CRC)
_SERVER_READABLE_FORMATS = (1, 2)
#: suffix of the rotated previous snapshot generation
PREVIOUS_SUFFIX = ".prev"


def tree_to_dict(tree):
    """Serialise a :class:`KeyTree` to a JSON-safe dict."""
    nodes = []
    for node_id in tree.node_ids():
        node = tree.node(node_id)
        nodes.append(
            {
                "id": node_id,
                "kind": node.kind.value,
                "user": node.user,
                "version": node.version,
                "key": node.key.material.hex() if node.key else None,
            }
        )
    return {
        "format": _FORMAT_VERSION,
        "degree": tree.degree,
        "nodes": nodes,
        "versions": {str(k): v for k, v in tree._versions.items()},
    }


def tree_from_dict(data, key_factory=None):
    """Rebuild a :class:`KeyTree` from :func:`tree_to_dict` output.

    ``key_factory`` becomes the tree's generator for *future* key
    renewals; existing material is restored verbatim from the snapshot.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise KeyTreeError(
            "unsupported snapshot format %r" % data.get("format")
        )
    records = []
    for record in data["nodes"]:
        key = None
        if record["key"] is not None:
            key = SymmetricKey(
                bytes.fromhex(record["key"]),
                node_id=record["id"],
                version=record["version"],
            )
        records.append(
            {
                "id": record["id"],
                "kind": NodeKind(record["kind"]),
                "user": record["user"],
                "version": record["version"],
                "key": key,
            }
        )
    versions = {int(k): v for k, v in data["versions"].items()}
    return KeyTree.from_records(
        data["degree"], records, versions=versions, key_factory=key_factory
    )


def payload_crc(payload):
    """CRC32 (8 hex chars) of a payload's canonical JSON."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return "%08x" % (zlib.crc32(data) & 0xFFFFFFFF)


def _atomic_write_json(path, payload, fs=None):
    """Write ``payload`` as JSON to ``path`` without torn intermediates.

    temp file in the target directory → write → fsync → ``os.replace``
    → directory fsync, every step through the :class:`Filesystem` seam,
    so the rename itself is durable, not just the bytes.
    """
    fs = fs or REAL_FILESYSTEM
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=".json"
    )
    os.close(fd)
    try:
        handle = fs.open(temp_path, "w")
        try:
            fs.write(handle, json.dumps(payload))
            fs.fsync(handle)
        finally:
            handle.close()
        fs.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    fs.fsync_dir(directory)


def save_tree(tree, path, fs=None):
    """Write a snapshot to ``path`` (JSON, atomically replaced)."""
    _atomic_write_json(path, tree_to_dict(tree), fs=fs)


def load_tree(path, key_factory=None):
    """Read a snapshot written by :func:`save_tree`."""
    with open(path) as handle:
        return tree_from_dict(json.load(handle), key_factory=key_factory)


def save_server(server, path, fs=None, rotate=False, epoch=None):
    """Persist full :class:`GroupKeyServer` state to ``path``, atomically.

    Unlike :func:`save_tree` this captures the server-level counters —
    the 6-bit rekey-message ID, ``intervals_processed``, and the crypto
    seed — alongside the tree, so :func:`load_server` resumes the exact
    protocol sequence.  The envelope carries a CRC32 of the payload so
    at-rest damage is detected at load time.

    With ``rotate``, an existing snapshot at ``path`` is first renamed
    to ``path + ".prev"`` — the previous generation the recovery ladder
    falls back to when the current snapshot is damaged.

    Under HA, ``epoch`` stamps the writer's fencing token into the
    envelope (outside the CRC-protected payload, so the payload stays
    bit-identical across failovers); :func:`snapshot_epoch` reads it
    back without a full restore.
    """
    fs = fs or REAL_FILESYSTEM
    path = os.fspath(path)
    payload = server.snapshot()
    if rotate and fs.exists(path):
        fs.replace(path, path + PREVIOUS_SUFFIX)
        fs.fsync_dir(os.path.dirname(path) or ".")
    envelope = {
        "format": _SERVER_FORMAT_VERSION,
        "kind": "server",
        "crc": payload_crc(payload),
        "server": payload,
    }
    if epoch is not None:
        envelope["epoch"] = int(epoch)
    _atomic_write_json(path, envelope, fs=fs)


def snapshot_epoch(path):
    """The ``epoch`` fencing token stamped into a server snapshot.

    Returns 0 for pre-HA snapshots (no ``epoch`` key).  Unreadable or
    non-snapshot files raise :class:`KeyTreeError`, mirroring
    :func:`load_server`.
    """
    try:
        with open(path, "rb") as handle:
            data = json.loads(handle.read().decode("utf-8"))
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as exc:
        raise KeyTreeError("unreadable server snapshot %s: %s" % (path, exc))
    if not isinstance(data, dict) or data.get("kind") != "server":
        raise KeyTreeError("not a server snapshot: %s" % path)
    return int(data.get("epoch", 0))


def load_server(path, config=None):
    """Restore a :class:`GroupKeyServer` written by :func:`save_server`.

    Raises :class:`KeyTreeError` for a wrong document kind, an unknown
    format, or (v2) a CRC mismatch — the integrity failure the recovery
    ladder treats as "this generation is damaged, try the previous one".
    """
    from repro.core.server import GroupKeyServer

    try:
        with open(path, "rb") as handle:
            data = json.loads(handle.read().decode("utf-8"))
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as exc:
        # Unparseable bytes (flipped high bit, torn JSON) are corruption,
        # not a programming error — same KeyTreeError the CRC path uses.
        raise KeyTreeError("unreadable server snapshot %s: %s" % (path, exc))
    if not isinstance(data, dict):
        raise KeyTreeError(
            "not a server snapshot (top-level %s)" % type(data).__name__
        )
    if data.get("kind") != "server" or (
        data.get("format") not in _SERVER_READABLE_FORMATS
    ):
        raise KeyTreeError(
            "not a server snapshot (kind=%r, format=%r)"
            % (data.get("kind"), data.get("format"))
        )
    if data.get("format") >= 2:
        stored = data.get("crc")
        actual = payload_crc(data.get("server"))
        if stored != actual:
            raise KeyTreeError(
                "server snapshot integrity check failed "
                "(CRC stored %r, computed %r)" % (stored, actual)
            )
    try:
        return GroupKeyServer.restore(data["server"], config=config)
    except KeyTreeError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        # v1 snapshots have no CRC, so structural damage can surface
        # here; keep the ladder's contract of one exception type.
        raise KeyTreeError("malformed server snapshot %s: %s" % (path, exc))
