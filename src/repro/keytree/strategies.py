"""Rekeying-strategy cost comparison (Wong-Gouda-Lam, SIGCOMM '98).

The key-tree literature offers three ways to package one batch's new
keys; the paper adopts *group-oriented* rekeying (one big shared
message) and then fixes its user-side cost with UKA.  This module
computes the server/user cost profile of all three from a
:class:`~repro.keytree.marking.BatchResult`, so the choice can be
quantified (bench A03):

- **group-oriented** — one message carrying every encryption
  ``{new parent key}_(current child key)``; encryption work is minimal
  (shared keys encrypted once per child edge) and one signature covers
  everything, but every user receives the whole message — unless a key
  assignment like UKA narrows it to one packet.

- **key-oriented** — one small message per updated k-node (per child
  edge group); the server's encryption count is the same as
  group-oriented, but a user must collect one message per updated
  ancestor (h of them), and each message needs its own authentication.

- **user-oriented** — one message per *need class* (users that need
  exactly the same new keys, i.e. one class per deepest updated-node
  child); each class's message holds that class's whole path suffix of
  new keys, encrypted under the class's common key.  Users receive one
  tiny message, but the server re-encrypts shared ancestors once per
  class, multiplying its encryption work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KeyTreeError
from repro.keytree import ids as idmath


@dataclass(frozen=True)
class StrategyCost:
    """Cost profile of one rekeying strategy for one batch."""

    name: str
    #: symmetric encryptions the server performs
    server_encryptions: int
    #: distinct messages (each needing its own signature/digest)
    server_messages: int
    #: encryptions the worst-off user must receive
    max_user_encryptions: int
    #: messages the worst-off user must receive
    max_user_messages: int

    def signatures(self):
        """Signature operations: one per message."""
        return self.server_messages


def _updated_set(batch):
    return set(batch.subtree.updated_knode_ids)


def group_oriented_cost(batch):
    """One shared message; per-user slice measured via needs."""
    needs = batch.needs_by_user()
    max_need = max((len(v) for v in needs.values()), default=0)
    return StrategyCost(
        name="group-oriented",
        server_encryptions=batch.subtree.n_encryptions,
        server_messages=1 if batch.subtree.n_encryptions else 0,
        max_user_encryptions=max_need,
        max_user_messages=1 if max_need else 0,
    )


def key_oriented_cost(batch):
    """One message per updated k-node; same total encryption work."""
    needs = batch.needs_by_user()
    max_need = max((len(v) for v in needs.values()), default=0)
    return StrategyCost(
        name="key-oriented",
        server_encryptions=batch.subtree.n_encryptions,
        server_messages=batch.subtree.n_updated_keys,
        max_user_encryptions=max_need,
        # One message per updated ancestor.
        max_user_messages=max_need,
    )


def user_oriented_cost(batch):
    """One message per need class; ancestors re-encrypted per class.

    A need class is identified by the deepest node on its users' shared
    path whose parent was updated — every user below that node needs
    exactly the new keys of the node's updated ancestors.
    """
    updated = _updated_set(batch)
    needs = batch.needs_by_user()
    if not needs:
        return StrategyCost("user-oriented", 0, 0, 0, 0)
    degree = batch.tree.degree
    classes = {}
    for u_id, wanted in needs.items():
        # wanted is deepest-first path children of updated ancestors;
        # its first element is the class anchor for this user.
        anchor = wanted[0]
        size = len(wanted)
        previous = classes.get(anchor)
        if previous is not None and previous != size:
            raise KeyTreeError(
                "inconsistent need class at node %d" % anchor
            )
        classes[anchor] = size
    server_encryptions = sum(classes.values())
    max_need = max(classes.values())
    return StrategyCost(
        name="user-oriented",
        server_encryptions=server_encryptions,
        server_messages=len(classes),
        max_user_encryptions=max_need,
        max_user_messages=1,
    )


def compare_strategies(batch):
    """All three cost profiles for one batch, as a list."""
    return [
        group_oriented_cost(batch),
        key_oriented_cost(batch),
        user_oriented_cost(batch),
    ]
