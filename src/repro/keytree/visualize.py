"""ASCII rendering of key trees and rekey subtrees.

Debug/teaching aid: ``render_tree`` draws the tree with node kinds, IDs
and key versions; ``render_rekey`` overlays a batch's labels
(Unchanged / Join / Leave / Replace) so a marking run can be inspected
at a glance.  Used by the wire walkthrough and handy in a REPL::

    >>> print(render_tree(tree))          # doctest: +SKIP
    k0 v1
    ├── k1 v0
    │   ├── u4 'alice' v0
    ...
"""

from __future__ import annotations

from repro.keytree.nodes import NodeLabel
from repro.keytree.tree import KeyTree

_LABEL_MARKS = {
    NodeLabel.UNCHANGED: "",
    NodeLabel.JOIN: "  [JOIN]",
    NodeLabel.LEAVE: "  [LEAVE]",
    NodeLabel.REPLACE: "  [REPLACE]",
}


def _node_line(tree, node_id, labels=None):
    node = tree.node(node_id)
    if node.is_u_node:
        text = "u%d %r v%d" % (node_id, node.user, node.version)
    else:
        text = "k%d v%d" % (node_id, node.version)
    if labels is not None:
        text += _LABEL_MARKS.get(
            labels.get(node_id, NodeLabel.UNCHANGED), ""
        )
    return text


def _render(tree, node_id, prefix, is_last, is_root, labels, lines,
            max_nodes):
    if len(lines) >= max_nodes:
        return False
    connector = "" if is_root else ("└── " if is_last else "├── ")
    lines.append(prefix + connector + _node_line(tree, node_id, labels))
    children = tree.children_of(node_id)
    child_prefix = prefix if is_root else prefix + (
        "    " if is_last else "│   "
    )
    for index, child in enumerate(children):
        if not _render(
            tree,
            child,
            child_prefix,
            index == len(children) - 1,
            False,
            labels,
            lines,
            max_nodes,
        ):
            lines.append(child_prefix + "…")
            return True
    return True


def render_tree(tree, labels=None, max_nodes=200):
    """Render a :class:`KeyTree` (optionally with marking labels)."""
    if not isinstance(tree, KeyTree):
        raise TypeError("render_tree expects a KeyTree")
    if tree.n_users == 0:
        return "(empty tree)"
    lines = []
    _render(tree, 0, "", True, True, labels, lines, max_nodes)
    return "\n".join(lines)


def render_rekey(batch_result, max_nodes=200):
    """Render a batch's tree with its rekey-subtree labels overlaid."""
    return render_tree(
        batch_result.tree,
        labels=batch_result.subtree.labels,
        max_nodes=max_nodes,
    )
