"""Node kinds, rekey-subtree labels, and per-node state.

A key tree contains three kinds of nodes (after expansion to a full,
balanced d-ary tree):

- **k-nodes** hold the group key (root) and auxiliary keys;
- **u-nodes** hold users' individual keys (one user per u-node);
- **n-nodes** are null padding (no key, no user).

During batch processing the marking algorithm labels every node of the
copied tree with one of four labels (Appendix B of the companion text):
``UNCHANGED``, ``JOIN``, ``LEAVE``, ``REPLACE``.  A k-node's key must be
changed iff its label is ``JOIN`` or ``REPLACE``.
"""

from __future__ import annotations

import enum

from repro.errors import KeyTreeError


class NodeKind(enum.Enum):
    """Structural kind of a key-tree node."""

    K_NODE = "k"
    U_NODE = "u"
    N_NODE = "n"


class NodeLabel(enum.Enum):
    """Marking-algorithm label of a node in the rekey subtree."""

    UNCHANGED = "unchanged"
    JOIN = "join"
    LEAVE = "leave"
    REPLACE = "replace"

    @property
    def key_changed(self):
        """Whether a k-node with this label receives new key material."""
        return self in (NodeLabel.JOIN, NodeLabel.REPLACE)


class TreeNode:
    """Mutable state of one node in a :class:`~repro.keytree.tree.KeyTree`.

    ``key`` is the node's current :class:`~repro.crypto.keys.SymmetricKey`
    (``None`` for n-nodes); ``user`` is the attached user name for
    u-nodes; ``version`` counts how many times the node's key material
    has been replaced.
    """

    __slots__ = ("node_id", "kind", "key", "user", "version")

    def __init__(self, node_id, kind, key=None, user=None, version=0):
        if node_id < 0:
            raise KeyTreeError("node_id must be >= 0, got %r" % (node_id,))
        kind = NodeKind(kind)
        if kind is NodeKind.N_NODE and (key is not None or user is not None):
            raise KeyTreeError("n-nodes carry no key and no user")
        if kind is NodeKind.K_NODE and user is not None:
            raise KeyTreeError("k-nodes carry no user")
        if kind is NodeKind.U_NODE and user is None:
            raise KeyTreeError("u-nodes must carry a user")
        self.node_id = int(node_id)
        self.kind = kind
        self.key = key
        self.user = user
        self.version = int(version)

    @property
    def is_k_node(self):
        return self.kind is NodeKind.K_NODE

    @property
    def is_u_node(self):
        return self.kind is NodeKind.U_NODE

    @property
    def is_n_node(self):
        return self.kind is NodeKind.N_NODE

    def __repr__(self):
        if self.is_u_node:
            return "TreeNode(%d, u, user=%r, v%d)" % (
                self.node_id,
                self.user,
                self.version,
            )
        if self.is_k_node:
            return "TreeNode(%d, k, v%d)" % (self.node_id, self.version)
        return "TreeNode(%d, n)" % self.node_id
