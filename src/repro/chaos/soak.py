"""The chaos-soak harness: a daemon run under a fault plan, verified.

``run_soak`` drives a durable :class:`~repro.service.daemon.RekeyDaemon`
(simulated lossy transport, Poisson churn) for a fixed number of
intervals while a :class:`~repro.chaos.plans` fault plan injects I/O
errors through the seams, damages the WAL/snapshot at rest (restarting
the daemon through recovery after each), jumps the clock, and mangles
NACK feedback.  At the end it asserts the **invariants**:

- ``completed`` — every planned interval ran (recovery never wedged);
- ``key-agreement`` — no member's key state disagrees with the server
  (also checked *every* interval by the daemon itself);
- ``recovery-bounded`` — each restart resumed at most one interval
  behind where the damage struck (the ``.prev`` fallback's worst case);
- ``wal-roundtrip`` — the final WAL replays cleanly end to end;
- ``snapshot-roundtrip`` — a fresh snapshot written at the end loads
  back byte-equivalent (same interval count, same group key).

Everything the run injected or survived is on the event bus, and the
chaos-relevant subsequence canonicalises to a **digest**: the same
``(plan, seed)`` must produce the same digest, which is what the CI
smoke job and the determinism test pin.

A plan with ``expect_recoverable=False`` is *supposed* to end in
:class:`~repro.errors.RecoveryError`; the result records the diagnostic
instead of raising, and the CLI turns it into a non-zero exit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

from repro.chaos.faults import FaultPlan, FeedbackChaos
from repro.chaos.plans import PLAN_INTERVALS, make_plan
from repro.chaos.seams import FaultyClock, FaultyFilesystem
from repro.errors import ChaosError, RecoveryError, ReproError
from repro.obs.events import CHAOS_EVENT_KINDS, HA_EVENT_KINDS, EventBus
from repro.obs.recorder import Recorder

#: event kinds that define a run's reproducible fault/recovery timeline
#: (the HA kinds and "crash" never fire in the single-node plans, so
#: adding them left the pinned single-node digests unchanged)
TIMELINE_KINDS = frozenset(
    CHAOS_EVENT_KINDS
    | HA_EVENT_KINDS
    | {"recovery", "degradation", "crash"}
)

#: detail keys dropped from the digest: human-facing strings that embed
#: absolute paths or OS error text, plus observability annotations that
#: ride on every event via the bus context (the distributed-trace id is
#: deterministic in (seed, interval) but is an annotation, not a fault
#: -timeline fact — keeping it out preserves the historical pins)
_VOLATILE_KEYS = ("error", "trace")


def canonical_timeline(events, kinds=None):
    """The digest-stable projection of a run's chaos-relevant events.

    Wall-clock times are dropped (the envelope ``t``), error strings are
    dropped, and any path-valued detail is reduced to its basename, so
    two runs in different temp dirs at different times still compare
    equal byte for byte.  ``kinds`` selects which event kinds define the
    timeline (default: the chaos-soak set; the tenancy soak passes its
    own).
    """
    if kinds is None:
        kinds = TIMELINE_KINDS
    timeline = []
    for event in events:
        if event["kind"] not in kinds:
            continue
        detail = {}
        for key, value in event["detail"].items():
            if key in _VOLATILE_KEYS:
                continue
            if isinstance(value, str) and os.sep in value:
                value = os.path.basename(value)
            detail[key] = value
        timeline.append({"kind": event["kind"], "detail": detail})
    return timeline


def timeline_digest(timeline):
    """SHA-256 over the canonical timeline (the determinism pin)."""
    data = json.dumps(timeline, sort_keys=True).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


@dataclass
class SoakResult:
    """Everything one chaos-soak run observed and concluded."""

    plan: str
    seed: int
    intervals_target: int
    intervals_completed: int = 0
    restarts: int = 0
    faults_injected: int = 0
    expect_recoverable: bool = True
    #: invariant name -> bool (empty when the run failed before the end)
    invariants: dict = field(default_factory=dict)
    #: canonical chaos/recovery event sequence (see canonical_timeline)
    timeline: list = field(default_factory=list)
    digest: str = ""
    #: the terminal diagnostic, when the run could not finish
    failure: object = None

    @property
    def ok(self):
        """Did the run match the plan's expectation?"""
        if not self.expect_recoverable:
            return self.failure is not None
        return self.failure is None and bool(self.invariants) and all(
            self.invariants.values()
        )

    def to_dict(self):
        return {
            "plan": self.plan,
            "seed": self.seed,
            "intervals_target": self.intervals_target,
            "intervals_completed": self.intervals_completed,
            "restarts": self.restarts,
            "faults_injected": self.faults_injected,
            "expect_recoverable": self.expect_recoverable,
            "invariants": dict(self.invariants),
            "digest": self.digest,
            "failure": None if self.failure is None else str(self.failure),
            "ok": self.ok,
        }


def _apply_storage_fault(plan, fault, wal_path, snapshot_path):
    """Damage the durable files per one :class:`StorageFault`."""
    if fault.kind == "wal-flip":
        plan.flip_byte(wal_path)
    elif fault.kind == "wal-truncate":
        plan.truncate_tail(wal_path)
    elif fault.kind == "snapshot-flip":
        plan.flip_byte(snapshot_path)
    elif fault.kind == "snapshot-flip-all":
        plan.flip_byte(snapshot_path)
        previous = snapshot_path + ".prev"
        if os.path.exists(previous):
            plan.flip_byte(previous)
    else:  # pragma: no cover - STORAGE_KINDS is validated at plan build
        raise ChaosError("unhandled storage fault %r" % (fault.kind,))


def run_soak(
    plan="standard",
    seed=7,
    intervals=None,
    members=24,
    state_dir=None,
    obs_path=None,
    log=None,
):
    """Run one chaos soak; returns a :class:`SoakResult` (never raises
    for plan-induced failures — those land in ``result.failure``).

    ``plan`` is a name from :data:`~repro.chaos.plans.PLAN_NAMES` or a
    ready :class:`FaultPlan`; ``seed`` feeds the plan RNG, the daemon,
    and the transport, so the whole run — fault bytes included — is a
    pure function of ``(plan, seed)``.  ``log`` is an optional callable
    for progress lines (the CLI passes ``print``).
    """
    from repro.core.config import GroupConfig
    from repro.keytree.persistence import load_server
    from repro.service.churn import PoissonChurn
    from repro.service.daemon import DaemonConfig, RekeyDaemon
    from repro.service.transports import SessionDelivery
    from repro.service.wal import scan_records

    if isinstance(plan, FaultPlan):
        fault_plan = plan
    else:
        fault_plan = make_plan(plan, seed=seed)
    if fault_plan.ha_faults:
        raise ChaosError(
            "plan %r needs a cluster: run it with ha-soak "
            "(repro.ha.soak.run_ha_soak), not chaos-soak"
            % (fault_plan.name,)
        )
    if intervals is None:
        intervals = PLAN_INTERVALS.get(fault_plan.name, 10)
    say = log if log is not None else (lambda line: None)

    bus = EventBus(path=obs_path)
    obs = Recorder(bus=bus)
    fault_plan.bind(obs)
    fs = FaultyFilesystem(fault_plan)
    clock = FaultyClock()

    if state_dir is None:
        state_dir = tempfile.mkdtemp(prefix="chaos-soak-")
    wal_path = os.path.join(state_dir, "wal.jsonl")
    snapshot_path = os.path.join(state_dir, "server.json")

    config = GroupConfig(
        block_size=5, seed=seed, **fault_plan.group_overrides
    )
    service_kwargs = {
        "state_dir": state_dir,
        "wal_compact_every": 4,
        "verify_invariants": True,
    }
    service_kwargs.update(fault_plan.daemon_overrides)
    service = DaemonConfig(**service_kwargs)
    backend = SessionDelivery(
        config, seed=seed + 1, chaos=FeedbackChaos(fault_plan)
    )

    result = SoakResult(
        plan=fault_plan.name,
        seed=int(seed),
        intervals_target=int(intervals),
        expect_recoverable=fault_plan.expect_recoverable,
    )
    daemon = None
    recovery_bounded = True
    try:
        daemon = RekeyDaemon.start_new(
            ["member-%03d" % index for index in range(members)],
            config=config,
            backend=backend,
            churn=PoissonChurn(alpha=0.15),
            service=service,
            seed=seed,
            obs=obs,
            fs=fs,
            clock=clock,
        )
        say(
            "chaos-soak: plan %r, seed %d, %d members, %d intervals"
            % (fault_plan.name, seed, members, intervals)
        )
        fired_jumps = set()
        fired_storage = set()
        steps = 0
        # Replays and fallbacks can revisit an interval, so the loop is
        # bounded by work done, not a range over interval numbers.
        max_steps = intervals * 3 + 8
        while daemon.server.intervals_processed < intervals:
            steps += 1
            if steps > max_steps:
                raise ChaosError(
                    "soak wedged: %d steps but only %d/%d intervals done"
                    % (steps, daemon.server.intervals_processed, intervals)
                )
            current = daemon.server.intervals_processed
            fault_plan.set_interval(current)
            if current not in fired_jumps:
                if fault_plan.apply_clock_jump(clock, current) is not None:
                    fired_jumps.add(current)
            daemon.run_interval()
            due = [
                f
                for f in fault_plan.storage_faults_after(current)
                if (f.kind, f.after_interval) not in fired_storage
            ]
            if due:
                processed_before = daemon.server.intervals_processed
                daemon.close()
                for storage_fault in due:
                    fired_storage.add(
                        (storage_fault.kind, storage_fault.after_interval)
                    )
                    _apply_storage_fault(
                        fault_plan, storage_fault, wal_path, snapshot_path
                    )
                obs.emit(
                    "soak_restart",
                    interval=current,
                    faults=[f.kind for f in due],
                )
                say(
                    "  interval %d: %s -> restarting through recovery"
                    % (current, ", ".join(f.kind for f in due))
                )
                daemon = RekeyDaemon.recover(
                    state_dir,
                    config=config,
                    backend=backend,
                    fleet=daemon.fleet,
                    churn=daemon.churn,
                    service=service,
                    seed=seed,
                    obs=obs,
                    fs=fs,
                    clock=clock,
                )
                result.restarts += 1
                if daemon.server.intervals_processed < processed_before - 1:
                    recovery_bounded = False
        result.intervals_completed = daemon.server.intervals_processed

        # -- end-of-run invariants --------------------------------------
        invariants = result.invariants
        invariants["completed"] = (
            daemon.server.intervals_processed >= intervals
        )
        try:
            daemon.fleet.check_agreement(
                daemon.server, exclude=daemon.pending_carry_names()
            )
            invariants["key-agreement"] = True
        except ReproError:
            invariants["key-agreement"] = False
        invariants["recovery-bounded"] = recovery_bounded
        _, wal_error = scan_records(wal_path)
        invariants["wal-roundtrip"] = wal_error is None
        snapshot_ok = daemon._save_snapshot()
        if snapshot_ok:
            try:
                reloaded = load_server(snapshot_path, config=config)
                invariants["snapshot-roundtrip"] = (
                    reloaded.intervals_processed
                    == daemon.server.intervals_processed
                    and reloaded.group_key.fingerprint()
                    == daemon.server.group_key.fingerprint()
                )
            except ReproError:
                invariants["snapshot-roundtrip"] = False
        else:
            invariants["snapshot-roundtrip"] = False
        for name, passed in sorted(invariants.items()):
            obs.emit("soak_invariant", invariant=name, passed=bool(passed))
            say("  invariant %-20s %s" % (name, "ok" if passed else "FAIL"))
    except RecoveryError as error:
        # The escalation ladder was exhausted.  For an ``unrecoverable``
        # plan this is the *expected* terminal state; either way it is a
        # diagnostic, not a traceback.
        result.failure = error
        say("  recovery failed: %s" % error)
    except ReproError as error:
        result.failure = error
        say("  soak aborted: %s" % error)
    finally:
        if daemon is not None:
            daemon.close()
            result.intervals_completed = daemon.server.intervals_processed
        result.faults_injected = fault_plan.injected
        result.timeline = canonical_timeline(bus.events)
        result.digest = timeline_digest(result.timeline)
        bus.close()
    return result
