"""The fault vocabulary and the seed-driven :class:`FaultPlan`.

Four fault families, matching where a production key server actually
breaks:

- :class:`IoFault` — a scheduled ``OSError`` out of one durability
  operation (``wal-write``, ``wal-fsync``, ``snapshot-write``,
  ``snapshot-fsync``, ``wal-replace``, ``snapshot-replace``), addressed
  by *occurrence*: "fail the 3rd snapshot fsync, twice".  Raised by the
  :class:`~repro.chaos.seams.FaultyFilesystem` seam.
- :class:`StorageFault` — bytes damaged at rest *between* intervals
  (a WAL record bit-flip, a mid-record truncation, a snapshot
  bit-flip), applied by the soak harness, which then restarts the
  daemon through the recovery ladder.  Byte offsets and XOR masks come
  from the plan's own RNG, so the same seed damages the same byte.
- :class:`ClockJump` — the wall clock steps forward or backward at an
  interval boundary (NTP slew, VM migration).
- :class:`FeedbackFault` — first-round NACK feedback is duplicated,
  reordered, or replaced by a storm of maximal requests
  (:class:`FeedbackChaos` hooks the transport session's feedback path).

Every injection is emitted as a ``fault_injected`` event on the plan's
bound observability recorder, which is what makes a chaos run's fault
timeline reproducible and digestible.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ChaosError
from repro.obs.recorder import NULL

#: operation families an IoFault can target
IO_OPS = (
    "wal-write",
    "wal-fsync",
    "wal-replace",
    "snapshot-write",
    "snapshot-fsync",
    "snapshot-replace",
)

#: storage mutations applied at rest between intervals
STORAGE_KINDS = (
    "wal-flip",        # XOR one WAL byte
    "wal-truncate",    # cut the WAL mid-record
    "snapshot-flip",   # XOR one snapshot byte
    "snapshot-flip-all",  # XOR a byte in *every* snapshot generation
)

#: first-round feedback mutations
FEEDBACK_KINDS = ("duplicate", "reorder", "storm")

#: cluster-level faults driven by the HA soak harness (docs/ha.md)
HA_FAULT_KINDS = (
    "leader-kill",   # SIGKILL the leader mid-interval; standby promotes
    "partition",     # drop replication frames between at/until intervals
    "lease-pause",   # leader stops renewing its lease (split-brain setup)
)


@dataclass(frozen=True)
class IoFault:
    """Fail occurrences ``at .. at+times-1`` (0-based) of one I/O op."""

    op: str
    at: int = 0
    times: int = 1

    def __post_init__(self):
        if self.op not in IO_OPS:
            raise ChaosError(
                "unknown I/O op %r (valid: %s)" % (self.op, ", ".join(IO_OPS))
            )
        if self.at < 0 or self.times < 1:
            raise ChaosError("IoFault needs at >= 0 and times >= 1")


@dataclass(frozen=True)
class StorageFault:
    """Damage durable bytes after interval ``after_interval`` commits."""

    kind: str
    after_interval: int

    def __post_init__(self):
        if self.kind not in STORAGE_KINDS:
            raise ChaosError(
                "unknown storage fault %r (valid: %s)"
                % (self.kind, ", ".join(STORAGE_KINDS))
            )


@dataclass(frozen=True)
class ClockJump:
    """Step the wall clock by ``delta`` seconds before an interval."""

    at_interval: int
    delta: float


@dataclass(frozen=True)
class HaFault:
    """One cluster-level failure for the HA soak to orchestrate.

    ``at_interval`` is when the fault strikes (leader's interval count);
    ``until_interval`` bounds the window for the two windowed kinds
    (``partition`` heals there; ``lease-pause`` is when the standby is
    given the chance to notice the lapsed lease and promote).  ``point``
    picks the in-interval crash site for ``leader-kill`` (one of
    :data:`repro.service.daemon.CRASH_POINTS`).
    """

    kind: str
    at_interval: int
    until_interval: int = None
    point: str = "post-delivery"

    def __post_init__(self):
        if self.kind not in HA_FAULT_KINDS:
            raise ChaosError(
                "unknown HA fault %r (valid: %s)"
                % (self.kind, ", ".join(HA_FAULT_KINDS))
            )
        if self.kind in ("partition", "lease-pause"):
            if self.until_interval is None:
                raise ChaosError(
                    "%s needs an until_interval" % (self.kind,)
                )
            if self.until_interval <= self.at_interval:
                raise ChaosError(
                    "until_interval must be after at_interval"
                )


@dataclass(frozen=True)
class FeedbackFault:
    """Mutate round-``rounds`` NACK feedback during one interval."""

    kind: str
    at_interval: int
    rounds: tuple = (1,)

    def __post_init__(self):
        if self.kind not in FEEDBACK_KINDS:
            raise ChaosError(
                "unknown feedback fault %r (valid: %s)"
                % (self.kind, ", ".join(FEEDBACK_KINDS))
            )


@dataclass
class FaultPlan:
    """Every fault one chaos run will inject, derived from one seed.

    The plan is *the* source of nondeterminism-free chaos: occurrence
    counters schedule the I/O faults, the plan RNG picks damage offsets,
    and the soak harness advances :attr:`current_interval` so interval-
    scoped faults fire exactly once.  ``expect_recoverable`` marks plans
    whose end state must satisfy every invariant (the ``unrecoverable``
    plan intentionally does not).
    """

    name: str
    seed: int
    io_faults: tuple = ()
    storage_faults: tuple = ()
    clock_jumps: tuple = ()
    feedback_faults: tuple = ()
    ha_faults: tuple = ()
    expect_recoverable: bool = True
    daemon_overrides: dict = field(default_factory=dict)
    #: GroupConfig kwargs the soak applies (e.g. a low ``rho_max`` so a
    #: feedback storm demonstrably saturates the clamp)
    group_overrides: dict = field(default_factory=dict)

    def __post_init__(self):
        self.io_faults = tuple(self.io_faults)
        self.storage_faults = tuple(self.storage_faults)
        self.clock_jumps = tuple(self.clock_jumps)
        self.feedback_faults = tuple(self.feedback_faults)
        self.ha_faults = tuple(self.ha_faults)
        self._rng = np.random.default_rng(int(self.seed))
        self._io_counts = {}
        self.current_interval = -1
        self.injected = 0
        self.obs = NULL

    def bind(self, obs):
        """Attach the observability recorder injections emit through."""
        self.obs = obs
        return self

    def set_interval(self, interval):
        self.current_interval = int(interval)

    def _emit(self, fault, **detail):
        self.injected += 1
        self.obs.emit(
            "fault_injected",
            fault=fault,
            interval=self.current_interval,
            **detail,
        )

    # -- I/O faults (consulted by FaultyFilesystem) ---------------------

    def check_io(self, op, path):
        """Raise the scheduled ``OSError`` for this occurrence of ``op``."""
        occurrence = self._io_counts.get(op, 0)
        self._io_counts[op] = occurrence + 1
        for fault in self.io_faults:
            if fault.op == op and fault.at <= occurrence < fault.at + fault.times:
                self._emit("io-error", op=op, occurrence=occurrence)
                raise OSError(
                    errno.EIO,
                    "injected %s failure (occurrence %d)" % (op, occurrence),
                )

    # -- interval-scoped lookups ----------------------------------------

    def storage_faults_after(self, interval):
        return [
            f for f in self.storage_faults if f.after_interval == interval
        ]

    def clock_jump_at(self, interval):
        for jump in self.clock_jumps:
            if jump.at_interval == interval:
                return jump
        return None

    def feedback_fault_at(self, interval):
        for fault in self.feedback_faults:
            if fault.at_interval == interval:
                return fault
        return None

    def ha_fault_of(self, kind):
        """The plan's (single) HA fault of ``kind``, or ``None``."""
        for fault in self.ha_faults:
            if fault.kind == kind:
                return fault
        return None

    def apply_ha_fault(self, kind, **detail):
        """Count and emit one orchestrated cluster fault.

        HA faults are *enacted* by the HA soak harness (killing the
        leader, partitioning the link, pausing renewals) — the plan
        only schedules them — so the harness reports each injection
        back through here to keep the injected counter and the
        ``fault_injected`` timeline consistent with the other families.
        """
        self._emit("ha-" + kind, **detail)

    def apply_clock_jump(self, clock, interval):
        """Apply the jump scheduled at ``interval`` (if any) to ``clock``
        and emit it; returns the :class:`ClockJump` or ``None``."""
        jump = self.clock_jump_at(interval)
        if jump is None:
            return None
        clock.jump(jump.delta)
        self._emit("clock-jump", delta=jump.delta)
        return jump

    # -- storage damage (applied by the soak harness) -------------------

    def flip_byte(self, path):
        """XOR one plan-chosen byte of ``path``; returns (offset, mask).

        The offset and mask come from the plan RNG, so the same seed
        always damages the same byte of the same file contents.
        Whitespace bytes are skipped: a space flipped to another
        whitespace char can survive JSON re-parsing unchanged, and a
        flipped record separator merges lines — both would make the
        damage *kind* (not just location) seed-dependent.  Every
        non-whitespace single-byte change is CRC32-detectable.
        """
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        candidates = [
            index
            for index, byte in enumerate(data)
            if byte not in (0x20, 0x09, 0x0A, 0x0D)
        ]
        if not candidates:
            raise ChaosError("cannot corrupt empty file %s" % path)
        offset = candidates[int(self._rng.integers(0, len(candidates)))]
        mask = int(self._rng.integers(1, 256))
        data[offset] ^= mask
        with open(path, "wb") as handle:
            handle.write(data)
        self._emit(
            "byte-flip",
            target=os.path.basename(path),
            offset=offset,
            mask=mask,
        )
        return offset, mask

    def truncate_tail(self, path):
        """Cut a plan-chosen number of bytes off the end of ``path``."""
        size = os.path.getsize(path)
        if size < 2:
            raise ChaosError("cannot truncate %s (too small)" % path)
        cut = int(self._rng.integers(1, min(size, 24)))
        with open(path, "r+b") as handle:
            handle.truncate(size - cut)
        self._emit(
            "truncate",
            target=os.path.basename(path),
            cut=cut,
            size=size - cut,
        )
        return cut


class FeedbackChaos:
    """The transport-session hook that mutates first-round feedback.

    :class:`~repro.transport.session.RekeySession` calls
    :meth:`mangle_nacks` after collecting each round's NACKs and before
    handing them to the server transport; the returned list is what the
    server *actually sees*.  ``duplicate`` doubles every report,
    ``reorder`` reverses arrival order, and ``storm`` fabricates a
    maximal (255-parity) request from every user — the adversarial input
    the ``rho_max`` clamp and request validation exist for.
    """

    def __init__(self, plan):
        self.plan = plan

    def mangle_nacks(self, session, round_index, nacks):
        fault = self.plan.feedback_fault_at(self.plan.current_interval)
        if fault is None or round_index not in fault.rounds:
            return nacks
        if fault.kind == "duplicate":
            mangled = list(nacks) + list(nacks)
        elif fault.kind == "reorder":
            mangled = list(reversed(nacks))
        else:  # storm
            from repro.rekey.packets import NackPacket, NackRequest

            request = (NackRequest(block_id=0, n_parity=255),)
            mangled = [
                NackPacket(
                    rekey_message_id=session.message.message_id,
                    user_id=user_id,
                    requests=request,
                )
                for user_id in session.user_ids
            ]
        self.plan._emit(
            "feedback-" + fault.kind,
            round=round_index,
            before=len(nacks),
            after=len(mangled),
        )
        return mangled
