"""The narrow I/O seams the storage and daemon layers write through.

Durable state is only ever touched via a :class:`Filesystem` and time is
only ever read via a :class:`Clock`, so a fault plan can fail an fsync,
break an ``os.replace``, or jump the wall clock *without* monkeypatching
— the production code path and the chaos code path are the same code.

The real implementations are deliberately thin: each method is one
stdlib call (plus the flush that makes ``fsync`` meaningful).  The
faulty subclasses consult a :class:`~repro.chaos.faults.FaultPlan`
before delegating, so every injection is scheduled, counted, and
emitted as an observability event by the plan itself.
"""

from __future__ import annotations

import os
import time


class Filesystem:
    """Real file I/O, factored behind the seam the chaos layer needs.

    Callers hold ordinary file handles; the facade only wraps the
    *operations* whose failure modes matter for durability: writes,
    fsyncs, atomic replaces, and directory fsyncs.
    """

    def open(self, path, mode="r"):
        return open(path, mode)

    def read_bytes(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def write(self, handle, data):
        handle.write(data)

    def fsync(self, handle):
        """Flush and fsync: the bytes are durable when this returns."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source, destination):
        os.replace(source, destination)

    def fsync_dir(self, directory):
        """Fsync a directory entry so a rename survives a crash.

        Best-effort: platforms without directory fsync simply skip it
        (the rename is still atomic, just not yet durable).
        """
        try:
            dir_fd = os.open(directory or ".", os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir open
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform without dir fsync
            pass
        finally:
            os.close(dir_fd)

    def exists(self, path):
        return os.path.exists(path)

    def getsize(self, path):
        return os.path.getsize(path)

    def truncate(self, path, size):
        with open(path, "r+b") as handle:
            handle.truncate(size)

    def remove(self, path):
        os.remove(path)


class Clock:
    """Real time: wall clock, monotonic clock, and sleep."""

    def time(self):
        return time.time()

    def monotonic(self):
        return time.monotonic()

    def sleep(self, seconds):
        time.sleep(seconds)


#: Shared default instances — the zero-cost path everywhere.
REAL_FILESYSTEM = Filesystem()
SYSTEM_CLOCK = Clock()


def _classify(path):
    """Fault-family of a path: the WAL or the snapshot store."""
    name = os.path.basename(os.fspath(path))
    return "wal" if "wal" in name else "snapshot"


class FaultyFilesystem(Filesystem):
    """A :class:`Filesystem` that fails operations a plan scheduled.

    Each instrumented call asks the plan first
    (``plan.check_io("wal-fsync", path)``); the plan raises an injected
    ``OSError`` when that occurrence is scheduled to fail, and emits the
    ``fault_injected`` event.  Handles returned by :meth:`open` are real
    — only the durability-critical operations are interceptable.
    """

    def __init__(self, plan):
        self.plan = plan

    def write(self, handle, data):
        self.plan.check_io(_classify(handle.name) + "-write", handle.name)
        super().write(handle, data)

    def fsync(self, handle):
        self.plan.check_io(_classify(handle.name) + "-fsync", handle.name)
        super().fsync(handle)

    def replace(self, source, destination):
        self.plan.check_io(
            _classify(destination) + "-replace", destination
        )
        super().replace(source, destination)


class FaultyClock(Clock):
    """A :class:`Clock` whose wall time can jump and whose sleeps are
    virtual.

    - :meth:`jump` shifts :meth:`time` by a delta (forward or backward)
      — the clock-jump fault.  :meth:`monotonic` never jumps backwards,
      matching the OS guarantee the daemon's pacing relies on.
    - :meth:`sleep` advances virtual time instead of blocking, so a
      chaos run's retry backoffs are deterministic and instant.
    """

    def __init__(self):
        self._offset = 0.0
        self._slept = 0.0

    def jump(self, delta):
        """Shift the wall clock by ``delta`` seconds; returns the total
        offset now applied."""
        self._offset += float(delta)
        return self._offset

    @property
    def slept(self):
        """Total virtual seconds spent in :meth:`sleep`."""
        return self._slept

    def time(self):
        return time.time() + self._offset + self._slept

    def monotonic(self):
        return time.monotonic() + self._slept

    def sleep(self, seconds):
        self._slept += max(0.0, float(seconds))
