"""Deterministic fault injection for the rekey service.

The paper argues that rekey transport must survive loss and member
failure; this package provokes the *rest* of the failure universe — the
classes a production key server meets that the analysis assumes away —
on demand and reproducibly:

- :mod:`repro.chaos.seams` — the :class:`Filesystem` and :class:`Clock`
  facades the storage/daemon layers write through.  The real
  implementations are trivial pass-throughs; the faulty ones inject
  ``OSError`` at scheduled operations and jump the wall clock.
- :mod:`repro.chaos.faults` — the fault vocabulary and the
  :class:`FaultPlan` that schedules faults by operation occurrence,
  interval, and protocol round, all derived from one seed.
- :mod:`repro.chaos.plans` — named, versioned plans (``standard``,
  ``io-storm``, ``storage-corruptor``, ``feedback-abuse``,
  ``unrecoverable``) the CLI and CI run.
- :mod:`repro.chaos.soak` — the harness: run a durable daemon under a
  plan, restart it after every storage mutation, and assert the
  recovery invariants (agreement, bounded recovery, snapshot/WAL
  round-trip).  Every injection and recovery is an obs event, so the
  whole run digests to one reproducible hash.

Everything here is deterministic: the same ``(plan, seed)`` produces
the identical fault sequence, byte offsets included.  See
``docs/robustness.md``.
"""

from repro.chaos.faults import (
    ClockJump,
    FaultPlan,
    FeedbackChaos,
    FeedbackFault,
    IoFault,
    StorageFault,
)
from repro.chaos.plans import PLAN_INTERVALS, PLAN_NAMES, make_plan
from repro.chaos.seams import (
    REAL_FILESYSTEM,
    SYSTEM_CLOCK,
    Clock,
    FaultyClock,
    FaultyFilesystem,
    Filesystem,
)


def __getattr__(name):
    # The soak harness imports repro.service, which itself adopts the
    # seams above — importing it eagerly here would be a cycle, so the
    # two harness entry points resolve lazily (PEP 562).
    if name in ("SoakResult", "run_soak"):
        from repro.chaos import soak

        return getattr(soak, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "Clock",
    "ClockJump",
    "FaultPlan",
    "FaultyClock",
    "FaultyFilesystem",
    "FeedbackChaos",
    "FeedbackFault",
    "Filesystem",
    "IoFault",
    "PLAN_NAMES",
    "REAL_FILESYSTEM",
    "SYSTEM_CLOCK",
    "SoakResult",
    "StorageFault",
    "make_plan",
    "PLAN_INTERVALS",
    "run_soak",
]
