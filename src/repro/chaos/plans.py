"""The named fault plans the ``chaos-soak`` CLI runs.

Each plan is a curated :class:`~repro.chaos.faults.FaultPlan` —
a reproducible gauntlet aimed at one slice of the hardening:

- ``standard`` — a bit of everything: transient I/O errors under the
  retry budget, at-rest WAL/snapshot damage through the quarantine and
  snapshot ladder, clock jumps, and each feedback mutation once;
- ``io-storm`` — only injected ``OSError``\\ s, including a burst long
  enough to exhaust the snapshot retry budget (the interval stays
  uncommitted and the next snapshot covers it) and a failed compaction;
- ``storage-corruptor`` — repeated bit-flips and truncations of the
  durable files, restarting the daemon through recovery after each;
- ``feedback-abuse`` — NACK storms against a one-round deadline: the
  ρ clamp saturates and the degradation circuit breaker opens, cools
  down, and closes;
- ``unrecoverable`` — damages *every* snapshot generation, so recovery
  must fail; the soak (and CLI) treat the resulting
  :class:`~repro.errors.RecoveryError` as the expected outcome and the
  CLI still exits non-zero with the diagnostic.

Every number below is deliberate; see each plan's comment.  Offsets and
masks for the storage damage are *not* here — they come from the plan
RNG, so ``--seed`` reshuffles the damaged bytes while the schedule
stays fixed.
"""

from __future__ import annotations

from repro.chaos.faults import (
    ClockJump,
    FaultPlan,
    FeedbackFault,
    HaFault,
    IoFault,
    StorageFault,
)
from repro.errors import ChaosError

PLAN_NAMES = (
    "standard",
    "io-storm",
    "storage-corruptor",
    "feedback-abuse",
    "unrecoverable",
)

#: cluster-level plans run by ``ha-soak`` (see docs/ha.md); their
#: faults are orchestrated by the HA harness, not the single-node soak
HA_PLAN_NAMES = (
    "leader-kill",
    "replication-partition",
    "split-brain",
)

#: intervals each named plan is designed to run (the CLI default)
PLAN_INTERVALS = {
    "standard": 12,
    "io-storm": 10,
    "storage-corruptor": 10,
    "feedback-abuse": 10,
    "unrecoverable": 6,
    "leader-kill": 8,
    "replication-partition": 8,
    "split-brain": 8,
}

#: one-line operator-facing description per plan (``--list-plans``)
PLAN_DESCRIPTIONS = {
    "standard": (
        "a bit of everything: transient I/O errors, at-rest WAL/snapshot "
        "damage, clock jumps, and each feedback mutation once"
    ),
    "io-storm": (
        "only injected OSErrors, including a burst that exhausts the "
        "snapshot retry budget and a failed compaction"
    ),
    "storage-corruptor": (
        "repeated WAL/snapshot flips and truncations, each followed by a "
        "restart through recovery"
    ),
    "feedback-abuse": (
        "NACK storms against a one-round deadline: the rho clamp "
        "saturates and the circuit breaker cycles"
    ),
    "unrecoverable": (
        "damages every snapshot generation; recovery must fail with a "
        "clean RecoveryError and a non-zero exit"
    ),
    "leader-kill": (
        "HA: kill the leader mid-interval; the standby promotes, replays "
        "the pending requests, and must match the single-node oracle key"
    ),
    "replication-partition": (
        "HA: drop replication frames for a window shorter than the "
        "lease; the follower must catch up without promoting"
    ),
    "split-brain": (
        "HA: the leader stops renewing its lease, the standby promotes, "
        "and the deposed leader's late WAL append must be fenced out"
    ),
}


def describe_plans(names=None):
    """``(name, description)`` pairs for the ``--list-plans`` flag."""
    if names is None:
        names = PLAN_NAMES + HA_PLAN_NAMES
    return [(name, PLAN_DESCRIPTIONS[name]) for name in names]


def make_plan(name, seed=7):
    """Build the named :class:`FaultPlan` with damage drawn from ``seed``."""
    if name == "standard":
        return FaultPlan(
            name=name,
            seed=seed,
            io_faults=(
                # third WAL fsync fails once: rollback + one retry
                IoFault("wal-fsync", at=2),
                # snapshot fsyncs 1-2 fail: two retries, still in budget
                IoFault("snapshot-fsync", at=1, times=2),
                # one atomic-replace failure mid-run
                IoFault("snapshot-replace", at=4),
            ),
            storage_faults=(
                # at-rest WAL damage -> quarantine + salvaged prefix
                StorageFault("wal-flip", after_interval=3),
                # mid-record cut -> torn tail or quarantine (seed-fixed)
                StorageFault("wal-truncate", after_interval=6),
                # primary snapshot damage -> ladder falls back to .prev
                StorageFault("snapshot-flip", after_interval=8),
            ),
            clock_jumps=(
                ClockJump(at_interval=4, delta=3600.0),   # NTP step fwd
                ClockJump(at_interval=9, delta=-120.0),   # and back
            ),
            feedback_faults=(
                FeedbackFault("duplicate", at_interval=2),
                FeedbackFault("reorder", at_interval=5),
                FeedbackFault("storm", at_interval=7),
            ),
            # compact often enough that the run exercises compaction
            daemon_overrides={"wal_compact_every": 4},
        )
    if name == "io-storm":
        return FaultPlan(
            name=name,
            seed=seed,
            io_faults=(
                IoFault("wal-write", at=1, times=2),
                IoFault("wal-fsync", at=6),
                # four consecutive snapshot-fsync failures exhaust the
                # default retry budget (max_attempts=4): the interval is
                # left uncommitted and the next snapshot covers it
                IoFault("snapshot-fsync", at=2, times=4),
                IoFault("snapshot-write", at=9),
                # first compaction's replace fails: compaction skipped
                IoFault("wal-replace", at=0),
            ),
            daemon_overrides={"wal_compact_every": 3},
        )
    if name == "storage-corruptor":
        return FaultPlan(
            name=name,
            seed=seed,
            storage_faults=(
                StorageFault("wal-flip", after_interval=1),
                StorageFault("wal-flip", after_interval=3),
                StorageFault("wal-truncate", after_interval=5),
                StorageFault("snapshot-flip", after_interval=7),
                StorageFault("wal-flip", after_interval=8),
            ),
            daemon_overrides={"wal_compact_every": 5},
        )
    if name == "feedback-abuse":
        return FaultPlan(
            name=name,
            seed=seed,
            feedback_faults=(
                FeedbackFault("storm", at_interval=1),
                FeedbackFault("storm", at_interval=2),
                FeedbackFault("storm", at_interval=3),
                FeedbackFault("storm", at_interval=4),
                FeedbackFault("duplicate", at_interval=6),
            ),
            # one-round deadline so cutovers recur and the breaker trips
            daemon_overrides={
                "deadline_rounds": 1,
                "circuit_threshold": 2,
                "circuit_cooldown": 2,
            },
            # a low ceiling so the storms demonstrably saturate the
            # AdjustRho clamp within a short run
            group_overrides={"rho_max": 1.2, "num_nack": 5},
        )
    if name == "leader-kill":
        return FaultPlan(
            name=name,
            seed=seed,
            ha_faults=(
                # kill after delivery but before snapshot/commit: members
                # already hold the interval's keys, the log has its
                # requests, and the snapshot never saw it — the worst
                # alignment for a naive failover
                HaFault("leader-kill", at_interval=3, point="post-delivery"),
            ),
        )
    if name == "replication-partition":
        return FaultPlan(
            name=name,
            seed=seed,
            ha_faults=(
                # three intervals of dropped frames, healed well inside
                # the lease TTL: the follower must fall behind, catch up
                # from the leader's WAL, and never promote
                HaFault("partition", at_interval=2, until_interval=5),
            ),
        )
    if name == "split-brain":
        return FaultPlan(
            name=name,
            seed=seed,
            ha_faults=(
                # the leader keeps running but stops renewing its lease
                # (a wedged renewal thread / isolated node); at interval 6
                # the standby notices the lapse and promotes, after which
                # the deposed leader attempts one more append
                HaFault("lease-pause", at_interval=3, until_interval=6),
            ),
        )
    if name == "unrecoverable":
        return FaultPlan(
            name=name,
            seed=seed,
            storage_faults=(
                # every snapshot generation damaged: the ladder must be
                # exhausted and recovery must fail with a clean
                # RecoveryError (never a traceback)
                StorageFault("snapshot-flip-all", after_interval=2),
            ),
            expect_recoverable=False,
        )
    raise ChaosError(
        "unknown fault plan %r (valid: %s)"
        % (name, ", ".join(PLAN_NAMES + HA_PLAN_NAMES))
    )
