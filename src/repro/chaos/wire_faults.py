"""Seeded datagram faults for the asyncio UDP wire plane.

The wire plane's loss model (:mod:`repro.wire.loss`) is deliberately
polite: it only ever drops ``DATA`` frames, because the pinned fleet
digests need the control exchanges intact.  Real networks are not
polite.  :class:`DatagramFaultInjector` mangles *any* frame — control
frames are fair game — with five fault families:

- **corrupt** — flip a bit in the frame envelope so the receiver's
  ``decode_frame`` refuses the datagram (``WireDecodeError``).  The
  mutation targets the magic byte on purpose: a flipped *payload* byte
  could decode into a silently-valid-but-wrong frame, which no amount
  of retrying repairs; envelope damage is always detected, so the fault
  exercises the decode-error path and degrades to a deterministic drop.
- **duplicate** — the datagram is delivered twice (receivers must
  deduplicate: the server's aggregation windows by member, the client
  by slot).
- **reorder** — a multicast ``DATA`` frame is held back and released
  *after* the next frame to the same member, or at the round-boundary
  flush — never across a round, so the round's feedback still reflects
  the same packet set and the protocol facts stay deterministic.
- **delay** — a *control* frame (ANNOUNCE / ROUND_END / unicast / the
  feedback path) is delivered late.  Control exchanges are
  retried-against-cached-state, so lateness costs retries, never
  correctness; ``DATA`` frames are exempt because a late one crossing a
  round boundary would make the NACK trajectory timing-dependent.
- **blackout** — a chosen ``(member, interval)`` loses the *first* copy
  of every frame in both directions: one member goes dark for one
  interval and must ride the announce-barrier and round retries back
  in.

**Determinism.**  Every decision is a pure function of ``(seed,
direction, member, frame kind, interval, round, slot)`` — a keyed hash
compared against the plan's rates — and drop-like faults apply only to
the *first* occurrence of a coordinate.  Retransmissions reuse the
coordinates of the frame they repeat, so retries always get through,
the run converges, and how *many* retries the scheduler needed never
enters the fault record.  The timeline of first applications (and its
:func:`fault_timeline_digest`) is therefore identical for the same
``(plan, seed)`` on any machine and under any worker placement: the
injector lives in the server process, and the client side of the fleet
never makes a fault decision.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.errors import ChaosError
from repro.obs.recorder import NULL
from repro.wire import codec

#: The five wire fault families, in the order the injector tests them.
WIRE_FAULT_KINDS = ("blackout", "corrupt", "reorder", "delay", "duplicate")


@dataclass(frozen=True)
class WireFaultParams:
    """Per-family rates for one plan (all default off)."""

    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.002
    blackout_rate: float = 0.0

    def __post_init__(self):
        for name in (
            "corrupt_rate",
            "duplicate_rate",
            "reorder_rate",
            "delay_rate",
            "blackout_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ChaosError(
                    "%s must be a probability, got %r" % (name, rate)
                )

    @property
    def any_enabled(self):
        return any(
            (
                self.corrupt_rate,
                self.duplicate_rate,
                self.reorder_rate,
                self.delay_rate,
                self.blackout_rate,
            )
        )


@dataclass(frozen=True)
class SendPlan:
    """What to do with one outgoing datagram: each entry is
    ``(wire_bytes, delay_seconds)``; an empty list is a drop."""

    sends: tuple = ()


def corrupt_frame(data):
    """Deterministically damage a frame's envelope (see module docs:
    the magic byte, so the receiver always detects the damage)."""
    if not data:
        return data
    return bytes([data[0] ^ 0x40]) + bytes(data[1:])


class DatagramFaultInjector:
    """The wire transport's fault seam (one per server).

    The server routes every outgoing datagram through
    :meth:`plan_send`, every incoming one through :meth:`plan_recv`,
    and calls :meth:`flush` at each window boundary so held (reordered)
    frames never cross a round.
    """

    def __init__(self, params, seed, obs=NULL):
        self.params = params
        self.seed = int(seed)
        self.obs = obs
        #: first-application records, the digest input (see
        #: :func:`fault_timeline_digest`)
        self.timeline = []
        #: per-family totals of *applied* (first-occurrence) faults
        self.applied = {}
        self._seen = {}  # coordinate -> occurrence count
        self._held = {}  # member_index -> [wire bytes] (reorder cells)
        self._recorded = set()

    def bind(self, obs):
        self.obs = obs
        return self

    # -- decisions -------------------------------------------------------

    def _draw(self, fault, *coords):
        """Uniform [0, 1) keyed by (seed, fault, coordinates)."""
        digest = hashlib.blake2b(
            ("%d|%s|" % (self.seed, fault)).encode("ascii")
            + "|".join(str(c) for c in coords).encode("ascii"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def _hits(self, fault, rate, *coords):
        return rate > 0.0 and self._draw(fault, *coords) < rate

    def blacked_out(self, member_index, interval):
        """Whether ``(member, interval)`` is inside a burst blackout."""
        return self._hits(
            "blackout", self.params.blackout_rate, member_index, interval
        )

    def _occurrence(self, coord):
        count = self._seen.get(coord, 0)
        self._seen[coord] = count + 1
        return count

    def _record(self, fault, entry, key=None):
        key = key if key is not None else tuple(sorted(entry.items()))
        if key in self._recorded:
            return
        self._recorded.add(key)
        self.applied[fault] = self.applied.get(fault, 0) + 1
        self.timeline.append(entry)
        self.obs.count("wire_chaos_fault_total", fault=fault)
        self.obs.emit("wire_chaos_fault", **entry)

    def _record_frame(self, fault, direction, member_index, frame):
        self._record(
            fault,
            {
                "fault": fault,
                "direction": direction,
                "member": member_index,
                "frame": frame.kind.name,
                "interval": frame.interval,
                "round": frame.round_no,
                "slot": frame.slot,
            },
        )

    def _record_blackout(self, member_index, interval):
        # One record per darkened (member, interval), whichever
        # direction notices first — the decision itself has no
        # direction, so the record must not either.
        self._record(
            "blackout",
            {
                "fault": "blackout",
                "member": member_index,
                "interval": interval,
            },
            key=("blackout", member_index, interval),
        )

    # -- the send path ---------------------------------------------------

    def plan_send(self, member_index, data):
        """Fault-plan one outgoing datagram to ``member_index``."""
        frame = codec.decode_frame(data)
        params = self.params
        coord = (
            "send",
            member_index,
            int(frame.kind),
            frame.interval,
            frame.round_no,
            frame.slot,
        )
        first = self._occurrence(coord) == 0
        if first and self.blacked_out(member_index, frame.interval):
            self._record_blackout(member_index, frame.interval)
            return SendPlan(tuple(self._release(member_index)))
        wire = data
        if first and self._hits("corrupt", params.corrupt_rate, *coord):
            wire = corrupt_frame(wire)
            self._record_frame("corrupt", "send", member_index, frame)
        multicast_data = (
            frame.kind == codec.FrameKind.DATA
            and frame.round_no != codec.UNICAST_ROUND
        )
        if (
            first
            and multicast_data
            and self._hits("reorder", params.reorder_rate, *coord)
        ):
            self._record_frame("reorder", "send", member_index, frame)
            self._held.setdefault(member_index, []).append(wire)
            return SendPlan(())
        delay = 0.0
        if (
            first
            and not multicast_data
            and self._hits("delay", params.delay_rate, *coord)
        ):
            delay = params.delay_seconds
            self._record_frame("delay", "send", member_index, frame)
        sends = [(wire, delay)]
        if first and self._hits(
            "duplicate", params.duplicate_rate, *coord
        ):
            sends.append((wire, delay))
            self._record_frame("duplicate", "send", member_index, frame)
        sends.extend(self._release(member_index))
        return SendPlan(tuple(sends))

    def _release(self, member_index):
        """Held frames for ``member_index``, ready to send (delay 0)."""
        held = self._held.pop(member_index, None)
        if not held:
            return []
        return [(wire, 0.0) for wire in held]

    def flush(self):
        """Release every held frame — called at window boundaries so a
        reordered frame never leaks into the next round.  Returns
        ``[(member_index, wire_bytes), ...]`` for the server to send."""
        releases = []
        for member_index in sorted(self._held):
            for wire in self._held[member_index]:
                releases.append((member_index, wire))
        self._held.clear()
        return releases

    # -- the receive path ------------------------------------------------

    def plan_recv(self, data):
        """Fault-plan one incoming datagram; returns the list of
        datagrams the server should process (empty = swallowed)."""
        try:
            frame = codec.decode_frame(data)
        except ChaosError:  # pragma: no cover - decode never raises this
            return [data]
        except Exception:
            # Already-garbage input: pass it through untouched so the
            # server's decode-error accounting sees it exactly once.
            return [data]
        member_index = codec.peek_member_index(frame)
        if member_index is None:
            return [data]
        params = self.params
        coord = (
            "recv",
            member_index,
            int(frame.kind),
            frame.interval,
            frame.round_no,
            frame.slot,
        )
        first = self._occurrence(coord) == 0
        if first and self.blacked_out(member_index, frame.interval):
            self._record_blackout(member_index, frame.interval)
            return []
        wire = data
        if first and self._hits("corrupt", params.corrupt_rate, *coord):
            wire = corrupt_frame(wire)
            self._record_frame("corrupt", "recv", member_index, frame)
        out = [wire]
        if first and self._hits(
            "duplicate", params.duplicate_rate, *coord
        ):
            out.append(wire)
            self._record_frame("duplicate", "recv", member_index, frame)
        return out


def fault_timeline_digest(timeline):
    """SHA-256 over the *sorted* canonical fault applications.

    Sorted, not sequenced: send-side first applications happen in
    deterministic program order, but receive-side ones land in socket
    arrival order, which the scheduler owns.  The *set* of applications
    is a pure function of ``(plan, seed)``; its order is not.
    """
    canonical = sorted(
        json.dumps(entry, sort_keys=True) for entry in timeline
    )
    return hashlib.sha256(
        "\n".join(canonical).encode("utf-8")
    ).hexdigest()


# -- wire chaos plans ----------------------------------------------------

#: The pinned-digest wire survivability plans (docs/robustness.md).
WIRE_CHAOS_PLAN_NAMES = (
    "datagram-storm",
    "client-churn-crash",
    "leader-kill-live",
)


@dataclass(frozen=True)
class ClientCrash:
    """One scheduled client death: ``member`` (initial ordinal, i.e.
    ``member-%04d``) goes silent at ``(interval, round_no)`` —
    ``round_no`` 0 means it never acknowledges that interval's
    ANNOUNCE."""

    member: int
    interval: int
    round_no: int = 1


@dataclass(frozen=True)
class WireChaosPlan:
    """One named wire-chaos configuration (overridable per run)."""

    name: str
    clients: int = 32
    intervals: int = 4
    workers: int = 0
    churn_alpha_join: float = 0.15
    churn_alpha_leave: float = 0.15
    block_size: int = 5
    nack_window_seconds: float = 0.3
    faults: WireFaultParams = WireFaultParams()
    crashes: tuple = ()
    #: interval whose post-delivery crash point kills the leader
    #: (0 = the leader lives)
    leader_kill_interval: int = 0
    #: client silence watchdog (seconds; 0 = off)
    resync_timeout: float = 0.0
    #: server liveness budget in window tries (0 = members never die)
    liveness_tries: int = 0
    description: str = ""


WIRE_CHAOS_PLANS = {
    "datagram-storm": WireChaosPlan(
        "datagram-storm",
        clients=32,
        intervals=4,
        faults=WireFaultParams(
            corrupt_rate=0.10,
            duplicate_rate=0.10,
            reorder_rate=0.08,
            delay_rate=0.08,
            delay_seconds=0.002,
            blackout_rate=0.05,
        ),
        nack_window_seconds=0.15,
        description=(
            "every fault family at once against 32 clients — corruption,"
            " duplication, reordering, delay and per-interval blackouts,"
            " control frames included"
        ),
    ),
    "client-churn-crash": WireChaosPlan(
        "client-churn-crash",
        clients=32,
        intervals=6,
        churn_alpha_join=0.12,
        churn_alpha_leave=0.0,
        faults=WireFaultParams(corrupt_rate=0.05),
        crashes=(
            ClientCrash(member=5, interval=2, round_no=1),
            ClientCrash(member=11, interval=3, round_no=0),
            ClientCrash(member=17, interval=4, round_no=1),
        ),
        liveness_tries=15,
        nack_window_seconds=0.1,
        description=(
            "three clients die mid-interval (one mid-round, one at the"
            " announce); the server's liveness timeout evicts them into"
            " the leave intake while joins keep arriving"
        ),
    ),
    "leader-kill-live": WireChaosPlan(
        "leader-kill-live",
        clients=24,
        intervals=6,
        workers=2,
        churn_alpha_join=0.10,
        churn_alpha_leave=0.0,
        leader_kill_interval=3,
        resync_timeout=0.75,
        nack_window_seconds=0.15,
        description=(
            "the leader daemon is killed post-delivery while worker"
            " processes keep their clients alive; the fleet must re-home"
            " to the promoted standby and reach key agreement"
        ),
    ),
}


def make_wire_plan(
    name, clients=None, intervals=None, workers=None, seed=None
):
    """A :class:`WireChaosPlan` by name, with optional size overrides.

    ``seed`` is accepted for symmetry with :func:`repro.chaos.plans.
    make_plan` but ignored: wire plans are pure configurations — the
    seed enters at run time, through the injector and the group config.
    """
    try:
        plan = WIRE_CHAOS_PLANS[name]
    except KeyError:
        raise ChaosError(
            "unknown wire chaos plan %r (valid: %s)"
            % (name, ", ".join(WIRE_CHAOS_PLAN_NAMES))
        )
    overrides = {}
    if clients is not None:
        overrides["clients"] = int(clients)
    if intervals is not None:
        overrides["intervals"] = int(intervals)
    if workers is not None:
        overrides["workers"] = int(workers)
    return replace(plan, **overrides) if overrides else plan


def describe_wire_plans():
    """``(name, description)`` pairs for ``--list-plans``."""
    return [
        (name, WIRE_CHAOS_PLANS[name].description)
        for name in WIRE_CHAOS_PLAN_NAMES
    ]
