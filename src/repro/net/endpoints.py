"""UDP endpoints wrapping the transport state machines.

One :class:`ServerEndpoint` and N :class:`MemberEndpoint` objects, each
owning a bound UDP socket.  The server runs the round-based protocol:
multicast (emulated: per-member unicast of identical bytes) the round's
ENC/PARITY packets, wait out the round, read NACKs off its socket,
retransmit or unicast USR packets.  Members run a receive loop in a
daemon thread feeding a :class:`~repro.transport.user.UserTransport`
and, optionally, a :class:`~repro.core.member.GroupMember` for actual
key decryption.

Designed for loopback demos and integration tests: small groups, large
timeouts, deterministic receiver-side loss injection.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.errors import TransportError
from repro.rekey.packets import (
    FEC_PAYLOAD_OFFSET,
    NackPacket,
    PacketType,
    decode_packet,
)
from repro.transport.server import ServerTransport, UnicastPolicy
from repro.transport.user import UserTransport
from repro.util.rng import spawn_rng
from repro.util.validation import check_non_negative, check_probability
from repro.wire.codec import recv_buffer_size

#: Protocol knobs shared with :class:`~repro.core.config.GroupConfig`;
#: used when no config is handed in, and kept equal to its defaults.
DEFAULT_MAX_MULTICAST_ROUNDS = 2
DEFAULT_NACK_WINDOW_SECONDS = 0.3


def _bind_udp():
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind(("127.0.0.1", 0))
    return sock


class MemberEndpoint:
    """A member's socket + receiver state machine (+ optional keys)."""

    def __init__(
        self,
        user_id,
        message,
        member=None,
        drop_probability=0.0,
        rng=None,
    ):
        check_non_negative("user_id", user_id, integral=True)
        check_probability("drop_probability", drop_probability)
        self.user_id = int(user_id)
        self.message = message
        self.member = member
        self.drop_probability = float(drop_probability)
        self._rng = rng if rng is not None else spawn_rng()
        self.transport = UserTransport(
            user_id,
            k=message.k,
            degree=4,
            n_blocks=message.n_blocks,
            message_id=message.message_id,
        )
        self.socket = _bind_udp()
        self.socket.settimeout(0.05)
        self.address = self.socket.getsockname()
        # Receive-buffer size follows the configured packet size — a
        # PARITY packet for a large packet_size exceeds any fixed 4 KiB
        # buffer and recvfrom would silently truncate it.
        self._buffer = recv_buffer_size(message.packet_size)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._receive_loop,
                                        daemon=True)
        self.packets_received = 0
        self.packets_dropped = 0

    def start(self):
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=2.0)
        self.socket.close()

    @property
    def done(self):
        return self.transport.done

    def _receive_loop(self):
        while not self._stop.is_set():
            try:
                data, _ = self.socket.recvfrom(self._buffer)
            except socket.timeout:
                continue
            except OSError:
                return
            if self._rng.random() < self.drop_probability:
                self.packets_dropped += 1
                continue
            self.packets_received += 1
            self._dispatch(data)

    def _dispatch(self, data):
        packet = decode_packet(data)
        if packet.packet_type is PacketType.ENC:
            self.transport.on_enc(packet, data[FEC_PAYLOAD_OFFSET:])
        elif packet.packet_type is PacketType.PARITY:
            self.transport.on_parity(packet)
        elif packet.packet_type is PacketType.USR:
            self.transport.on_usr(packet)
        if self.member is not None and self.transport.done:
            self.member.absorb_encryptions(
                self.transport.recovered_encryptions,
                max_kid=self.message.max_kid,
            )

    def end_of_round(self, server_address):
        """Round timeout: decode/NACK exactly like the simulated user."""
        nack = self.transport.end_of_round()
        if nack is not None:
            self.socket.sendto(nack.encode(), server_address)
        if self.member is not None and self.transport.done:
            self.member.absorb_encryptions(
                self.transport.recovered_encryptions,
                max_kid=self.message.max_kid,
            )
        return nack


class ServerEndpoint:
    """The key server's socket + sender state machine.

    ``config`` (a :class:`~repro.core.config.GroupConfig`) supplies the
    protocol knobs — ``max_multicast_rounds`` and the NACK window — so
    loopback demos honour the same configuration as every other
    transport; explicit arguments override it.
    """

    def __init__(
        self, message, rho=1.0, max_multicast_rounds=None, config=None
    ):
        self.message = message
        if max_multicast_rounds is None:
            max_multicast_rounds = (
                config.max_multicast_rounds
                if config is not None
                else DEFAULT_MAX_MULTICAST_ROUNDS
            )
        self.nack_window_seconds = (
            config.nack_window_seconds
            if config is not None
            else DEFAULT_NACK_WINDOW_SECONDS
        )
        self.transport = ServerTransport(
            message,
            rho=rho,
            unicast_policy=UnicastPolicy(
                max_multicast_rounds=max_multicast_rounds,
                compare_usr_bytes=False,
            ),
        )
        self.socket = _bind_udp()
        self.socket.settimeout(0.05)
        self.address = self.socket.getsockname()
        self._buffer = recv_buffer_size(message.packet_size)
        self.members = {}  # user_id -> address
        self.packets_sent = 0

    def register(self, endpoint):
        self.members[endpoint.user_id] = endpoint.address

    def _emulated_multicast(self, wire):
        for address in self.members.values():
            self.socket.sendto(wire, address)
            self.packets_sent += 1

    def run_round(self, pace_seconds=0.0):
        """Send one multicast round's packets (paced, optionally)."""
        planned = self.transport.plan_round()
        for scheduled in planned:
            packet = scheduled.packet
            if packet.packet_type is PacketType.ENC:
                wire = packet.encode(self.message.packet_size)
            else:
                wire = packet.encode()
            self._emulated_multicast(wire)
            if pace_seconds:
                time.sleep(pace_seconds)
        return len(planned)

    def collect_nacks(self, window_seconds=None):
        """Drain NACKs from the socket for one round window.

        The window defaults to the configured
        ``GroupConfig.nack_window_seconds`` handed to the constructor.
        """
        if window_seconds is None:
            window_seconds = self.nack_window_seconds
        nacks = []
        deadline = time.monotonic() + window_seconds
        while time.monotonic() < deadline:
            try:
                data, _ = self.socket.recvfrom(self._buffer)
            except socket.timeout:
                continue
            packet = decode_packet(data)
            if isinstance(packet, NackPacket):
                nacks.append(packet)
        self.transport.finish_round(nacks)
        return nacks

    def unicast_usr(self, pending_user_ids, duplicates=2):
        """Send USR packets to the stragglers."""
        for user_id in pending_user_ids:
            address = self.members.get(user_id)
            if address is None:
                raise TransportError("no address for user %d" % user_id)
            wire = self.transport.usr_packet_for(user_id).encode()
            for _ in range(duplicates):
                self.socket.sendto(wire, address)
                self.packets_sent += 1

    def close(self):
        self.socket.close()


def run_udp_rekey(
    message,
    members_by_user_id=None,
    rho=1.0,
    drop_probability=0.15,
    max_multicast_rounds=None,
    nack_window_seconds=None,
    settle_seconds=0.2,
    seed=0,
    config=None,
):
    """Deliver one rekey message over loopback UDP; returns a report.

    ``members_by_user_id`` optionally maps user IDs to
    :class:`~repro.core.member.GroupMember` objects so the delivery also
    performs real key decryption.  Loss is injected receiver-side at
    ``drop_probability`` (loopback never drops on its own).  The round
    budget and NACK window default from ``config`` (a
    :class:`~repro.core.config.GroupConfig`) when one is given.
    """
    rng = spawn_rng(seed)
    server = ServerEndpoint(
        message,
        rho=rho,
        max_multicast_rounds=max_multicast_rounds,
        config=config,
    )
    max_multicast_rounds = (
        server.transport.unicast_policy.max_multicast_rounds
    )
    if nack_window_seconds is None:
        nack_window_seconds = server.nack_window_seconds
    endpoints = []
    try:
        for user_id in sorted(message.needs_by_user):
            member = (
                members_by_user_id.get(user_id)
                if members_by_user_id
                else None
            )
            endpoint = MemberEndpoint(
                user_id,
                message,
                member=member,
                drop_probability=drop_probability,
                rng=spawn_rng(int(rng.integers(0, 2**31))),
            ).start()
            server.register(endpoint)
            endpoints.append(endpoint)

        rounds = 0
        unicast_users = 0
        while True:
            rounds += 1
            server.run_round()
            time.sleep(settle_seconds)
            for endpoint in endpoints:
                endpoint.end_of_round(server.address)
            server.collect_nacks(window_seconds=nack_window_seconds)
            pending = [e.user_id for e in endpoints if not e.done]
            if not pending:
                break
            if rounds >= max_multicast_rounds:
                unicast_users = len(pending)
                server.unicast_usr(pending, duplicates=3)
                time.sleep(settle_seconds)
                # One more settle pass for slow receivers.
                still = [e.user_id for e in endpoints if not e.done]
                retries = 0
                while still and retries < 10:
                    server.unicast_usr(still, duplicates=3)
                    time.sleep(settle_seconds)
                    still = [e.user_id for e in endpoints if not e.done]
                    retries += 1
                if still:
                    raise TransportError(
                        "UDP delivery incomplete: %r" % (still,)
                    )
                break
        return {
            "rounds": rounds,
            "packets_sent": server.packets_sent,
            "packets_received": sum(e.packets_received for e in endpoints),
            "packets_dropped": sum(e.packets_dropped for e in endpoints),
            "all_done": all(e.done for e in endpoints),
            "unicast_users": unicast_users,
        }
    finally:
        for endpoint in endpoints:
            endpoint.stop()
        server.close()
