"""Real-network endpoints: the protocol over UDP sockets.

Everything else in the repository moves packets through the simulated
topology; this package moves the *same bytes* through actual UDP
sockets (loopback or LAN), using the same
:class:`~repro.transport.server.ServerTransport` /
:class:`~repro.transport.user.UserTransport` state machines.  It exists
to demonstrate that the wire formats and protocol logic are genuinely
deployable, and it powers ``examples/localhost_udp_demo.py``.

IP multicast is emulated by iterating unicast sends to every registered
member (single-host demos rarely have multicast routing); loss is
injected receiver-side since loopback never drops.
"""

from repro.net.endpoints import (
    MemberEndpoint,
    ServerEndpoint,
    run_udp_rekey,
)

__all__ = ["MemberEndpoint", "ServerEndpoint", "run_udp_rekey"]
