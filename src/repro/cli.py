"""Command-line interface: ``python -m repro <command>``.

Three commands:

- ``demo`` — run a small secure group through joins/leaves/rekeys and
  print what happened (the quickest smoke test of an install);
- ``simulate`` — run the fleet transport simulator with the paper's
  workload and print the adaptive-control trajectories;
- ``analyze`` — print the closed-form tables: expected rekey-message
  sizes and the max supportable group size per rekey interval.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reliable group rekeying (SIGCOMM 2001) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a small secure group demo")
    demo.add_argument("--members", type=int, default=16)
    demo.add_argument("--intervals", type=int, default=3)
    demo.add_argument("--lossy", action="store_true")

    simulate = sub.add_parser(
        "simulate", help="run the fleet transport simulator"
    )
    simulate.add_argument("--users", type=int, default=4096)
    simulate.add_argument("--degree", type=int, default=4)
    simulate.add_argument("--k", type=int, default=10)
    simulate.add_argument("--alpha", type=float, default=0.20)
    simulate.add_argument("--rho", type=float, default=1.0)
    simulate.add_argument("--num-nack", type=int, default=20)
    simulate.add_argument("--messages", type=int, default=10)
    simulate.add_argument(
        "--fixed-rho",
        action="store_true",
        help="disable the AdjustRho controller",
    )
    simulate.add_argument("--seed", type=int, default=1)

    analyze = sub.add_parser("analyze", help="print the analytic tables")
    analyze.add_argument("--users", type=int, default=4096)
    analyze.add_argument("--degree", type=int, default=4)
    return parser


def _cmd_demo(args, out):
    from repro import GroupConfig, SecureGroup
    from repro.util import spawn_rng

    rng = spawn_rng(7)
    group = SecureGroup(
        ["member-%d" % i for i in range(args.members)],
        GroupConfig(block_size=5),
    )
    print("created %r" % group, file=out)
    print("group key: %s" % group.server.group_key.fingerprint(), file=out)
    for interval in range(args.intervals):
        group.churn(
            int(rng.integers(1, 4)),
            int(rng.integers(1, 4)),
            rng=rng,
            lossy=args.lossy,
        )
        stats = group.last_delivery_stats
        detail = ""
        if stats is not None:
            detail = " (rounds=%d, NACKs=%d, unicast=%d)" % (
                stats.n_multicast_rounds,
                stats.first_round_nacks,
                stats.unicast.users_served,
            )
        print(
            "interval %d: %d members, key %s%s"
            % (
                interval + 1,
                group.n_members,
                group.server.group_key.fingerprint(),
                detail,
            ),
            file=out,
        )
    agree = all(
        member.group_key == group.server.group_key
        for member in group.members.values()
    )
    print("all members agree on the group key: %s" % agree, file=out)
    locked = all(
        member.group_key != group.server.group_key
        for member in group.former_members.values()
    )
    print("all departed members locked out: %s" % locked, file=out)
    return 0 if agree and locked else 1


def _cmd_simulate(args, out):
    from repro.sim import build_paper_topology
    from repro.transport import FleetConfig, FleetSimulator
    from repro.transport.fleet import make_paper_workload

    workload = make_paper_workload(
        n_users=args.users, degree=args.degree, k=args.k, seed=args.seed
    )
    print(
        "workload: %d ENC packets, %d blocks (k=%d), %d active users"
        % (
            workload.n_enc_packets,
            workload.n_blocks,
            workload.k,
            workload.n_users,
        ),
        file=out,
    )
    topology = build_paper_topology(
        n_users=workload.n_users, alpha=args.alpha, seed=args.seed + 1
    )
    simulator = FleetSimulator(
        topology,
        FleetConfig(
            rho=args.rho,
            num_nack=args.num_nack,
            adapt_rho=not args.fixed_rho,
            multicast_only=True,
        ),
        seed=args.seed + 2,
    )
    sequence = simulator.run_sequence(lambda i: workload, args.messages)
    print("msg |  rho  | NACKs | bw-overhead | rounds", file=out)
    for index in range(sequence.n_messages):
        message = sequence.messages[index]
        print(
            "%3d | %.2f  | %5d | %11.2f | %6d"
            % (
                index,
                sequence.rho_trajectory[index],
                message.first_round_nacks,
                message.bandwidth_overhead,
                message.n_multicast_rounds,
            ),
            file=out,
        )
    print(
        "steady state: NACKs %.1f, overhead %.2f, rounds(all) %.2f"
        % (
            sequence.mean_first_round_nacks(skip=2),
            sequence.mean_bandwidth_overhead(skip=2),
            sequence.mean_rounds_for_all(skip=2),
        ),
        file=out,
    )
    return 0


def _cmd_analyze(args, out):
    from repro.analysis import (
        expected_encryptions_leaves_only,
        max_supported_group_size,
    )

    n_users, degree = args.users, args.degree
    print(
        "expected encryptions per rekey message (N=%d, d=%d, J=0):"
        % (n_users, degree),
        file=out,
    )
    for fraction in (0.05, 0.25, 0.5, 0.75):
        n_leaves = int(n_users * fraction)
        value = expected_encryptions_leaves_only(n_users, degree, n_leaves)
        print("  L = %6d : %10.1f" % (n_leaves, value), file=out)
    print("", file=out)
    print("max supportable group size (25%% churn, d=%d):" % degree, file=out)
    for interval in (1, 10, 60, 300):
        print(
            "  interval %4ds : %d"
            % (interval, max_supported_group_size(interval, degree=degree)),
            file=out,
        )
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "simulate": _cmd_simulate,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
