"""Command-line interface: ``python -m repro <command>``.

The commands:

- ``demo`` — run a small secure group through joins/leaves/rekeys and
  print what happened (the quickest smoke test of an install);
- ``simulate`` — run the fleet transport simulator with the paper's
  workload and print the adaptive-control trajectories;
- ``analyze`` — print the closed-form tables: expected rekey-message
  sizes and the max supportable group size per rekey interval;
- ``serve`` — run the long-lived rekey daemon: churn-driven intervals,
  WAL+snapshot durability (``--state-dir``), crash injection
  (``--crash-at``) and recovery (``--resume``), per-interval metrics,
  and the observability surface (``--metrics-port`` serves
  ``/healthz`` + ``/metrics``; ``--obs-file`` writes the structured
  event stream as JSONL — see ``docs/observability.md``).  With
  ``--role leader|standby`` it runs one half of a hot-standby pair:
  WAL streaming replication over ``--replication-port``/``--peer``,
  lease-based failover, and epoch fencing (see ``docs/ha.md``);
- ``obs-report`` — analyse an ``--obs-file``: headline paper metrics
  and a per-interval time breakdown, from the event stream alone;
- ``chaos-soak`` — run the daemon under a named deterministic fault
  plan and assert the recovery invariants (see ``docs/robustness.md``);
- ``ha-soak`` — run a leader/standby pair under a cluster fault plan
  (``leader-kill``, ``replication-partition``, ``split-brain``) and
  assert the failover invariants (see ``docs/ha.md``);
- ``fleet`` — run the asyncio wire plane end to end: a daemon with the
  ``wire`` backend serving hundreds-to-thousands of UDP loopback
  clients under seeded Gilbert loss, with a digest-pinned summary
  (see ``docs/networking.md``);
- ``wire-chaos-soak`` — run the wire plane under a survivability plan:
  seeded datagram faults, scripted client deaths, or a live-fleet
  leader failover, with digest-pinned invariants (see
  ``docs/robustness.md``);
- ``tenancy-soak`` — run the multi-tenant key service under a tenancy
  abuse plan (noisy-neighbor flash crowd, tenant-WAL corruption, mass
  re-home of ~1k tenants) and assert the isolation invariants (see
  ``docs/tenancy.md``);
- ``bench-perf`` — run the hot-path micro-benchmarks and write a
  ``BENCH_perf.json`` document (see ``docs/performance.md``).

``serve --tenants N`` switches the daemon into multi-tenant mode: N
heterogeneous groups on one deadline-aware scheduler with per-tenant
WAL/snapshot namespacing under ``--state-dir`` (see
``docs/tenancy.md``).

The four digest-pinned soak commands (``chaos-soak``, ``ha-soak``,
``fleet``, ``wire-chaos-soak``, plus ``tenancy-soak``) share one
result protocol and one exit-code contract, implemented by
:func:`run_soak_command`: 0 = all invariants green, 1 = a failure or a
violated invariant, 2 = configuration error, 3 = digest mismatch,
4 = a worker process died.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reliable group rekeying (SIGCOMM 2001) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a small secure group demo")
    demo.add_argument("--members", type=int, default=16)
    demo.add_argument("--intervals", type=int, default=3)
    demo.add_argument("--lossy", action="store_true")

    simulate = sub.add_parser(
        "simulate", help="run the fleet transport simulator"
    )
    simulate.add_argument("--users", type=int, default=4096)
    simulate.add_argument("--degree", type=int, default=4)
    simulate.add_argument("--k", type=int, default=10)
    simulate.add_argument("--alpha", type=float, default=0.20)
    simulate.add_argument("--rho", type=float, default=1.0)
    simulate.add_argument("--num-nack", type=int, default=20)
    simulate.add_argument("--messages", type=int, default=10)
    simulate.add_argument(
        "--fixed-rho",
        action="store_true",
        help="disable the AdjustRho controller",
    )
    simulate.add_argument("--seed", type=int, default=1)

    analyze = sub.add_parser("analyze", help="print the analytic tables")
    analyze.add_argument("--users", type=int, default=4096)
    analyze.add_argument("--degree", type=int, default=4)

    serve = sub.add_parser(
        "serve", help="run the long-running rekey daemon"
    )
    serve.add_argument("--members", type=int, default=64)
    serve.add_argument("--intervals", type=int, default=20)
    serve.add_argument(
        "--churn",
        choices=["poisson", "flash", "trace", "none"],
        default="poisson",
    )
    serve.add_argument("--alpha", type=float, default=0.20)
    serve.add_argument("--trace-file", default=None)
    serve.add_argument(
        "--transport",
        choices=["direct", "sim", "udp", "wire"],
        default="sim",
    )
    serve.add_argument(
        "--engine",
        choices=["python", "numpy", "numba"],
        default="python",
        help="hot-path implementation: the per-object oracle pipeline "
        "(python) or the vectorised array plane (numpy; numba degrades "
        "to numpy when unavailable) — output is bit-identical",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1",
        metavar="HOST",
        help="wire transport: the address the UDP server binds",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="wire transport: the UDP port (0 = ephemeral)",
    )
    serve.add_argument(
        "--interval-seconds",
        type=float,
        default=0.0,
        help="real-time pacing per interval (0 = as fast as possible)",
    )
    serve.add_argument("--deadline-rounds", type=int, default=2)
    serve.add_argument(
        "--deadline-policy", choices=["unicast", "carry"], default="unicast"
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        help="directory for the WAL + snapshots (enables durability)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="recover from --state-dir instead of booting a fresh group",
    )
    serve.add_argument(
        "--crash-at",
        type=int,
        default=None,
        metavar="INTERVAL",
        help="inject a SIGKILL-style crash mid-interval N "
        "(then restart with --resume to exercise recovery)",
    )
    serve.add_argument(
        "--crash-point",
        choices=["mid-requests", "pre-rekey", "post-rekey",
                 "post-delivery", "post-snapshot"],
        default="post-rekey",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the full metrics ledger as JSON at the end",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /healthz and /metrics on this port while running "
        "(0 = pick an ephemeral port; enables observability)",
    )
    serve.add_argument(
        "--obs-file",
        default=None,
        metavar="PATH",
        help="write the structured event stream as JSONL here "
        "(enables observability; analyse with `repro obs-report`)",
    )
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument(
        "--role",
        choices=["standalone", "leader", "standby"],
        default="standalone",
        help="hot-standby role (leader/standby need --state-dir; "
        "see docs/ha.md)",
    )
    serve.add_argument(
        "--node-id",
        default=None,
        help="this node's cluster identity (default: the role name)",
    )
    serve.add_argument(
        "--replication-port",
        type=int,
        default=0,
        metavar="PORT",
        help="leader: accept replication subscribers here "
        "(0 = ephemeral)",
    )
    serve.add_argument(
        "--peer",
        default=None,
        metavar="HOST:PORT",
        help="standby: the leader's replication address",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        help="seconds without renewal before the leader lease lapses",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=None,
        metavar="N",
        help="multi-tenant mode: run N heterogeneous groups on one "
        "deadline scheduler with per-tenant state under --state-dir "
        "(--intervals then counts scheduler ticks; see docs/tenancy.md)",
    )
    serve.add_argument(
        "--tick-budget",
        type=int,
        default=None,
        metavar="COST",
        help="multi-tenant mode: per-tick cost budget for overload "
        "control (default: unlimited)",
    )
    serve.add_argument(
        "--solo-fraction",
        type=float,
        default=0.5,
        help="multi-tenant mode: fraction of the tick budget one "
        "tenant may claim before it is treated as a whale",
    )

    obs_report = sub.add_parser(
        "obs-report",
        help="analyse obs event streams (JSONL files or directories)",
    )
    obs_report.add_argument(
        "paths",
        nargs="*",
        help="JSONL files or stream directories to merge and analyse",
    )
    obs_report.add_argument(
        "--obs-file",
        action="append",
        dest="obs_files",
        default=None,
        metavar="PATH",
        help="additional JSONL stream to merge in (repeatable)",
    )
    obs_report.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="a fleet --obs-dir: assemble per-member recovery "
        "timelines and the per-cohort latency CDF from its streams",
    )

    chaos = sub.add_parser(
        "chaos-soak",
        help="run the daemon under a deterministic fault plan",
    )
    chaos.add_argument(
        "--plan",
        choices=["standard", "io-storm", "storage-corruptor",
                 "feedback-abuse", "unrecoverable"],
        default="standard",
        help="named fault plan (see docs/robustness.md)",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override the plan's designed interval count",
    )
    chaos.add_argument("--members", type=int, default=24)
    chaos.add_argument(
        "--state-dir",
        default=None,
        help="WAL/snapshot directory (default: a fresh temp dir)",
    )
    chaos.add_argument(
        "--obs-file",
        default=None,
        metavar="PATH",
        help="also write the event stream as JSONL (for obs-report)",
    )
    chaos.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="fail unless the run's fault-timeline digest matches",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the soak result as JSON at the end",
    )
    chaos.add_argument(
        "--list-plans",
        action="store_true",
        help="list every named fault plan (single-node and HA) and exit",
    )

    ha = sub.add_parser(
        "ha-soak",
        help="run a leader/standby pair under a cluster fault plan",
    )
    ha.add_argument(
        "--plan",
        choices=["leader-kill", "replication-partition", "split-brain"],
        default="leader-kill",
        help="named cluster fault plan (see docs/ha.md)",
    )
    ha.add_argument("--seed", type=int, default=7)
    ha.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override the plan's designed interval count",
    )
    ha.add_argument("--members", type=int, default=24)
    ha.add_argument(
        "--state-dir",
        default=None,
        help="shared WAL/snapshot/lease directory (default: temp dir)",
    )
    ha.add_argument(
        "--obs-file",
        default=None,
        metavar="PATH",
        help="also write the event stream as JSONL (for obs-report)",
    )
    ha.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="fail unless the run's fault-timeline digest matches",
    )
    ha.add_argument(
        "--json",
        action="store_true",
        help="emit the soak result as JSON at the end",
    )
    ha.add_argument(
        "--list-plans",
        action="store_true",
        help="list the cluster fault plans and exit",
    )

    fleet = sub.add_parser(
        "fleet",
        help="drive a client fleet over real UDP loopback",
    )
    fleet.add_argument(
        "--plan",
        default="smoke",
        help="named fleet plan (see --list-plans; docs/networking.md)",
    )
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument(
        "--clients",
        type=int,
        default=None,
        help="override the plan's client count",
    )
    fleet.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override the plan's interval count",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the plan's worker-process count (0 = in-process)",
    )
    fleet.add_argument(
        "--obs-file",
        default=None,
        metavar="PATH",
        help="also write the event stream as JSONL (for obs-report)",
    )
    fleet.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="collect distributed traces: one line-buffered JSONL "
        "stream per process (server.jsonl + worker-NN.jsonl); "
        "analyse with `repro obs-report --trace-dir DIR`",
    )
    fleet.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="fail unless the run's fleet digest matches",
    )
    fleet.add_argument(
        "--json",
        action="store_true",
        help="emit the fleet result as JSON at the end",
    )
    fleet.add_argument(
        "--list-plans",
        action="store_true",
        help="list every named fleet plan and exit",
    )

    wire_chaos = sub.add_parser(
        "wire-chaos-soak",
        help="run the wire plane under a survivability fault plan",
    )
    wire_chaos.add_argument(
        "--plan",
        default="datagram-storm",
        help="named wire fault plan (see --list-plans; "
        "docs/robustness.md)",
    )
    wire_chaos.add_argument("--seed", type=int, default=7)
    wire_chaos.add_argument(
        "--clients",
        type=int,
        default=None,
        help="override the plan's client count",
    )
    wire_chaos.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override the plan's interval count",
    )
    wire_chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the plan's worker-process count (0 = in-process)",
    )
    wire_chaos.add_argument(
        "--obs-file",
        default=None,
        metavar="PATH",
        help="also write the event stream as JSONL (for obs-report)",
    )
    wire_chaos.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="fail unless the run's wire-timeline digest matches",
    )
    wire_chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the soak result as JSON at the end",
    )
    wire_chaos.add_argument(
        "--list-plans",
        action="store_true",
        help="list every named wire fault plan and exit",
    )

    tenancy = sub.add_parser(
        "tenancy-soak",
        help="run the multi-tenant key service under an abuse plan",
    )
    tenancy.add_argument(
        "--plan",
        choices=["noisy-neighbor", "tenant-wal-corruption", "mass-rehome"],
        default="noisy-neighbor",
        help="named tenancy plan (see --list-plans; docs/tenancy.md)",
    )
    tenancy.add_argument("--seed", type=int, default=7)
    tenancy.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="override the plan's tenant count",
    )
    tenancy.add_argument(
        "--ticks",
        type=int,
        default=None,
        help="override the plan's scheduler tick count",
    )
    tenancy.add_argument(
        "--state-root",
        default=None,
        help="shared storage root for all tenants (default: temp dir)",
    )
    tenancy.add_argument(
        "--obs-file",
        default=None,
        metavar="PATH",
        help="also write the event stream as JSONL (for obs-report)",
    )
    tenancy.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="fail unless the run's tenancy-timeline digest matches",
    )
    tenancy.add_argument(
        "--json",
        action="store_true",
        help="emit the soak result as JSON at the end",
    )
    tenancy.add_argument(
        "--list-plans",
        action="store_true",
        help="list the tenancy plans and exit",
    )

    bench = sub.add_parser(
        "bench-perf", help="run the hot-path perf benchmarks"
    )
    bench.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="quick: CI-sized (N=512); full: paper defaults (N=4096)",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the BENCH_perf.json document here",
    )
    return parser


def _cmd_demo(args, out):
    from repro import GroupConfig, SecureGroup
    from repro.util import spawn_rng

    rng = spawn_rng(7)
    group = SecureGroup(
        ["member-%d" % i for i in range(args.members)],
        GroupConfig(block_size=5),
    )
    print("created %r" % group, file=out)
    print("group key: %s" % group.server.group_key.fingerprint(), file=out)
    for interval in range(args.intervals):
        group.churn(
            int(rng.integers(1, 4)),
            int(rng.integers(1, 4)),
            rng=rng,
            lossy=args.lossy,
        )
        stats = group.last_delivery_stats
        detail = ""
        if stats is not None:
            detail = " (rounds=%d, NACKs=%d, unicast=%d)" % (
                stats.n_multicast_rounds,
                stats.first_round_nacks,
                stats.unicast.users_served,
            )
        print(
            "interval %d: %d members, key %s%s"
            % (
                interval + 1,
                group.n_members,
                group.server.group_key.fingerprint(),
                detail,
            ),
            file=out,
        )
    agree = all(
        member.group_key == group.server.group_key
        for member in group.members.values()
    )
    print("all members agree on the group key: %s" % agree, file=out)
    locked = all(
        member.group_key != group.server.group_key
        for member in group.former_members.values()
    )
    print("all departed members locked out: %s" % locked, file=out)
    return 0 if agree and locked else 1


def _cmd_simulate(args, out):
    from repro.sim import build_paper_topology
    from repro.transport import FleetConfig, FleetSimulator
    from repro.transport.fleet import make_paper_workload

    workload = make_paper_workload(
        n_users=args.users, degree=args.degree, k=args.k, seed=args.seed
    )
    print(
        "workload: %d ENC packets, %d blocks (k=%d), %d active users"
        % (
            workload.n_enc_packets,
            workload.n_blocks,
            workload.k,
            workload.n_users,
        ),
        file=out,
    )
    topology = build_paper_topology(
        n_users=workload.n_users, alpha=args.alpha, seed=args.seed + 1
    )
    simulator = FleetSimulator(
        topology,
        FleetConfig(
            rho=args.rho,
            num_nack=args.num_nack,
            adapt_rho=not args.fixed_rho,
            multicast_only=True,
        ),
        seed=args.seed + 2,
    )
    sequence = simulator.run_sequence(lambda i: workload, args.messages)
    print("msg |  rho  | NACKs | bw-overhead | rounds", file=out)
    for index in range(sequence.n_messages):
        message = sequence.messages[index]
        print(
            "%3d | %.2f  | %5d | %11.2f | %6d"
            % (
                index,
                sequence.rho_trajectory[index],
                message.first_round_nacks,
                message.bandwidth_overhead,
                message.n_multicast_rounds,
            ),
            file=out,
        )
    print(
        "steady state: NACKs %.1f, overhead %.2f, rounds(all) %.2f"
        % (
            sequence.mean_first_round_nacks(skip=2),
            sequence.mean_bandwidth_overhead(skip=2),
            sequence.mean_rounds_for_all(skip=2),
        ),
        file=out,
    )
    return 0


def _cmd_analyze(args, out):
    from repro.analysis import (
        expected_encryptions_leaves_only,
        max_supported_group_size,
    )

    n_users, degree = args.users, args.degree
    print(
        "expected encryptions per rekey message (N=%d, d=%d, J=0):"
        % (n_users, degree),
        file=out,
    )
    for fraction in (0.05, 0.25, 0.5, 0.75):
        n_leaves = int(n_users * fraction)
        value = expected_encryptions_leaves_only(n_users, degree, n_leaves)
        print("  L = %6d : %10.1f" % (n_leaves, value), file=out)
    print("", file=out)
    print("max supportable group size (25%% churn, d=%d):" % degree, file=out)
    for interval in (1, 10, 60, 300):
        print(
            "  interval %4ds : %d"
            % (interval, max_supported_group_size(interval, degree=degree)),
            file=out,
        )
    return 0


def _serve_tenants(args, out):
    """``serve --tenants N``: the multi-group daemon on one scheduler."""
    import tempfile

    from repro.errors import ReproError, ServiceError, TenancyError
    from repro.service import make_backend, make_driver
    from repro.tenancy import MultiGroupDaemon, make_fleet

    if args.role != "standalone":
        print(
            "error: --tenants runs standalone (bulk failover is the "
            "tenancy-soak mass-rehome plan; see docs/tenancy.md)",
            file=out,
        )
        return 2
    if args.metrics_port is not None:
        print("error: --metrics-port is not supported with --tenants",
              file=out)
        return 2
    if args.transport not in ("direct", "sim"):
        print(
            "error: --tenants supports the direct and sim transports",
            file=out,
        )
        return 2
    obs = bus = None
    if args.obs_file is not None:
        from repro.obs import EventBus, Recorder

        bus = EventBus(path=args.obs_file)
        obs = Recorder(bus=bus)
    state_root = args.state_dir or tempfile.mkdtemp(prefix="repro-tenants-")
    try:
        registry = make_fleet(args.tenants, seed=args.seed)
        churn = {
            spec.name: make_driver(
                args.churn, alpha=args.alpha, trace_path=args.trace_file
            )
            for spec in registry
        }
        backend_factory = None
        if args.transport == "sim":
            backend_factory = lambda spec: make_backend(
                "sim", spec.config, seed=spec.config.seed + 1
            )
        common = dict(
            churn=churn,
            budget=args.tick_budget,
            solo_fraction=args.solo_fraction,
            backend_factory=backend_factory,
            obs=obs,
        )
        if args.resume:
            daemon = MultiGroupDaemon.recover_all(state_root, **common)
            print(
                "recovered %d tenant(s) from %s"
                % (len(daemon.registry), state_root),
                file=out,
            )
        else:
            daemon = MultiGroupDaemon.start_new(
                registry, state_root, **common
            )
            print(
                "serving %d tenant group(s) under %s (%s transport, "
                "%s churn%s)"
                % (
                    len(registry),
                    state_root,
                    args.transport,
                    args.churn,
                    ", budget %d/tick" % args.tick_budget
                    if args.tick_budget
                    else "",
                ),
                file=out,
            )
    except (ServiceError, TenancyError, ReproError) as error:
        print("error: %s" % error, file=out)
        if bus is not None:
            bus.close()
        return 2
    try:
        for _ in range(args.intervals):
            plan = daemon.tick()
            print(
                "tick %3d: ran %d, deferred %d, quarantined %d, cost %d"
                % (
                    plan.tick,
                    len(plan.run),
                    len(plan.deferred),
                    len(daemon.quarantined_names()),
                    plan.cost_total,
                ),
                file=out,
            )
    finally:
        daemon.close()
        if bus is not None:
            bus.close()
    health = daemon.health()
    broken = daemon.check_agreement()
    print(
        "health: %s (%d tenants, %d intervals, %d quarantined)"
        % (
            health["status"],
            health["tenants"],
            health["intervals_total"],
            len(health["quarantined"]),
        ),
        file=out,
    )
    if args.json:
        import json

        print(json.dumps(health, indent=2, sort_keys=True), file=out)
    if args.obs_file:
        print("wrote obs events to %s" % args.obs_file, file=out)
    if broken:
        print(
            "key agreement broken in tenant(s): %s" % ", ".join(broken),
            file=out,
        )
        return 1
    return 0


def _cmd_serve(args, out):
    if args.tenants is not None:
        return _serve_tenants(args, out)
    if args.role != "standalone":
        if args.node_id is None:
            args.node_id = args.role
        from repro.ha.cli import run_leader, run_standby

        if args.role == "leader":
            return run_leader(args, out)
        return run_standby(args, out)
    from repro.core.config import GroupConfig
    from repro.errors import ServiceError
    from repro.service import (
        CrashPlan,
        DaemonConfig,
        DaemonCrash,
        RekeyDaemon,
        ServiceMetrics,
        make_backend,
        make_driver,
    )

    config = GroupConfig(block_size=5, seed=args.seed, engine=args.engine)
    service = DaemonConfig(
        state_dir=args.state_dir,
        interval_seconds=args.interval_seconds,
        deadline_rounds=args.deadline_rounds,
        deadline_policy=args.deadline_policy,
        crash_plan=(
            CrashPlan(args.crash_at, args.crash_point)
            if args.crash_at is not None
            else None
        ),
    )
    try:
        backend = make_backend(
            args.transport,
            config,
            seed=args.seed + 1,
            host=args.bind,
            port=args.port,
        )
        churn = make_driver(
            args.churn, alpha=args.alpha, trace_path=args.trace_file
        )
    except ServiceError as error:
        print("error: %s" % error, file=out)
        return 2
    obs = bus = None
    if args.obs_file is not None or args.metrics_port is not None:
        from repro.obs import EventBus, Recorder

        bus = EventBus(path=args.obs_file)
        obs = Recorder(bus=bus)
    if args.resume:
        if not args.state_dir:
            print("--resume needs --state-dir", file=out)
            return 2
        try:
            daemon = RekeyDaemon.recover(
                args.state_dir,
                config=config,
                backend=backend,
                churn=churn,
                service=service,
                seed=args.seed,
                obs=obs,
            )
        except ServiceError as error:
            print("error: %s" % error, file=out)
            return 2
        print(
            "recovered: %d members at interval %d, %d request(s) replayed"
            % (
                daemon.server.n_users,
                daemon.server.intervals_processed,
                daemon.metrics.counters["requests_replayed"],
            ),
            file=out,
        )
    else:
        daemon = RekeyDaemon.start_new(
            ["member-%03d" % i for i in range(args.members)],
            config=config,
            backend=backend,
            churn=churn,
            service=service,
            seed=args.seed,
            obs=obs,
        )
        print(
            "serving a %d-member group (%s transport, %s churn, "
            "%s engine%s)"
            % (
                daemon.server.n_users,
                args.transport,
                args.churn,
                config.engine,
                ", durable" if args.state_dir else "",
            ),
            file=out,
        )
    scrape = None
    if args.metrics_port is not None:
        from repro.obs.httpd import MetricsServer

        scrape = MetricsServer.for_daemon(
            daemon, port=args.metrics_port
        ).start()
        print("metrics: %s/metrics  health: %s/healthz"
              % (scrape.url, scrape.url), file=out)
    print(ServiceMetrics.TABLE_HEADER, file=out)

    def _print_row(record):
        print(ServiceMetrics.format_row(record), file=out)

    exit_code = 0
    try:
        daemon.run(args.intervals, on_interval=_print_row)
    except DaemonCrash as crash:
        print("daemon crashed: %s" % crash, file=out)
        if args.state_dir:
            print(
                "state survives in %s; rerun with --resume to recover"
                % args.state_dir,
                file=out,
            )
        else:
            print(
                "no --state-dir was set: nothing survives this crash",
                file=out,
            )
        exit_code = 0 if args.crash_at is not None else 1
    finally:
        if scrape is not None:
            scrape.stop()
        daemon.close()
        if hasattr(backend, "close"):
            backend.close()
        if bus is not None:
            bus.close()
    health = daemon.health()
    print(
        "health: %s (%d members, %d intervals, %d deadline miss(es))"
        % (
            health["status"],
            health["members"],
            health["intervals_processed"],
            health["deadline_misses"],
        ),
        file=out,
    )
    if args.json:
        print(daemon.metrics.to_json(indent=2), file=out)
    if args.obs_file:
        print("wrote obs events to %s" % args.obs_file, file=out)
    return exit_code


def _cmd_obs_report(args, out):
    from repro.errors import ObsError
    from repro.obs.report import render_report

    paths = list(args.paths)
    if args.obs_files:
        paths.extend(args.obs_files)
    if not paths:
        if args.trace_dir is None:
            print(
                "error: nothing to analyse (give paths, --obs-file, "
                "or --trace-dir)",
                file=out,
            )
            return 2
        # The trace dir's streams double as the report's event input.
        paths = [args.trace_dir]
    try:
        lines = render_report(paths, trace_dir=args.trace_dir)
    except (OSError, ObsError) as error:
        print("error: %s" % error, file=out)
        return 2
    for line in lines:
        print(line, file=out)
    return 0


def _print_plans(names, out):
    from repro.chaos.plans import describe_plans

    for name, description in describe_plans(names):
        print("  %-22s %s" % (name, description), file=out)


def run_soak_command(
    args,
    out,
    label,
    digest_label,
    run,
    error_types,
    list_plans=None,
    summarize=None,
    failure_note=None,
):
    """The shared driver behind every digest-pinned soak command.

    All five runners (``chaos-soak``, ``ha-soak``, ``fleet``,
    ``wire-chaos-soak``, ``tenancy-soak``) speak the same result
    protocol — ``digest`` / ``failure`` / ``ok`` / ``invariants`` /
    ``to_dict()`` — and differ only in how the run is launched and how
    its summary reads.  This helper owns everything else, including the
    exit-code contract:

    - 0 — the run finished and every invariant held;
    - 1 — the run failed outright or violated an invariant;
    - 2 — configuration error (unknown plan, bad arguments);
    - 3 — ``--expect-digest`` did not match the run's digest;
    - 4 — a worker process died (``result.worker_crash``).

    ``run`` launches the soak given a ``log`` callable and returns the
    result; ``error_types`` are the config-error exceptions mapped to
    exit 2; ``list_plans`` handles ``--list-plans``; ``summarize``
    prints the command's headline lines; ``failure_note`` may add
    diagnostics under a FAILED verdict.
    """
    import json

    if getattr(args, "list_plans", False):
        list_plans(out)
        return 0
    try:
        result = run(lambda line: print(line, file=out))
    except error_types as error:
        print("error: %s" % error, file=out)
        return 2
    if summarize is not None:
        summarize(result, out)
    print("%s: %s" % (digest_label, result.digest), file=out)
    if getattr(args, "json", False):
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True),
              file=out)
    if getattr(args, "obs_file", None):
        print("wrote obs events to %s" % args.obs_file, file=out)
    if getattr(args, "obs_dir", None):
        print("wrote trace streams to %s" % args.obs_dir, file=out)
    if args.expect_digest and args.expect_digest != result.digest:
        print(
            "digest mismatch: expected %s" % args.expect_digest, file=out
        )
        return 3
    if result.failure is not None:
        print("%s: FAILED: %s" % (label, result.failure), file=out)
        if failure_note is not None:
            failure_note(result, out)
        # A dead worker process is a different diagnosis than a missed
        # invariant — give operators (and CI) a distinct exit code.
        return 4 if getattr(result, "worker_crash", False) else 1
    if not result.ok:
        failed = sorted(
            name for name, passed in result.invariants.items() if not passed
        )
        print(
            "%s: invariant(s) violated: %s" % (label, ", ".join(failed)),
            file=out,
        )
        return 1
    print("%s: all invariants green" % label, file=out)
    return 0


def _cmd_chaos_soak(args, out):
    from repro.chaos import run_soak
    from repro.errors import ChaosError

    def list_plans(out):
        from repro.chaos.plans import HA_PLAN_NAMES, PLAN_NAMES

        print("single-node plans (chaos-soak):", file=out)
        _print_plans(PLAN_NAMES, out)
        print("cluster plans (ha-soak):", file=out)
        _print_plans(HA_PLAN_NAMES, out)

    def summarize(result, out):
        print(
            "chaos-soak: %d fault(s) injected, %d restart(s), "
            "%d/%d interval(s)"
            % (
                result.faults_injected,
                result.restarts,
                result.intervals_completed,
                result.intervals_target,
            ),
            file=out,
        )

    def failure_note(result, out):
        if not result.expect_recoverable:
            print(
                "(plan %r is deliberately unrecoverable; the diagnostic "
                "above is its expected outcome)" % result.plan,
                file=out,
            )

    return run_soak_command(
        args,
        out,
        label="chaos-soak",
        digest_label="fault-timeline digest",
        run=lambda log: run_soak(
            plan=args.plan,
            seed=args.seed,
            intervals=args.intervals,
            members=args.members,
            state_dir=args.state_dir,
            obs_path=args.obs_file,
            log=log,
        ),
        error_types=(ChaosError,),
        list_plans=list_plans,
        summarize=summarize,
        failure_note=failure_note,
    )


def _cmd_ha_soak(args, out):
    from repro.errors import ChaosError
    from repro.ha.soak import run_ha_soak

    def list_plans(out):
        from repro.chaos.plans import HA_PLAN_NAMES

        print("cluster plans (ha-soak):", file=out)
        _print_plans(HA_PLAN_NAMES, out)

    def summarize(result, out):
        print(
            "ha-soak: %d fault(s) injected, %d promotion(s), "
            "final epoch %d, %d/%d interval(s)"
            % (
                result.faults_injected,
                result.promotions,
                result.final_epoch,
                result.intervals_completed,
                result.intervals_target,
            ),
            file=out,
        )

    return run_soak_command(
        args,
        out,
        label="ha-soak",
        digest_label="fault-timeline digest",
        run=lambda log: run_ha_soak(
            plan=args.plan,
            seed=args.seed,
            intervals=args.intervals,
            members=args.members,
            state_dir=args.state_dir,
            obs_path=args.obs_file,
            log=log,
        ),
        error_types=(ChaosError,),
        list_plans=list_plans,
        summarize=summarize,
    )


def _cmd_fleet(args, out):
    from repro.errors import WireError
    from repro.wire.fleet import FLEET_PLANS, run_fleet

    def list_plans(out):
        for name, plan in FLEET_PLANS.items():
            print("  %-22s %s" % (name, plan.description), file=out)

    def summarize(result, out):
        print(
            "fleet: %d client(s)%s, %d/%d interval(s)"
            % (
                result.clients,
                " on %d workers" % result.workers if result.workers else "",
                result.intervals_completed,
                result.intervals_target,
            ),
            file=out,
        )
        for cohort in sorted(result.cohorts):
            stats = result.cohorts[cohort]
            print(
                "  cohort %-5s %4d report(s): recovery p50/p90/p99 "
                "%.1f/%.1f/%.1f ms, rounds %.2f, unicast %d, dropped %d"
                % (
                    cohort,
                    stats["reports"],
                    stats["recovery_ms"]["p50"],
                    stats["recovery_ms"]["p90"],
                    stats["recovery_ms"]["p99"],
                    stats["rounds_mean"],
                    stats["unicast"],
                    stats["dropped"],
                ),
                file=out,
            )

    return run_soak_command(
        args,
        out,
        label="fleet",
        digest_label="fleet digest",
        run=lambda log: run_fleet(
            plan=args.plan,
            seed=args.seed,
            clients=args.clients,
            intervals=args.intervals,
            workers=args.workers,
            obs_path=args.obs_file,
            obs_dir=args.obs_dir,
            log=log,
        ),
        error_types=(WireError,),
        list_plans=list_plans,
        summarize=summarize,
    )


def _cmd_wire_chaos_soak(args, out):
    from repro.errors import ChaosError, WireError
    from repro.wire.chaos import run_wire_chaos_soak

    def list_plans(out):
        from repro.chaos.wire_faults import describe_wire_plans

        print("wire fault plans (wire-chaos-soak):", file=out)
        for name, description in describe_wire_plans():
            print("  %-22s %s" % (name, description), file=out)

    def summarize(result, out):
        print(
            "wire-chaos-soak: %d fault(s) applied, %d eviction(s), "
            "%d promotion(s), %d/%d interval(s)"
            % (
                sum(result.faults_applied.values()),
                result.evictions,
                result.promotions,
                result.intervals_completed,
                result.intervals_target,
            ),
            file=out,
        )

    return run_soak_command(
        args,
        out,
        label="wire-chaos-soak",
        digest_label="wire-timeline digest",
        run=lambda log: run_wire_chaos_soak(
            plan=args.plan,
            seed=args.seed,
            clients=args.clients,
            intervals=args.intervals,
            workers=args.workers,
            obs_path=args.obs_file,
            log=log,
        ),
        error_types=(ChaosError, WireError),
        list_plans=list_plans,
        summarize=summarize,
    )


def _cmd_tenancy_soak(args, out):
    from repro.errors import ChaosError, TenancyError
    from repro.tenancy import run_tenancy_soak

    def list_plans(out):
        from repro.tenancy.soak import (
            TENANCY_PLAN_DESCRIPTIONS,
            TENANCY_PLAN_NAMES,
        )

        print("tenancy plans (tenancy-soak):", file=out)
        for name in TENANCY_PLAN_NAMES:
            print(
                "  %-22s %s" % (name, TENANCY_PLAN_DESCRIPTIONS[name]),
                file=out,
            )

    def summarize(result, out):
        print(
            "tenancy-soak: %d tenant(s), %d/%d tick(s), %d interval(s), "
            "%d shed, %d quarantine(s), %d promotion(s)"
            % (
                result.tenants,
                result.ticks_completed,
                result.ticks_target,
                result.intervals_total,
                result.shed_total,
                result.quarantines,
                result.promotions,
            ),
            file=out,
        )
        if result.rehomed:
            print(
                "  re-homed %d tenant(s) under epoch %d "
                "(%d digest(s) verified, %d request(s) replayed)"
                % (
                    result.rehomed,
                    result.final_epoch,
                    result.digests_verified,
                    result.requests_replayed,
                ),
                file=out,
            )

    return run_soak_command(
        args,
        out,
        label="tenancy-soak",
        digest_label="tenancy-timeline digest",
        run=lambda log: run_tenancy_soak(
            plan=args.plan,
            seed=args.seed,
            tenants=args.tenants,
            ticks=args.ticks,
            state_root=args.state_root,
            obs_path=args.obs_file,
            log=log,
        ),
        error_types=(ChaosError, TenancyError),
        list_plans=list_plans,
        summarize=summarize,
    )


def _cmd_bench_perf(args, out):
    import json

    from repro.perf import format_table, run_suite

    document = run_suite(
        args.scale,
        progress=lambda name: print("running %s ..." % name, file=out),
    )
    for line in format_table(document):
        print(line, file=out)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output, file=out)
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "simulate": _cmd_simulate,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "obs-report": _cmd_obs_report,
        "chaos-soak": _cmd_chaos_soak,
        "ha-soak": _cmd_ha_soak,
        "fleet": _cmd_fleet,
        "wire-chaos-soak": _cmd_wire_chaos_soak,
        "tenancy-soak": _cmd_tenancy_soak,
        "bench-perf": _cmd_bench_perf,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
