"""Block partitioning of ENC packets for FEC (§5.1).

The key server sorts ENC packets in generation order and cuts them into
blocks of size ``k``; the last block is topped up by *duplicating* its
own packets (flagged, so receivers use them for FEC decoding but not for
block-ID estimation).  Packets are multicast in a block-interleaved
order so consecutive packets of one block are separated in time and are
less likely to fall into the same burst-loss period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class BlockSlot:
    """Position of one ENC packet copy: block, sequence, source index.

    ``plan_index`` points at the underlying ENC packet (several slots may
    share it when the last block was padded by duplication).
    """

    block_id: int
    seq_in_block: int
    plan_index: int
    is_duplicate: bool = False


class BlockPartition:
    """Partition of ``n_packets`` ENC packets into blocks of size ``k``."""

    def __init__(self, n_packets, k):
        check_positive("n_packets", n_packets, integral=True)
        check_positive("block size k", k, integral=True)
        self.n_packets = int(n_packets)
        self.k = int(k)
        self.n_blocks = -(-self.n_packets // self.k)
        self._slots = self._build()

    def _build(self):
        slots = []
        for block_id in range(self.n_blocks):
            first = block_id * self.k
            for seq in range(self.k):
                source = first + seq
                if source < self.n_packets:
                    slots.append(
                        BlockSlot(
                            block_id=block_id,
                            seq_in_block=seq,
                            plan_index=source,
                        )
                    )
                else:
                    # Last block: duplicate its own packets cyclically.
                    remainder = self.n_packets - first
                    slots.append(
                        BlockSlot(
                            block_id=block_id,
                            seq_in_block=seq,
                            plan_index=first + (source - first) % remainder,
                            is_duplicate=True,
                        )
                    )
        return slots

    @property
    def slots(self):
        """All ENC slots, block-major order (block 0 seq 0, 1, ...)."""
        return list(self._slots)

    @property
    def n_duplicates(self):
        """ENC packet copies added to pad the last block."""
        return sum(1 for slot in self._slots if slot.is_duplicate)

    @property
    def n_enc_slots(self):
        """Total ENC slots actually multicast: ``n_blocks * k``."""
        return self.n_blocks * self.k

    def block_of_packet(self, plan_index):
        """Block ID holding the *original* copy of ``plan_index``."""
        if not 0 <= plan_index < self.n_packets:
            raise ConfigurationError(
                "plan_index %d out of range" % plan_index
            )
        return plan_index // self.k

    def seq_of_packet(self, plan_index):
        """Sequence number of the original copy of ``plan_index``."""
        if not 0 <= plan_index < self.n_packets:
            raise ConfigurationError(
                "plan_index %d out of range" % plan_index
            )
        return plan_index % self.k

    def packets_in_block(self, block_id):
        """Slots belonging to ``block_id``."""
        if not 0 <= block_id < self.n_blocks:
            raise ConfigurationError("block_id %d out of range" % block_id)
        return [s for s in self._slots if s.block_id == block_id]


def interleaved_order(n_blocks, per_block):
    """Send order interleaving blocks: (b0,s0), (b1,s0), ..., (b0,s1), ...

    ``per_block`` is the number of packets each block contributes this
    round (``k`` ENC + proactive parity in round 1; ``amax[i]`` may vary
    per block in later rounds, in which case pass the maximum and filter).
    Yields ``(block_id, slot_index)`` pairs.
    """
    check_positive("n_blocks", n_blocks, integral=True)
    if per_block < 0:
        raise ConfigurationError("per_block must be >= 0")
    for slot_index in range(per_block):
        for block_id in range(n_blocks):
            yield (block_id, slot_index)
