"""Block-ID estimation (Appendix D).

A user that lost its specific ENC packet does not directly know which
block that packet belongs to, so it cannot name the block in its NACK.
But every *received* ENC packet carries ``<frmID, toID>``, a block ID and
a sequence number, and UKA guarantees the ID intervals of consecutive
packets are disjoint and increasing — so each received packet tightens a
lower or upper bound on the lost packet's block.

With user ID ``m`` and the lost packet at ``<block i, seq j>``:

- receiving any packet in ``{<i-1, k-1>, <i, 0> .. <i, j-1>}`` fixes the
  lower bound at ``i``;
- receiving any packet in ``{<i, j+1> .. <i, k-1>, <i+1, 0>}`` fixes the
  upper bound at ``i``;
- step 6 of the algorithm bounds the block range from ``maxKID`` alone,
  so the range is finite even in the worst case.

Failure to pin the exact block has probability
``p^(j+2) + p^(k-j+1) - p^(k+2)`` under independent loss at rate ``p``
(verified in bench E20); the user then NACKs every block in its range.

Duplicated last-block packets are ignored: their ``<frm, to>`` intervals
break monotonicity (the paper flags them for exactly this reason).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive


class BlockIdEstimator:
    """Running ``[low, high]`` bounds on the block a user must NACK."""

    def __init__(self, user_id, k, degree):
        check_non_negative("user_id", user_id, integral=True)
        check_positive("k", k, integral=True)
        check_positive("degree", degree, integral=True)
        self.user_id = int(user_id)
        self.k = int(k)
        self.degree = int(degree)
        self.low = 0
        self.high = math.inf
        self._exact = False

    @property
    def determined(self):
        """True when the bounds have collapsed to a single block."""
        return self.low == self.high

    def blocks_to_request(self, n_blocks=None):
        """The block IDs a NACK must cover (clipped to ``n_blocks``)."""
        high = self.high
        if high is math.inf:
            if n_blocks is None:
                raise ConfigurationError(
                    "upper bound is unbounded; pass n_blocks to clip"
                )
            high = n_blocks - 1
        if n_blocks is not None:
            high = min(high, n_blocks - 1)
        return list(range(self.low, int(high) + 1))

    def observe(self, packet):
        """Tighten the bounds from one received ENC packet.

        ``packet`` needs attributes ``frm_id``, ``to_id``, ``block_id``,
        ``seq_in_block``, ``max_kid`` and ``is_duplicate`` (an
        :class:`~repro.rekey.packets.EncPacket` or a plan-level stand-in).
        """
        if getattr(packet, "is_duplicate", False):
            return
        m = self.user_id
        blk = packet.block_id
        seq = packet.seq_in_block
        if packet.frm_id <= m <= packet.to_id:
            self.low = self.high = blk
            self._exact = True
            return
        if self._exact:
            return
        if m > packet.to_id:
            # The lost packet was generated after this one.
            if seq == self.k - 1:
                self.low = max(self.low, blk + 1)
            else:
                self.low = max(self.low, blk)
            # Step 6: bound from maxKID — at most d*(maxKID+1) user IDs
            # exist, so at most that many further ENC packets can follow.
            remaining_users = (
                self.degree * (packet.max_kid + 1) - packet.to_id
            )
            bound = blk + math.ceil(
                (remaining_users - (self.k - 1 - seq)) / self.k
            )
            self.high = min(self.high, bound)
        elif m < packet.frm_id:
            # The lost packet was generated before this one.
            if seq == 0:
                self.high = min(self.high, blk - 1)
            else:
                self.high = min(self.high, blk)
        if self.high < self.low:
            # Bounds crossed: can only happen on inconsistent input.
            raise ConfigurationError(
                "block-ID bounds crossed (low=%r, high=%r)"
                % (self.low, self.high)
            )

    def __repr__(self):
        return "BlockIdEstimator(user=%d, low=%r, high=%r)" % (
            self.user_id,
            self.low,
            self.high,
        )


def estimation_failure_probability(p, k, j):
    """Analytic failure probability ``p^(j+2) + p^(k-j+1) - p^(k+2)``.

    The user fails to pin the exact block only if all packets in the
    lower witness set (j+1 packets, plus its own) or all in the upper
    witness set are lost, under independent loss at rate ``p``.
    """
    from repro.util.validation import check_probability

    check_probability("p", p)
    check_positive("k", k, integral=True)
    check_non_negative("j", j, integral=True)
    if j >= k:
        raise ConfigurationError("sequence j must be < k")
    return p ** (j + 2) + p ** (k - j + 1) - p ** (k + 2)
