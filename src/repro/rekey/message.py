"""End-to-end rekey-message construction.

:class:`RekeyMessageBuilder` chains the pieces: marking output →
UKA packing → block partition → (optionally) real wire packets with
toy-cipher ciphertexts, RSE parity, and a signature.

A :class:`RekeyMessage` exists in one of two modes:

- **plan mode** (keyless tree): packet counts, ID intervals, block
  structure and per-user needs only — the workload abstraction consumed
  by the vectorised fleet simulator and the workload benches;
- **wire mode** (keyed tree): additionally carries byte-exact ENC
  packets, generates PARITY packets on demand (incrementally, per
  round), builds per-user USR packets, and signs the message.
"""

from __future__ import annotations

import struct

from repro.crypto.cipher import XorStreamCipher
from repro.errors import ConfigurationError, TransportError
from repro.fec.rse import make_coder
from repro.obs.recorder import NULL
from repro.rekey.assignment import UserOrientedKeyAssignment
from repro.rekey.blocks import BlockPartition
from repro.rekey.packets import (
    DEFAULT_ENC_PACKET_SIZE,
    EncPacket,
    FEC_PAYLOAD_OFFSET,
    ParityPacket,
    UsrPacket,
)
from repro.util.validation import check_non_negative, check_positive


class RekeyMessage:
    """One rekey interval's message: plans, blocks, optional wire bytes."""

    def __init__(
        self,
        message_id,
        assignment,
        partition,
        needs_by_user,
        max_kid,
        k,
        packet_size,
        encryption_map=None,
        signature=None,
        coder_kind="matrix",
        obs=None,
    ):
        self.message_id = message_id
        #: observability recorder, propagated to the FEC coder
        self.obs = obs if obs is not None else NULL
        self.assignment = assignment
        self.partition = partition
        self.needs_by_user = needs_by_user
        self.max_kid = max_kid
        self.k = k
        self.packet_size = packet_size
        #: encryption ID -> EncryptedKey (wire mode only)
        self.encryption_map = encryption_map
        self.signature = signature
        self.coder_kind = coder_kind
        #: When True, parity rows are generated for *all* blocks in one
        #: stacked GF(256) kernel call and served from a cache, instead
        #: of one ``coder.parity`` call per block per round.  Rows are
        #: byte-identical either way (``tests/fec`` pins the stacked
        #: kernel to the per-block loop); the non-array engine keeps the
        #: per-block path so the oracle exercises the reference shape.
        self.batch_parity = False
        self._enc_packets = None
        self._slot_wires = None
        self._coders = {}
        #: per-block list of generated parity rows; all blocks always
        #: hold the *same* number of rows (every fill raises every block
        #: to one common target), which is what lets one fused call
        #: serve mixed per-block requests.
        self._parity_rows = None

    # -- plan-level accessors --------------------------------------------

    @property
    def is_empty(self):
        """True when the batch changed nothing (no packets to send)."""
        return self.assignment is None or self.assignment.n_packets == 0

    @property
    def n_enc_packets(self):
        """Distinct ENC packets produced by UKA."""
        return 0 if self.is_empty else self.assignment.n_packets

    @property
    def n_blocks(self):
        return 0 if self.is_empty else self.partition.n_blocks

    @property
    def plans(self):
        return [] if self.is_empty else self.assignment.plans

    @property
    def materialized(self):
        """True in wire mode (real ciphertexts available)."""
        return self.encryption_map is not None

    def plan_for_user(self, user_id):
        """The ENC packet plan covering ``user_id`` (None if unneeded)."""
        if self.is_empty:
            return None
        return self.assignment.plan_for_user(user_id)

    def block_of_user(self, user_id):
        """Block ID of the user's specific ENC packet."""
        plan = self.plan_for_user(user_id)
        if plan is None:
            return None
        return self.partition.block_of_packet(plan.index)

    # -- wire-level accessors ----------------------------------------------

    def _require_wire(self):
        if not self.materialized:
            raise TransportError(
                "message %d was built in plan mode; no wire bytes"
                % self.message_id
            )

    def enc_packet(self, plan_index, block_id, seq_in_block, is_duplicate):
        """Materialise the ENC packet for one block slot."""
        self._require_wire()
        plan = self.assignment.plans[plan_index]
        return EncPacket(
            rekey_message_id=self.message_id,
            block_id=block_id,
            seq_in_block=seq_in_block,
            max_kid=self.max_kid,
            frm_id=plan.frm_id,
            to_id=plan.to_id,
            encryptions=tuple(
                self.encryption_map[e] for e in plan.encryption_ids
            ),
            is_duplicate=is_duplicate,
        )

    def enc_packets(self):
        """All ENC packets in block-major slot order (cached)."""
        self._require_wire()
        if self._enc_packets is None:
            self._enc_packets = [
                self.enc_packet(
                    slot.plan_index,
                    slot.block_id,
                    slot.seq_in_block,
                    slot.is_duplicate,
                )
                for slot in self.partition.slots
            ]
        return self._enc_packets

    def _wires(self):
        if self._slot_wires is None:
            self._slot_wires = [
                packet.encode(self.packet_size)
                for packet in self.enc_packets()
            ]
        return self._slot_wires

    def _coder(self):
        coder = self._coders.get(self.k)
        if coder is None:
            coder = make_coder(self.coder_kind, self.k, obs=self.obs)
            self._coders[self.k] = coder
        return coder

    def block_payloads(self, block_id):
        """The ``k`` FEC data payloads of ``block_id`` (bytes beyond the
        identification prefix of each ENC slot)."""
        self._require_wire()
        if not 0 <= block_id < self.n_blocks:
            raise ConfigurationError("block_id %d out of range" % block_id)
        wires = self._wires()
        first = block_id * self.k
        return [
            wires[first + seq][FEC_PAYLOAD_OFFSET:] for seq in range(self.k)
        ]

    def _ensure_parity_rows(self, target):
        """Grow the batched parity cache so every block has ``target`` rows.

        One :meth:`~repro.fec.rse.RSECoder.parity_blocks` call encodes
        the missing rows of *all* blocks at once — the stacked kernel
        fuses the whole interval's FEC work.  Because every fill raises
        every block to the same target, the cache stays uniform and
        ``first_parity_index`` bookkeeping per block is just an index.
        """
        if self._parity_rows is None:
            self._parity_rows = [[] for _ in range(self.n_blocks)]
        have = len(self._parity_rows[0]) if self._parity_rows else 0
        if target <= have:
            return
        fresh = self._coder().parity_blocks(
            [self.block_payloads(b) for b in range(self.n_blocks)],
            target - have,
            first_parity_index=have,
        )
        for block_id, rows in enumerate(fresh):
            self._parity_rows[block_id].extend(rows)

    def parity_packets(self, block_id, n_parity, first_parity_index=0):
        """Generate ``n_parity`` new PARITY packets for ``block_id``.

        ``first_parity_index`` continues the parity row space across
        rounds so retransmitted parity is always novel.
        """
        self._require_wire()
        check_non_negative("n_parity", n_parity, integral=True)
        if self.batch_parity:
            self._ensure_parity_rows(first_parity_index + n_parity)
            parity = self._parity_rows[block_id][
                first_parity_index : first_parity_index + n_parity
            ]
        else:
            parity = self._coder().parity(
                self.block_payloads(block_id),
                n_parity,
                first_parity_index=first_parity_index,
            )
        if self.obs.enabled:
            self.obs.emit(
                "fec_encode",
                message_id=self.message_id,
                block_id=block_id,
                n_parity=int(n_parity),
                first_parity_index=int(first_parity_index),
            )
        return [
            ParityPacket(
                rekey_message_id=self.message_id,
                block_id=block_id,
                seq_in_block=self.k + first_parity_index + row,
                payload=parity[row],
            )
            for row in range(n_parity)
        ]

    def usr_packet(self, user_id):
        """Build the unicast USR packet for ``user_id``."""
        self._require_wire()
        wanted = self.needs_by_user.get(user_id)
        if not wanted:
            raise TransportError(
                "user %d needs no encryptions this interval" % user_id
            )
        return UsrPacket(
            rekey_message_id=self.message_id,
            user_id=user_id,
            encryptions=tuple(self.encryption_map[e] for e in wanted),
        )

    @staticmethod
    def rebuild_enc_packet(message_id, block_id, seq_in_block, payload):
        """Reconstruct an ENC packet from an FEC-recovered payload."""
        header = struct.pack(
            ">BBB",
            (0 << 6) | message_id,  # PacketType.ENC == 0
            block_id,
            seq_in_block,
        )
        return EncPacket.decode(header + payload)

    def __repr__(self):
        return "RekeyMessage(id=%d, enc=%d, blocks=%d, k=%d, %s)" % (
            self.message_id,
            self.n_enc_packets,
            self.n_blocks,
            self.k,
            "wire" if self.materialized else "plan",
        )


class RekeyMessageBuilder:
    """Builds :class:`RekeyMessage` objects from marking results."""

    def __init__(
        self,
        packet_size=DEFAULT_ENC_PACKET_SIZE,
        block_size=10,
        cipher=None,
        signer=None,
        coder_kind="matrix",
        obs=None,
        engine="python",
    ):
        check_positive("packet_size", packet_size, integral=True)
        check_positive("block_size", block_size, integral=True)
        self.packet_size = packet_size
        self.block_size = block_size
        self.cipher = cipher or XorStreamCipher()
        self.signer = signer
        self.coder_kind = coder_kind
        self.obs = obs if obs is not None else NULL
        #: non-python engines get messages whose parity generation is
        #: batched across blocks (RekeyMessage.batch_parity)
        self.engine = engine
        self._assigner = UserOrientedKeyAssignment(packet_size=packet_size)

    def build(self, batch_result, message_id):
        """Construct the rekey message for one batch.

        Wire mode is used when the batch's tree carries key material;
        otherwise the message is plan-only.
        """
        if not 0 <= message_id <= 0x3F:
            raise ConfigurationError(
                "message_id must fit the 6-bit field, got %r" % message_id
            )
        with self.obs.span("message.build", message_id=message_id):
            message = self._build(batch_result, message_id)
        message.batch_parity = self.engine != "python"
        return message

    def _build(self, batch_result, message_id):
        needs = batch_result.needs_by_user()
        max_kid = max(batch_result.max_knode_id, 0)
        if not needs:
            return RekeyMessage(
                message_id=message_id,
                assignment=None,
                partition=None,
                needs_by_user={},
                max_kid=max_kid,
                k=self.block_size,
                packet_size=self.packet_size,
                coder_kind=self.coder_kind,
                obs=self.obs,
            )
        with self.obs.span("message.assign"):
            assignment = self._assigner.assign(needs)
        partition = BlockPartition(assignment.n_packets, self.block_size)
        encryption_map = None
        signature = None
        tree = batch_result.tree
        if not tree.keyless:
            encryption_map = {}
            with self.obs.span(
                "message.encrypt",
                n_encryptions=len(batch_result.subtree.edges),
            ):
                for edge in batch_result.subtree.edges:
                    encryption_map[edge.child_id] = self.cipher.encrypt_key(
                        tree.key_of(edge.parent_id),
                        tree.key_of(edge.child_id),
                        encryption_id=edge.child_id,
                    )
            if self.signer is not None:
                digest_input = b"".join(
                    encryption_map[e].ciphertext
                    for e in sorted(encryption_map)
                )
                with self.obs.span("message.sign"):
                    signature = self.signer.sign(digest_input)
        return RekeyMessage(
            message_id=message_id,
            assignment=assignment,
            partition=partition,
            needs_by_user=needs,
            max_kid=max_kid,
            k=self.block_size,
            packet_size=self.packet_size,
            encryption_map=encryption_map,
            signature=signature,
            coder_kind=self.coder_kind,
            obs=self.obs,
        )
