"""Wire formats of the four protocol packet types (Appendix A).

Layouts follow the companion text's field lists; sizes are chosen so the
paper's packet-capacity arithmetic holds exactly: a 1027-byte ENC packet
carries 46 ``<encryption, ID>`` pairs of 22 bytes each
(``(1027 - 12) // 22 == 46``), the figure the paper uses for its
duplication-overhead bound.

Deviations from the byte-exact 2001 format, kept deliberately small:

- the 2-bit type and 6-bit rekey-message ID share one byte, as in the
  paper;
- one *flags* byte is added to ENC packets to carry the "duplicate of
  the last block" bit that the paper describes in a footnote;
- USR packets always carry encryption IDs (the paper makes them
  optional), costing 2 bytes per entry;
- NACK packets carry the sender's user ID explicitly (on a real network
  it would come from the UDP source address).

FEC protects ENC-packet bytes from :data:`FEC_PAYLOAD_OFFSET` onward
(the paper's "fields 5 to 8"): the identification prefix
(type / message / block / sequence) stays in the clear on PARITY
packets so receivers can index them without decoding.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.crypto.cipher import EncryptedKey
from repro.errors import PacketDecodeError, PacketError

#: Total size, in bytes, of an ENC or PARITY packet (paper default).
DEFAULT_ENC_PACKET_SIZE = 1027

#: Wire size of one <encryption ID, ciphertext> pair: 2 + (16 + 4).
ENCRYPTION_ENTRY_SIZE = 22

#: ENC header: type/msg, block, seq, flags, maxKID(2), frm(2), to(2), count(2).
ENC_HEADER_SIZE = 12

#: First byte of an ENC packet covered by FEC (after type/msg/block/seq).
FEC_PAYLOAD_OFFSET = 3

_MAX_U16 = 0xFFFF
_CIPHERTEXT_SIZE = 20


class PacketType(enum.IntEnum):
    """The 2-bit packet type carried in every packet's first byte."""

    ENC = 0
    PARITY = 1
    USR = 2
    NACK = 3


def enc_packet_capacity(packet_size=DEFAULT_ENC_PACKET_SIZE):
    """Number of encryptions one ENC packet of ``packet_size`` holds."""
    capacity = (packet_size - ENC_HEADER_SIZE) // ENCRYPTION_ENTRY_SIZE
    if capacity < 1:
        raise PacketError(
            "packet size %d cannot hold any encryption" % packet_size
        )
    return capacity


def _check_u16(name, value):
    if not 0 <= value <= _MAX_U16:
        raise PacketError("%s=%r does not fit in 16 bits" % (name, value))
    return value


def _check_u8(name, value):
    if not 0 <= value <= 0xFF:
        raise PacketError("%s=%r does not fit in 8 bits" % (name, value))
    return value


def _pack_type_byte(packet_type, rekey_message_id):
    if not 0 <= rekey_message_id <= 0x3F:
        raise PacketError(
            "rekey message ID %r does not fit in 6 bits" % rekey_message_id
        )
    return (int(packet_type) << 6) | rekey_message_id


def _unpack_type_byte(byte):
    return PacketType(byte >> 6), byte & 0x3F


@dataclass(frozen=True)
class EncPacket:
    """An ENC packet: the encryptions for users in [frm_id, to_id]."""

    rekey_message_id: int
    block_id: int
    seq_in_block: int
    max_kid: int
    frm_id: int
    to_id: int
    encryptions: tuple
    is_duplicate: bool = False

    def __post_init__(self):
        _check_u8("block_id", self.block_id)
        _check_u8("seq_in_block", self.seq_in_block)
        _check_u16("max_kid", self.max_kid)
        _check_u16("frm_id", self.frm_id)
        _check_u16("to_id", self.to_id)
        if self.frm_id > self.to_id:
            raise PacketError(
                "frm_id %d > to_id %d" % (self.frm_id, self.to_id)
            )
        for encryption in self.encryptions:
            if not isinstance(encryption, EncryptedKey):
                raise PacketError("encryptions must be EncryptedKey objects")
            _check_u16("encryption ID", encryption.encryption_id)
            if encryption.encryption_id == 0:
                raise PacketError("encryption ID 0 is reserved for padding")
            if len(encryption.ciphertext) != _CIPHERTEXT_SIZE:
                raise PacketError(
                    "ciphertext must be %d bytes, got %d"
                    % (_CIPHERTEXT_SIZE, len(encryption.ciphertext))
                )

    @property
    def packet_type(self):
        return PacketType.ENC

    def covers_user(self, user_id):
        """True iff this packet carries the encryptions of ``user_id``."""
        return self.frm_id <= user_id <= self.to_id

    def encryptions_for(self, wanted_ids):
        """The subset of carried encryptions whose IDs are in ``wanted_ids``."""
        wanted = set(wanted_ids)
        return [e for e in self.encryptions if e.encryption_id in wanted]

    def encode(self, packet_size=DEFAULT_ENC_PACKET_SIZE):
        """Serialise to exactly ``packet_size`` bytes (zero padding)."""
        if len(self.encryptions) > enc_packet_capacity(packet_size):
            raise PacketError(
                "%d encryptions exceed capacity %d"
                % (len(self.encryptions), enc_packet_capacity(packet_size))
            )
        header = struct.pack(
            ">BBBBHHHH",
            _pack_type_byte(PacketType.ENC, self.rekey_message_id),
            self.block_id,
            self.seq_in_block,
            1 if self.is_duplicate else 0,
            self.max_kid,
            self.frm_id,
            self.to_id,
            len(self.encryptions),
        )
        body = b"".join(
            struct.pack(">H", e.encryption_id) + e.ciphertext
            for e in self.encryptions
        )
        packet = header + body
        if len(packet) > packet_size:
            raise PacketError(
                "encoded packet is %d bytes > packet size %d"
                % (len(packet), packet_size)
            )
        return packet + b"\x00" * (packet_size - len(packet))

    @classmethod
    def decode(cls, data):
        """Parse an ENC packet from its wire bytes."""
        if len(data) < ENC_HEADER_SIZE:
            raise PacketDecodeError("ENC packet shorter than its header")
        (
            type_byte,
            block_id,
            seq_in_block,
            flags,
            max_kid,
            frm_id,
            to_id,
            count,
        ) = struct.unpack(">BBBBHHHH", data[:ENC_HEADER_SIZE])
        packet_type, message_id = _unpack_type_byte(type_byte)
        if packet_type is not PacketType.ENC:
            raise PacketDecodeError("not an ENC packet")
        needed = ENC_HEADER_SIZE + count * ENCRYPTION_ENTRY_SIZE
        if len(data) < needed:
            raise PacketDecodeError(
                "ENC packet truncated: need %d bytes, have %d"
                % (needed, len(data))
            )
        encryptions = []
        offset = ENC_HEADER_SIZE
        for _ in range(count):
            (encryption_id,) = struct.unpack(
                ">H", data[offset : offset + 2]
            )
            ciphertext = data[offset + 2 : offset + ENCRYPTION_ENTRY_SIZE]
            encryptions.append(EncryptedKey(encryption_id, ciphertext))
            offset += ENCRYPTION_ENTRY_SIZE
        return cls(
            rekey_message_id=message_id,
            block_id=block_id,
            seq_in_block=seq_in_block,
            max_kid=max_kid,
            frm_id=frm_id,
            to_id=to_id,
            encryptions=tuple(encryptions),
            is_duplicate=bool(flags & 1),
        )


@dataclass(frozen=True)
class ParityPacket:
    """A PARITY packet: FEC redundancy over one block's ENC payloads.

    ``seq_in_block`` is the codeword index: ``k + parity_row``, so a
    receiver can feed it straight into the RSE decoder.
    """

    rekey_message_id: int
    block_id: int
    seq_in_block: int
    payload: bytes

    def __post_init__(self):
        _check_u8("block_id", self.block_id)
        _check_u8("seq_in_block", self.seq_in_block)

    @property
    def packet_type(self):
        return PacketType.PARITY

    def encode(self):
        """Serialise; total size is 3 header bytes + payload."""
        return (
            struct.pack(
                ">BBB",
                _pack_type_byte(PacketType.PARITY, self.rekey_message_id),
                self.block_id,
                self.seq_in_block,
            )
            + self.payload
        )

    @classmethod
    def decode(cls, data):
        if len(data) < 3:
            raise PacketDecodeError("PARITY packet shorter than its header")
        packet_type, message_id = _unpack_type_byte(data[0])
        if packet_type is not PacketType.PARITY:
            raise PacketDecodeError("not a PARITY packet")
        return cls(
            rekey_message_id=message_id,
            block_id=data[1],
            seq_in_block=data[2],
            payload=bytes(data[3:]),
        )


@dataclass(frozen=True)
class UsrPacket:
    """A USR packet: one user's encryptions, unicast.

    Small by construction — at most ``4 + 22 h`` bytes for tree height
    ``h`` — which is why the switch to unicast is cheap (§7.1).
    """

    rekey_message_id: int
    user_id: int
    encryptions: tuple

    def __post_init__(self):
        _check_u16("user_id", self.user_id)
        if len(self.encryptions) > 0xFF:
            raise PacketError("too many encryptions for a USR packet")
        for encryption in self.encryptions:
            if not isinstance(encryption, EncryptedKey):
                raise PacketError("encryptions must be EncryptedKey objects")
            _check_u16("encryption ID", encryption.encryption_id)

    @property
    def packet_type(self):
        return PacketType.USR

    def encode(self):
        header = struct.pack(
            ">BHB",
            _pack_type_byte(PacketType.USR, self.rekey_message_id),
            self.user_id,
            len(self.encryptions),
        )
        body = b"".join(
            struct.pack(">H", e.encryption_id) + e.ciphertext
            for e in self.encryptions
        )
        return header + body

    @classmethod
    def decode(cls, data):
        if len(data) < 4:
            raise PacketDecodeError("USR packet shorter than its header")
        packet_type, message_id = _unpack_type_byte(data[0])
        if packet_type is not PacketType.USR:
            raise PacketDecodeError("not a USR packet")
        (user_id, count) = struct.unpack(">HB", data[1:4])
        encryptions = []
        offset = 4
        for _ in range(count):
            if offset + ENCRYPTION_ENTRY_SIZE > len(data):
                raise PacketDecodeError("USR packet truncated")
            (encryption_id,) = struct.unpack(
                ">H", data[offset : offset + 2]
            )
            encryptions.append(
                EncryptedKey(
                    encryption_id,
                    data[offset + 2 : offset + ENCRYPTION_ENTRY_SIZE],
                )
            )
            offset += ENCRYPTION_ENTRY_SIZE
        return cls(
            rekey_message_id=message_id,
            user_id=user_id,
            encryptions=tuple(encryptions),
        )


@dataclass(frozen=True)
class NackRequest:
    """One entry of a NACK: ``n_parity`` packets wanted for ``block_id``."""

    block_id: int
    n_parity: int

    def __post_init__(self):
        _check_u8("block_id", self.block_id)
        _check_u8("n_parity", self.n_parity)
        if self.n_parity == 0:
            raise PacketError("a NACK entry must request at least 1 packet")


@dataclass(frozen=True)
class NackPacket:
    """A NACK: per-block parity shortfalls reported by one user."""

    rekey_message_id: int
    user_id: int
    requests: tuple

    def __post_init__(self):
        _check_u16("user_id", self.user_id)
        if not self.requests:
            raise PacketError("a NACK must carry at least one request")
        if len(self.requests) > 0xFF:
            raise PacketError("too many requests for one NACK")
        for request in self.requests:
            if not isinstance(request, NackRequest):
                raise PacketError("requests must be NackRequest objects")

    @property
    def packet_type(self):
        return PacketType.NACK

    @property
    def max_requested(self):
        """The largest per-block request (what AdjustRho aggregates)."""
        return max(r.n_parity for r in self.requests)

    def encode(self):
        header = struct.pack(
            ">BHB",
            _pack_type_byte(PacketType.NACK, self.rekey_message_id),
            self.user_id,
            len(self.requests),
        )
        body = b"".join(
            struct.pack(">BB", r.n_parity, r.block_id) for r in self.requests
        )
        return header + body

    @classmethod
    def decode(cls, data):
        if len(data) < 4:
            raise PacketDecodeError("NACK packet shorter than its header")
        packet_type, message_id = _unpack_type_byte(data[0])
        if packet_type is not PacketType.NACK:
            raise PacketDecodeError("not a NACK packet")
        (user_id, count) = struct.unpack(">HB", data[1:4])
        if len(data) < 4 + 2 * count:
            raise PacketDecodeError("NACK packet truncated")
        requests = tuple(
            NackRequest(block_id=data[4 + 2 * i + 1], n_parity=data[4 + 2 * i])
            for i in range(count)
        )
        return cls(
            rekey_message_id=message_id, user_id=user_id, requests=requests
        )


_DECODERS = {
    PacketType.ENC: EncPacket.decode,
    PacketType.PARITY: ParityPacket.decode,
    PacketType.USR: UsrPacket.decode,
    PacketType.NACK: NackPacket.decode,
}


def decode_packet(data):
    """Dispatch on the 2-bit type and decode any protocol packet."""
    if not data:
        raise PacketDecodeError("empty packet")
    packet_type, _ = _unpack_type_byte(data[0])
    return _DECODERS[packet_type](data)
