"""User-oriented Key Assignment (UKA, §4.3).

UKA packs the encryptions of a rekey message into ENC packets so that
**all of the encryptions needed by any single user land in one packet**.
A user that receives its specific packet is done — no FEC decoding, no
reassembly — which is what pushes single-round delivery above 94 % even
with no proactive parity.

The algorithm sorts the user IDs and repeatedly extracts the longest
prefix whose *union* of needed encryptions fits one packet.  Users in the
same packet share encryptions (stored once); users split across packets
duplicate their shared encryptions — the *duplication overhead* studied
in experiment E02.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KeyAssignmentError
from repro.rekey.packets import (
    DEFAULT_ENC_PACKET_SIZE,
    enc_packet_capacity,
)


@dataclass
class EncPacketPlan:
    """One planned ENC packet: ID interval and the encryptions it holds.

    ``encryption_ids`` preserves first-need order (deepest-first per
    user, users in ID order) and contains no duplicates within the
    packet.
    """

    index: int
    frm_id: int
    to_id: int
    user_ids: list = field(default_factory=list)
    encryption_ids: list = field(default_factory=list)

    @property
    def n_encryptions(self):
        return len(self.encryption_ids)

    @property
    def n_users(self):
        return len(self.user_ids)


@dataclass
class AssignmentResult:
    """The full packing: plans plus duplication accounting."""

    plans: list
    n_unique_encryptions: int

    @property
    def n_packets(self):
        return len(self.plans)

    @property
    def n_stored_encryptions(self):
        """Total encryptions stored across packets (with duplicates)."""
        return sum(plan.n_encryptions for plan in self.plans)

    @property
    def n_duplicates(self):
        return self.n_stored_encryptions - self.n_unique_encryptions

    @property
    def duplication_overhead(self):
        """Duplicated / total encryptions in the rekey subtree (Fig 7)."""
        if self.n_unique_encryptions == 0:
            return 0.0
        return self.n_duplicates / self.n_unique_encryptions

    def plan_for_user(self, user_id):
        """The single plan covering ``user_id`` (or None)."""
        for plan in self.plans:
            if plan.frm_id <= user_id <= plan.to_id:
                return plan
        return None


class UserOrientedKeyAssignment:
    """The UKA packing algorithm."""

    def __init__(self, packet_size=DEFAULT_ENC_PACKET_SIZE, capacity=None):
        #: Maximum encryptions per ENC packet; derived from the packet
        #: size (46 for the paper's 1027 bytes) unless given explicitly.
        self.capacity = (
            enc_packet_capacity(packet_size) if capacity is None else capacity
        )
        if self.capacity < 1:
            raise KeyAssignmentError("packet capacity must be >= 1")

    def assign(self, needs_by_user):
        """Pack ``{user_id: [encryption IDs]}`` into ENC packet plans.

        Returns an :class:`AssignmentResult`.  Users needing nothing must
        not appear in the mapping.  Raises if any single user needs more
        encryptions than one packet can carry (impossible for key trees
        of height < capacity, but checked for safety).
        """
        unique_ids = set()
        for user_id, wanted in needs_by_user.items():
            if not wanted:
                raise KeyAssignmentError(
                    "user %d has an empty need list" % user_id
                )
            if len(set(wanted)) > self.capacity:
                raise KeyAssignmentError(
                    "user %d needs %d encryptions; capacity is %d"
                    % (user_id, len(set(wanted)), self.capacity)
                )
            unique_ids.update(wanted)

        plans = []
        current_users = []
        current_ids = []
        current_set = set()
        for user_id in sorted(needs_by_user):
            wanted = needs_by_user[user_id]
            fresh = [e for e in wanted if e not in current_set]
            if current_users and len(current_set) + len(
                set(fresh)
            ) > self.capacity:
                plans.append(self._close(len(plans), current_users, current_ids))
                current_users, current_ids, current_set = [], [], set()
                fresh = list(dict.fromkeys(wanted))
            current_users.append(user_id)
            for encryption_id in fresh:
                if encryption_id not in current_set:
                    current_ids.append(encryption_id)
                    current_set.add(encryption_id)
        if current_users:
            plans.append(self._close(len(plans), current_users, current_ids))
        return AssignmentResult(
            plans=plans, n_unique_encryptions=len(unique_ids)
        )

    @staticmethod
    def _close(index, user_ids, encryption_ids):
        return EncPacketPlan(
            index=index,
            frm_id=user_ids[0],
            to_id=user_ids[-1],
            user_ids=list(user_ids),
            encryption_ids=list(encryption_ids),
        )


@dataclass
class SequentialAssignment:
    """Output of the baseline packer: packets + encryption locations."""

    packets: list
    packet_of_encryption: dict

    @property
    def n_packets(self):
        return len(self.packets)

    @property
    def n_stored_encryptions(self):
        return sum(len(p) for p in self.packets)

    def packets_for_user(self, wanted_encryption_ids):
        """Which packets a user must receive to get all its encryptions."""
        return sorted(
            {self.packet_of_encryption[e] for e in wanted_encryption_ids}
        )


class SequentialKeyAssignment:
    """Ablation baseline: pack encryptions in message order, no per-user
    guarantee.

    Each encryption is stored exactly once (zero duplication — the best
    possible bandwidth), but a user whose path crosses a packet boundary
    needs **several** specific packets, multiplying its round-one failure
    probability.  The UKA-vs-sequential trade-off is quantified in bench
    A02.
    """

    def __init__(self, packet_size=DEFAULT_ENC_PACKET_SIZE, capacity=None):
        self.capacity = (
            enc_packet_capacity(packet_size) if capacity is None else capacity
        )
        if self.capacity < 1:
            raise KeyAssignmentError("packet capacity must be >= 1")

    def assign(self, encryption_ids_in_order):
        """Pack the (deduplicated, ordered) encryption IDs into packets."""
        packets = []
        current = []
        packet_of = {}
        seen = set()
        for encryption_id in encryption_ids_in_order:
            if encryption_id in seen:
                raise KeyAssignmentError(
                    "duplicate encryption ID %d in message order"
                    % encryption_id
                )
            seen.add(encryption_id)
            if len(current) == self.capacity:
                packets.append(current)
                current = []
            packet_of[encryption_id] = len(packets)
            current.append(encryption_id)
        if current:
            packets.append(current)
        return SequentialAssignment(
            packets=packets, packet_of_encryption=packet_of
        )
