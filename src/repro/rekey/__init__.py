"""Rekey-message construction: packets, key assignment, blocks.

This package turns the marking algorithm's encryption edges into the
wire-level artifacts of the protocol:

- :mod:`repro.rekey.packets` — ENC / PARITY / USR / NACK wire formats
  (Appendix A of the companion text), sized so that a 1027-byte ENC
  packet carries the paper's 46 encryptions.
- :mod:`repro.rekey.assignment` — the User-oriented Key Assignment
  (UKA) algorithm: every user's encryptions land in a single ENC packet.
- :mod:`repro.rekey.blocks` — partitioning ENC packets into FEC blocks
  of size ``k``, last-block duplication, and block-interleaved send
  order.
- :mod:`repro.rekey.estimate` — Appendix D: a user that lost its ENC
  packet bounds the block ID it must NACK for.
- :mod:`repro.rekey.message` — the end-to-end builder: batch result ->
  packed, partitioned, FEC-protected rekey message.
"""

from repro.rekey.packets import (
    DEFAULT_ENC_PACKET_SIZE,
    EncPacket,
    NackPacket,
    NackRequest,
    PacketType,
    ParityPacket,
    UsrPacket,
    decode_packet,
    enc_packet_capacity,
)
from repro.rekey.assignment import (
    EncPacketPlan,
    SequentialKeyAssignment,
    UserOrientedKeyAssignment,
)
from repro.rekey.blocks import BlockPartition, interleaved_order
from repro.rekey.estimate import BlockIdEstimator
from repro.rekey.message import RekeyMessage, RekeyMessageBuilder

__all__ = [
    "BlockIdEstimator",
    "BlockPartition",
    "DEFAULT_ENC_PACKET_SIZE",
    "EncPacket",
    "EncPacketPlan",
    "NackPacket",
    "NackRequest",
    "PacketType",
    "ParityPacket",
    "RekeyMessage",
    "RekeyMessageBuilder",
    "SequentialKeyAssignment",
    "UserOrientedKeyAssignment",
    "UsrPacket",
    "decode_packet",
    "enc_packet_capacity",
    "interleaved_order",
]
