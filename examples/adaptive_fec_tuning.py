#!/usr/bin/env python3
"""Watching the adaptive proactivity controller work (§6).

Runs the paper's default transport scenario — N = 4096, d = 4, L = N/4
departures per interval, 20 % of users on 20 %-loss links — for a
sequence of rekey messages, and prints the two trajectories from
Figures 12-13: the proactivity factor ``rho`` settling into its stable
band, and the first-round NACK count being herded around the target
``numNACK = 20``.

Also runs the same sequence with adaptation disabled (rho pinned at 1)
to show what the controller buys.

Run:  python examples/adaptive_fec_tuning.py  [--messages K] [--users N]
"""

import argparse

import numpy as np

from repro.sim import build_paper_topology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload


def bar(value, scale=1.0, width=40):
    n = min(width, int(value * scale))
    return "#" * n


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=26)
    parser.add_argument("--users", type=int, default=4096)
    parser.add_argument("--num-nack", type=int, default=20)
    args = parser.parse_args()

    workload = make_paper_workload(n_users=args.users, k=10, seed=1)
    print(
        "workload: %d ENC packets in %d blocks of k=%d; %d active users\n"
        % (
            workload.n_enc_packets,
            workload.n_blocks,
            workload.k,
            workload.n_users,
        )
    )

    topology = build_paper_topology(n_users=workload.n_users, seed=2)
    simulator = FleetSimulator(
        topology,
        FleetConfig(
            rho=1.0,
            num_nack=args.num_nack,
            adapt_rho=True,
            multicast_only=True,
        ),
        seed=3,
    )
    sequence = simulator.run_sequence(lambda i: workload, args.messages)

    print("msg |  rho  | NACKs (target %d)" % args.num_nack)
    print("----+-------+--------------------------------------------")
    for index in range(sequence.n_messages):
        nacks = sequence.first_round_nacks()[index]
        print(
            "%3d | %.2f  | %4d %s"
            % (
                index,
                sequence.rho_trajectory[index],
                nacks,
                bar(nacks, scale=0.25),
            )
        )

    tail = slice(5, None)
    print(
        "\nsteady state: rho = %.2f +- %.2f, NACKs = %.1f +- %.1f"
        % (
            np.mean(sequence.rho_trajectory[tail]),
            np.std(sequence.rho_trajectory[tail]),
            np.mean(sequence.first_round_nacks()[tail]),
            np.std(sequence.first_round_nacks()[tail]),
        )
    )
    print(
        "mean bandwidth overhead: %.2f; mean rounds for all users: %.2f"
        % (
            sequence.mean_bandwidth_overhead(skip=5),
            sequence.mean_rounds_for_all(skip=5),
        )
    )

    # Baseline: purely reactive (rho = 1 forever).
    reactive = FleetSimulator(
        build_paper_topology(n_users=workload.n_users, seed=2),
        FleetConfig(rho=1.0, adapt_rho=False, multicast_only=True),
        seed=3,
    ).run_sequence(lambda i: workload, args.messages)
    print(
        "\nreactive baseline (rho=1): NACKs = %.1f, rounds for all = %.2f,"
        " bandwidth overhead = %.2f"
        % (
            reactive.mean_first_round_nacks(skip=5),
            reactive.mean_rounds_for_all(skip=5),
            reactive.mean_bandwidth_overhead(skip=5),
        )
    )
    print(
        "adaptive control cut NACK implosion %.0fx for %+.2f overhead"
        % (
            reactive.mean_first_round_nacks(skip=5)
            / max(sequence.mean_first_round_nacks(skip=5), 1e-9),
            sequence.mean_bandwidth_overhead(skip=5)
            - reactive.mean_bandwidth_overhead(skip=5),
        )
    )


if __name__ == "__main__":
    main()
