#!/usr/bin/env python3
"""How large a group can one key server rekey? (the SIGCOMM analysis)

Three views of the scalability question:

1. **Batch vs individual rekeying** — replaying the same request stream
   one request at a time vs one marking run, with 2001-era crypto cost
   constants (30 ms RSA signature dominating).
2. **Rekey-subtree growth** — the closed-form expected encryption count
   against group size and batch size, validated by the real marking
   algorithm.
3. **Max supportable group size** — inverting the processing-time model
   for a range of rekey intervals.

Run:  python examples/scalability_study.py
"""

from repro.analysis import (
    batch_cost,
    expected_encryptions_leaves_only,
    individual_cost,
    max_supported_group_size,
    processing_seconds_per_interval,
    simulate_batch,
)
from repro.util import spawn_rng


def section(title):
    print("\n" + title)
    print("-" * len(title))


def main():
    section("1. batch vs individual rekeying (N=4096, d=4, J=L=256)")
    rng = spawn_rng(1)
    batch = batch_cost(4096, 4, 256, 256, rng=rng)
    rng = spawn_rng(1)
    individual = individual_cost(4096, 4, 256, 256, rng=rng)
    print(
        "batch:      %6d encryptions %5d keygens %4d signatures -> %7.3f s"
        % (
            batch.encryptions,
            batch.key_generations,
            batch.signatures,
            batch.seconds(),
        )
    )
    print(
        "individual: %6d encryptions %5d keygens %4d signatures -> %7.3f s"
        % (
            individual.encryptions,
            individual.key_generations,
            individual.signatures,
            individual.seconds(),
        )
    )
    print(
        "batching is %.0fx cheaper (signatures dominate)"
        % (individual.seconds() / batch.seconds())
    )

    section("2. expected encryptions: closed form vs marking algorithm")
    print("   N      L    analytic   simulated")
    rng = spawn_rng(2)
    for n_users, n_leaves in [(1024, 256), (4096, 1024), (16384, 4096)]:
        analytic = expected_encryptions_leaves_only(n_users, 4, n_leaves)
        simulated = simulate_batch(
            n_users, 4, 0, n_leaves, n_trials=5, rng=rng
        )["encryptions"].mean()
        print(
            "%6d %6d %10.1f %11.1f" % (n_users, n_leaves, analytic, simulated)
        )

    section("3. processing time per interval (d=4, 25% churn, replaced)")
    print("      N    seconds")
    for height in range(4, 10):
        n_users = 4**height
        seconds = processing_seconds_per_interval(n_users, 4, 0.25)
        print("%8d %9.3f" % (n_users, seconds))

    section("4. max supportable group size vs rekey interval")
    print("interval   max N (d=4, 25% churn/interval)")
    for interval in (1, 10, 30, 60, 300, 600):
        print(
            "%7ds   %d" % (interval, max_supported_group_size(interval))
        )


if __name__ == "__main__":
    main()
