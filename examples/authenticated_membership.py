#!/usr/bin/env python3
"""The three components together: registration, key management, transport.

The papers' architecture puts *registration* on trusted registrars so
the key server only handles validated requests.  This example runs the
complete admission/eviction flow:

1. a user authenticates to a registrar and receives a sealed grant;
2. the key server validates the grant (and rejects forgeries/replays)
   before queueing the join;
3. the member departs later by authenticating the leave under its
   individual key — nobody else can evict it;
4. batch rekeying + transport do the rest, and both secrecy properties
   are checked.

Run:  python examples/authenticated_membership.py
"""

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.core.registrar import (
    RegistrationError,
    Registrar,
    RequestValidator,
    make_join_request,
    make_leave_request,
)


def main():
    server = GroupKeyServer(
        ["founder-%d" % i for i in range(8)],
        config=GroupConfig(block_size=5),
    )
    registrar = Registrar(
        registrar_secret=2001,
        credentials={"mallory": "letmein", "trent": "s3cret"},
    )
    validator = RequestValidator(registrar.shared_secret, server.tree)
    print("group of %d; registrar online" % server.n_users)

    # --- admission ------------------------------------------------------
    grant = registrar.register("trent", "s3cret")
    print("trent authenticated; grant nonce=%d" % grant.nonce)
    user = validator.validate_join(make_join_request(grant))
    server.request_join(user)
    server.rekey()
    trent = GroupMember.register(server, "trent")
    assert trent.group_key == server.group_key
    print("trent admitted; holds group key %s" % trent.group_key.fingerprint())

    # --- a forged grant goes nowhere -------------------------------------
    try:
        registrar.register("mallory", "wrong-password")
    except RegistrationError as exc:
        print("mallory with a bad credential: rejected (%s)" % exc)
    from repro.core.registrar import JoinRequest, RegistrationGrant

    forged = RegistrationGrant(user="mallory", nonce=99, seal=b"\x00" * 16)
    try:
        validator.validate_join(JoinRequest(grant=forged))
    except RegistrationError as exc:
        print("mallory with a forged grant: rejected (%s)" % exc)

    # --- replay protection -----------------------------------------------
    try:
        validator.validate_join(make_join_request(grant))
    except RegistrationError as exc:
        print("replaying trent's grant: rejected (%s)" % exc)

    # --- authenticated departure ------------------------------------------
    leave = make_leave_request("trent", trent.individual_key, nonce=1)
    validator.validate_leave(leave)
    server.request_leave("trent")
    server.rekey()
    assert "trent" not in server.users
    assert trent.group_key != server.group_key
    print(
        "trent departed via a leave signed by its individual key; "
        "its old key is now stale (forward secrecy)"
    )

    # --- nobody else can evict a member ------------------------------------
    founder = GroupMember.register(server, "founder-0")
    imposter = GroupMember.register(server, "founder-1")
    bad_leave = make_leave_request(
        "founder-0", imposter.individual_key, nonce=1
    )
    try:
        validator.validate_leave(bad_leave)
    except RegistrationError as exc:
        print("founder-1 trying to evict founder-0: rejected (%s)" % exc)
    assert "founder-0" in server.users
    print("done: registration, key management and eviction all enforced")


if __name__ == "__main__":
    main()
