"""A rekey-daemon soak with a mid-flight crash and recovery.

The paper evaluates single rekey intervals; this example runs the key
server as a *service*: a `RekeyDaemon` soaking under Poisson churn at
the paper's α = 20 % rate over the simulated lossy transport, its ρ
controller adapting across intervals — then gets killed mid-interval by
an injected SIGKILL stand-in, and recovers from its write-ahead log and
snapshot with every security invariant intact.

Run: ``python examples/daemon_churn_soak.py``
"""

import shutil
import tempfile

from repro.core import GroupConfig
from repro.service import (
    CrashPlan,
    DaemonConfig,
    DaemonCrash,
    PoissonChurn,
    RekeyDaemon,
    ServiceMetrics,
    SessionDelivery,
)


def banner(text):
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main():
    state_dir = tempfile.mkdtemp(prefix="rekeyd-soak-")
    config = GroupConfig(block_size=5, crypto_seed=7, seed=7)
    churn = PoissonChurn(alpha=0.20)

    banner("Phase 1 — soak: 64 members, poisson churn, sim transport")
    daemon = RekeyDaemon.start_new(
        ["member-%03d" % i for i in range(64)],
        config=config,
        backend=SessionDelivery(config, seed=11),
        churn=churn,
        service=DaemonConfig(
            state_dir=state_dir,
            # die mid-interval 8, after delivery but BEFORE the
            # snapshot — the nastiest point: members already hold keys
            # the durable state has never heard of
            crash_plan=CrashPlan(8, "post-delivery"),
        ),
        seed=3,
    )
    print(ServiceMetrics.TABLE_HEADER)
    try:
        daemon.run(12, on_interval=lambda r: print(
            ServiceMetrics.format_row(r)))
    except DaemonCrash as crash:
        banner("CRASH — %s" % crash)
        print("no cleanup ran; all that survives is what was fsynced:")
        print("  %s/wal.jsonl + server.json" % state_dir)

    banner("Phase 2 — recover from WAL + snapshot")
    # The member fleet survives — members live on remote hosts and do
    # not die with the key server.
    recovered = RekeyDaemon.recover(
        state_dir,
        config=config,
        backend=SessionDelivery(config, seed=13),
        fleet=daemon.fleet,
        churn=churn,
        service=DaemonConfig(state_dir=state_dir),
        seed=4,
    )
    counters = recovered.metrics.counters
    print(
        "recovered %d members at interval %d "
        "(%d request(s) replayed, %d member(s) resynced)"
        % (
            recovered.server.n_users,
            recovered.server.intervals_processed,
            counters["requests_replayed"],
            counters["members_resynced"],
        )
    )

    banner("Phase 3 — soak on; verify agreement and lockout")
    print(ServiceMetrics.TABLE_HEADER)
    recovered.run(4, on_interval=lambda r: print(
        ServiceMetrics.format_row(r)))
    recovered.fleet.check_agreement(recovered.server)  # raises on breach
    print()
    print(
        "agreement: all %d members hold group key %s"
        % (
            recovered.fleet.n_members,
            recovered.server.group_key.fingerprint(),
        )
    )
    print(
        "lockout:   none of the %d evicted members do"
        % len(recovered.fleet.former_members)
    )
    health = recovered.health()
    print(
        "health:    %s (%d recovery, %d deadline miss(es))"
        % (
            health["status"],
            health["recoveries"],
            health["deadline_misses"],
        )
    )
    recovered.close()
    shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
