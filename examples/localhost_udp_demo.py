#!/usr/bin/env python3
"""The protocol on real sockets: a rekey over loopback UDP.

Everything else in this repository simulates the network; this demo
sends the actual wire bytes — 1027-byte ENC packets, PARITY packets,
NACKs, USR packets — through real UDP sockets on 127.0.0.1, one socket
per member, with receiver-side loss injection (loopback never drops on
its own).  The same protocol state machines drive both worlds.

Run:  python examples/localhost_udp_demo.py  [--members N] [--loss P]
"""

import argparse

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.net import run_udp_rekey


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--members", type=int, default=48)
    parser.add_argument("--loss", type=float, default=0.2)
    parser.add_argument("--rho", type=float, default=1.0)
    args = parser.parse_args()

    names = ["peer-%02d" % i for i in range(args.members)]
    server = GroupKeyServer(names, config=GroupConfig(block_size=5))
    members = {name: GroupMember.register(server, name) for name in names}
    print(
        "group of %d; old group key %s"
        % (server.n_users, server.group_key.fingerprint())
    )

    leavers = names[:2]
    for name in leavers:
        server.request_leave(name)
    batch, message = server.rekey()
    print(
        "rekey message: %d ENC packets in %d blocks (k=%d), signed"
        % (message.n_enc_packets, message.n_blocks, message.k)
    )

    by_id = {}
    for name, member in members.items():
        if name in leavers:
            continue
        member.absorb_encryptions([], max_kid=message.max_kid)
        by_id[member.user_id] = member

    report = run_udp_rekey(
        message,
        members_by_user_id=by_id,
        rho=args.rho,
        drop_probability=args.loss,
        seed=7,
    )
    print(
        "delivered over UDP: %d round(s), %d packets sent, "
        "%d received, %d deliberately dropped (%.0f%% injected loss)"
        % (
            report["rounds"],
            report["packets_sent"],
            report["packets_received"],
            report["packets_dropped"],
            100 * args.loss,
        )
    )

    agree = all(
        member.group_key == server.group_key for member in by_id.values()
    )
    stale = all(
        members[name].group_key != server.group_key for name in leavers
    )
    print("new group key %s" % server.group_key.fingerprint())
    print("all %d remaining members keyed: %s" % (len(by_id), agree))
    print("both leavers locked out: %s" % stale)
    assert agree and stale


if __name__ == "__main__":
    main()
