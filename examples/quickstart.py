#!/usr/bin/env python3
"""Quickstart: a secure group in a dozen lines.

Creates a group, churns its membership through periodic batch rekeying,
and shows the two security properties the system exists for:

- *forward secrecy*: a departed user's keys stop working;
- *backward secrecy*: a new user's keys only start at its join interval.

Run:  python examples/quickstart.py
"""

from repro import GroupConfig, SecureGroup


def main():
    # A group of four, with the paper's default parameters (d=4 key
    # tree, 1027-byte ENC packets, FEC block size 10).
    group = SecureGroup(["alice", "bob", "carol", "dave"], GroupConfig())
    print("group created:", group)
    print("group key:", group.server.group_key.fingerprint())

    # Every member independently holds the same group key.
    for name, member in sorted(group.members.items()):
        assert member.group_key == group.server.group_key
        print("  %-6s holds keys for nodes %s" % (name, member.path_ids))

    # dave leaves; erin joins.  Requests queue up during the interval...
    group.leave("dave")
    group.join("erin")

    # ... and one rekey message handles the whole batch.
    message = group.rekey()
    print("\nafter rekey #1:", group)
    print(
        "rekey message: %d ENC packets, %d encryptions, signed=%s"
        % (
            message.n_enc_packets,
            len(message.encryption_map),
            message.signature is not None,
        )
    )
    print("new group key:", group.server.group_key.fingerprint())

    # Forward secrecy: dave's stale keys do not match the new group key.
    dave = group.former_members["dave"]
    assert dave.group_key != group.server.group_key
    print("dave's stale view:", dave.group_key.fingerprint(), "(locked out)")

    # erin is a first-class member now.
    assert group.members["erin"].group_key == group.server.group_key
    print("erin's view:      ", group.members["erin"].group_key.fingerprint())

    # Deliveries can also ride the full simulated lossy multicast
    # transport (proactive FEC + NACKs + unicast tail):
    group.leave("alice")
    group.rekey(lossy=True)
    stats = group.last_delivery_stats
    print(
        "\nlossy rekey #2: %d multicast round(s), %d NACK(s), "
        "%d user(s) served by unicast"
        % (
            stats.n_multicast_rounds,
            stats.first_round_nacks,
            stats.unicast.users_served,
        )
    )
    for name, member in sorted(group.members.items()):
        assert member.group_key == group.server.group_key
    print("all %d members agree on the group key" % group.n_members)


if __name__ == "__main__":
    main()
