#!/usr/bin/env python3
"""A packet-level walk through one rekey message.

Follows the protocol with real bytes:

1. the marking algorithm turns a batch (one leave) into a rekey subtree;
2. UKA packs the encryptions into 1027-byte ENC packets;
3. the RSE coder emits PARITY packets;
4. a user that *lost its specific ENC packet* estimates the block ID,
   NACKs, and recovers it by FEC decoding;
5. another user is served by a tiny unicast USR packet;
6. both end up holding the new group key, decrypted with the toy cipher.

Run:  python examples/wire_walkthrough.py
"""

import numpy as np

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.fec import RSECoder
from repro.rekey import BlockIdEstimator, decode_packet
from repro.rekey.packets import FEC_PAYLOAD_OFFSET, NackPacket, NackRequest


def hexdump(data, limit=48):
    body = data[:limit].hex(" ")
    return body + (" ..." if len(data) > limit else "")


def main():
    rng = np.random.default_rng(3)
    users = ["user-%03d" % i for i in range(256)]
    server = GroupKeyServer(
        users, config=GroupConfig(degree=4, block_size=4)
    )
    members = {name: GroupMember.register(server, name) for name in users}

    departing = list(rng.choice(users, size=48, replace=False))
    for name in departing:
        server.request_leave(name)
    print("interval batch: %d leaves" % len(departing))

    batch, message = server.rekey()
    print(
        "rekey subtree: %d updated keys, %d encryptions"
        % (batch.subtree.n_updated_keys, batch.n_encryptions)
    )
    from repro.keytree import render_rekey

    print("\ntop of the marked tree (labels drive the rekey subtree):")
    print(render_rekey(batch, max_nodes=12))
    print(
        "UKA packed them into %d ENC packets (%d blocks of k=%d), "
        "duplication overhead %.1f%%"
        % (
            message.n_enc_packets,
            message.n_blocks,
            message.k,
            100 * message.assignment.duplication_overhead,
        )
    )

    packets = message.enc_packets()
    first = packets[0]
    wire = first.encode(message.packet_size)
    print(
        "\nENC packet 0: block %d seq %d, users [%d..%d], "
        "%d encryptions, %d bytes on the wire"
        % (
            first.block_id,
            first.seq_in_block,
            first.frm_id,
            first.to_id,
            len(first.encryptions),
            len(wire),
        )
    )
    print("  wire bytes:", hexdump(wire))
    assert decode_packet(wire) == first

    # --- a user loses its specific packet and FEC-recovers it ----------
    victim_id = first.frm_id
    victim = next(
        m for m in members.values() if m.user_id == victim_id
    )
    print(
        "\n%s (ID %d) loses its packet; it receives the rest of block 0:"
        % (victim.name, victim.user_id)
    )
    estimator = BlockIdEstimator(victim_id, k=message.k, degree=4)
    received = {}
    for packet in packets:
        if packet.block_id != 0 or packet is first:
            continue
        estimator.observe(packet)
        received[packet.seq_in_block] = packet.encode(message.packet_size)[
            FEC_PAYLOAD_OFFSET:
        ]
    print(
        "  block-ID estimate after observing %d packets: [%s, %s]"
        % (len(received), estimator.low, estimator.high)
    )

    shortfall = message.k - len(received)
    nack = NackPacket(
        rekey_message_id=message.message_id,
        user_id=victim_id,
        requests=tuple(
            NackRequest(block_id=b, n_parity=shortfall)
            for b in estimator.blocks_to_request(message.n_blocks)
        ),
    )
    print("  NACK on the wire:", hexdump(nack.encode()))

    parity = message.parity_packets(0, shortfall)
    for packet in parity:
        received[packet.seq_in_block] = packet.payload
    print(
        "  server answers with %d PARITY packet(s); decoding block 0..."
        % len(parity)
    )
    coder = RSECoder(message.k)
    payloads = coder.decode(received)
    recovered = message.rebuild_enc_packet(
        message.message_id, 0, first.seq_in_block, payloads[first.seq_in_block]
    )
    assert recovered == first
    victim.process_enc_packet(recovered)
    assert victim.group_key == server.group_key
    print(
        "  recovered its ENC packet by FEC; group key = %s"
        % victim.group_key.fingerprint()
    )

    # --- another user is served by unicast ------------------------------
    other = next(
        m
        for m in members.values()
        if m.name not in departing and m.user_id != victim_id
    )
    other.absorb_encryptions([], max_kid=message.max_kid)
    usr = message.usr_packet(other.user_id)
    print(
        "\n%s is served by unicast: USR packet is %d bytes "
        "(vs %d for multicast packets)"
        % (other.name, len(usr.encode()), message.packet_size)
    )
    other.process_usr_packet(usr)
    assert other.group_key == server.group_key
    print("  group key = %s" % other.group_key.fingerprint())

    # --- the departed cannot follow -------------------------------------
    locked_out = members[departing[0]]
    for packet in packets:
        locked_out.process_enc_packet(packet)
    assert locked_out.group_key != server.group_key
    print(
        "\n%s (departed) processed every packet and still holds the "
        "old key: forward secrecy holds" % locked_out.name
    )


if __name__ == "__main__":
    main()
