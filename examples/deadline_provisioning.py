#!/usr/bin/env python3
"""Provisioning a rekey deadline: models first, simulation to confirm.

An operator question the paper's analysis enables: *"my rekey interval
is short — what proactivity factor do I need so that effectively every
user has its keys after one multicast round, and what does it cost?"*

This example:

1. inverts the analytic models (`repro.analysis.tuning`) for the
   required rho at several deadline/assurance combinations;
2. cross-checks the chosen operating point against the fleet simulator
   (burst loss, heterogeneous users — everything the model idealises);
3. prices the choice in server bandwidth overhead.

Run:  python examples/deadline_provisioning.py
"""

import numpy as np

from repro.analysis.rounds_model import expected_rounds_per_user
from repro.analysis.tuning import rho_for_deadline, rho_for_target_nacks
from repro.sim import build_paper_topology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload


def main():
    k = 10
    print("1) required rho by deadline and assurance (worst links:")
    print("   p_receiver=20%%, p_source=1%%, k=%d)\n" % k)
    print("   deadline   99%      99.9%    99.99%")
    for rounds in (1, 2, 3):
        row = [
            rho_for_deadline(
                0.2, 0.01, k=k, deadline_rounds=rounds,
                success_probability=q,
            )
            for q in (0.99, 0.999, 0.9999)
        ]
        print(
            "   %d round%s  %.2f     %.2f     %.2f"
            % (rounds, "s" if rounds > 1 else " ", *row)
        )

    target_rho = rho_for_deadline(
        0.2, 0.01, k=k, deadline_rounds=1, success_probability=0.999
    )
    nack_rho = rho_for_target_nacks(
        3072, alpha=0.2, p_high=0.2, p_low=0.02, p_source=0.01,
        k=k, target_nacks=20,
    )
    print(
        "\n   -> one-round 99.9%% needs rho = %.2f "
        "(the NACK-target controller would settle at %.2f)"
        % (target_rho, nack_rho)
    )
    print(
        "   model expected rounds/user at rho=%.2f: %.4f"
        % (target_rho, expected_rounds_per_user(0.208, k, int((target_rho - 1) * k)))
    )

    print("\n2) simulator confirmation (N=4096, burst loss, alpha=20%):\n")
    workload = make_paper_workload(n_users=4096, k=k, seed=1)
    for rho in (1.0, nack_rho, target_rho):
        simulator = FleetSimulator(
            build_paper_topology(n_users=workload.n_users, seed=2),
            FleetConfig(rho=rho, adapt_rho=False, multicast_only=True),
            seed=3,
        )
        fractions, overheads = [], []
        for index in range(4):
            stats, _ = simulator.run_message(
                workload, rho=rho, message_index=index
            )
            fractions.append((stats.user_rounds == 1).mean())
            overheads.append(stats.bandwidth_overhead)
        print(
            "   rho=%.2f : %.4f of users done in round 1, "
            "bandwidth overhead %.2f"
            % (rho, np.mean(fractions), np.mean(overheads))
        )

    print(
        "\n3) the price of assurance is the proactive parity: overhead "
        "grows ~(rho-1) on top of the reactive floor — choose the "
        "deadline, read off the bill."
    )


if __name__ == "__main__":
    main()
