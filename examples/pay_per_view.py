#!/usr/bin/env python3
"""Pay-per-view broadcast: the paper's motivating workload.

A content provider streams to a large paying audience; subscriptions
start and lapse continuously.  The group key encrypts the stream, so
every membership change demands a rekey — which is exactly what
periodic batch rekeying makes affordable.

This example runs a 4096-user group through a broadcast with ~2 % churn
per rekey interval, delivers each interval's rekey message over the
simulated lossy multicast network, and reports the server-side costs
the paper analyses: crypto operations, modelled processing seconds, and
transport bandwidth overhead.

Run:  python examples/pay_per_view.py  [--subscribers N] [--intervals K]
"""

import argparse

import numpy as np

from repro import GroupConfig, SecureGroup
from repro.analysis import signature_savings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subscribers", type=int, default=1024)
    parser.add_argument("--intervals", type=int, default=6)
    parser.add_argument("--churn", type=float, default=0.02)
    args = parser.parse_args()

    subscribers = ["sub-%05d" % i for i in range(args.subscribers)]
    group = SecureGroup(subscribers, GroupConfig(block_size=10, seed=42))
    rng = np.random.default_rng(7)

    print(
        "broadcast start: %d subscribers, key %s"
        % (group.n_members, group.server.group_key.fingerprint())
    )
    per_interval = max(1, int(args.churn * args.subscribers))
    total_requests = 0

    for interval in range(args.intervals):
        n_lapse = int(rng.integers(per_interval // 2, per_interval + 1))
        n_new = int(rng.integers(per_interval // 2, per_interval + 1))
        total_requests += n_lapse + n_new
        group.churn(n_new, n_lapse, rng=rng, lossy=True)
        stats = group.last_delivery_stats
        counts, seconds = group.server.meter.snapshot()
        print(
            "interval %2d: %5d subs | +%2d/-%2d | "
            "%3d ENC pkts, bw overhead %.2f, rounds %d, unicast %d"
            % (
                interval + 1,
                group.n_members,
                n_new,
                n_lapse,
                stats.n_enc_packets if stats else 0,
                stats.bandwidth_overhead if stats else 0.0,
                stats.n_multicast_rounds if stats else 0,
                stats.unicast.users_served if stats else 0,
            )
        )

    counts, seconds = group.server.meter.snapshot()
    print("\nserver crypto work across the broadcast:")
    for op, count in counts.items():
        print("  %-8s %8d ops" % (op, count))
    print("  modelled processing time: %.2f s" % seconds)
    print(
        "  signatures saved by batching vs per-request rekeying: %d"
        % signature_savings(total_requests, 0)
    )

    # The contract that makes the business model work:
    assert all(
        member.group_key == group.server.group_key
        for member in group.members.values()
    )
    lapsed = list(group.former_members.values())
    assert all(m.group_key != group.server.group_key for m in lapsed)
    print(
        "\ninvariants hold: %d active subscribers keyed, "
        "%d lapsed subscribers locked out" % (group.n_members, len(lapsed))
    )


if __name__ == "__main__":
    main()
